//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the real criterion
//! crate (and its large dependency tree) cannot be fetched. This crate
//! implements the subset of the API the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple median-of-samples timer instead of
//! criterion's statistical machinery. Numbers are indicative, not
//! publication-grade, but the benches compile, run, and report.

use std::time::{Duration, Instant};

/// How warm-up and measurement are sized. Kept deliberately small so the
/// full bench suite finishes in seconds.
const WARMUP_ITERS: u64 = 3;
const SAMPLES: usize = 15;
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Batch sizing hint, mirroring criterion's enum. The shim only uses it
/// to decide how many routine calls share one setup call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input: many iterations per batch.
    SmallInput,
    /// Large per-iteration input: one iteration per batch.
    LargeInput,
    /// Input of unknown size: a moderate batch.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the per-sample iteration count so each sample
        // lasts roughly TARGET_SAMPLE.
        let start = Instant::now();
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let per = start.elapsed() / (WARMUP_ITERS as u32);
        self.iters_per_sample = if per.is_zero() {
            1000
        } else {
            (TARGET_SAMPLE.as_nanos() / per.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t.elapsed() / (self.iters_per_sample as u32));
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        for _ in 0..SAMPLES {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
        self.iters_per_sample = 1;
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// The benchmark driver. Construct with [`Criterion::default`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a named benchmark and prints the median sample time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        let med = b.median();
        println!("{name:<50} median {med:>12.3?}  ({SAMPLES} samples)");
        self
    }
}

/// Declares a benchmark group: a runner function that invokes each listed
/// bench with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= WARMUP_ITERS + SAMPLES as u64);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher::new();
        b.iter_batched(
            || vec![1u32; 16],
            |v| v.iter().sum::<u32>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), SAMPLES);
    }
}
