//! The centralized optical controller (§4.4): global manager + DevMgr.
//!
//! Builds one MUX and one ROADM (vendor-diverse) per optical site, spawns
//! transponders per planned wavelength, and pushes a [`Plan`] to the
//! devices: line-configs to transponders, filter-port passbands to the
//! endpoint MUXes, and express passbands to every intermediate ROADM —
//! "the centralized controller uses the same configuration parameters as
//! the wavelength's spectrum to configure the passband of these devices"
//! (§4.3), which is what makes channel inconsistency impossible.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use flexwan_core::planning::Plan;
use flexwan_obs::Obs;
use flexwan_optical::devices::{Mux, Roadm};
use flexwan_optical::spectrum::SpectrumGrid;
use flexwan_optical::WssKind;
use flexwan_topo::graph::{EdgeId, Graph, NodeId};
use flexwan_util::rng::ChaCha8Rng;

use crate::config::{ConfigDocument, StandardConfig};
use crate::device::{config_in_effect, spawn_device, DeviceHandle, Hardware};
use crate::faults::FaultInjector;
use crate::journal::ConfigJournal;
use crate::model::{DeviceDescriptor, DeviceId, DeviceKind, Vendor};
use crate::netconf::SessionError;
use crate::transaction::{Transaction, TxError};
use crate::vendor;

/// Filter ports per site MUX.
const MUX_PORTS: u16 = 64;

/// The device manager: registry plus live sessions.
#[derive(Debug, Default)]
pub struct DevMgr {
    devices: HashMap<DeviceId, DeviceHandle>,
    factory: HashMap<DeviceId, Hardware>,
    next_id: u32,
    injector: Option<Arc<FaultInjector>>,
    obs: Option<Obs>,
}

impl DevMgr {
    fn allocate(&mut self, vendor: Vendor, kind: DeviceKind, site: NodeId) -> DeviceDescriptor {
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        DeviceDescriptor {
            id,
            vendor,
            kind,
            mgmt_ip: DeviceDescriptor::mgmt_ip_for(id),
            site,
        }
    }

    /// Spawns and registers a device, remembering its factory hardware.
    pub fn register(
        &mut self,
        vendor: Vendor,
        kind: DeviceKind,
        site: NodeId,
        hw: Hardware,
    ) -> DeviceId {
        let descriptor = self.allocate(vendor, kind, site);
        let id = descriptor.id;
        self.factory.insert(id, hw.clone());
        let mut handle = spawn_device(descriptor, hw);
        if let Some(inj) = &self.injector {
            handle.session.arm(id, inj.clone());
        }
        if let Some(obs) = &self.obs {
            handle.session.observe(id, obs.clone());
        }
        self.devices.insert(id, handle);
        id
    }

    /// Arms every session (present and future) with a fault injector: all
    /// requests to the device plane then pass through it.
    pub fn arm_faults(&mut self, injector: Arc<FaultInjector>) {
        for (id, handle) in self.devices.iter_mut() {
            handle.session.arm(*id, injector.clone());
        }
        self.injector = Some(injector);
    }

    /// Arms every session (present and future) with an observability
    /// bundle: per-device NETCONF attempts and failures are counted.
    pub fn arm_obs(&mut self, obs: Obs) {
        for (id, handle) in self.devices.iter_mut() {
            handle.session.observe(*id, obs.clone());
        }
        self.obs = Some(obs);
    }

    /// Simulates a field replacement: the device at `id` is swapped for a
    /// factory-fresh unit (same identity, empty configuration) — the
    /// configuration-drift scenario [`Controller::reconcile`] repairs.
    pub fn reset_device(&mut self, id: DeviceId) {
        let old = self.devices.remove(&id).expect("unknown device");
        let descriptor = old.descriptor.clone();
        drop(old); // shuts the old device thread down
        let hw = self
            .factory
            .get(&id)
            .expect("factory image recorded")
            .clone();
        let mut handle = spawn_device(descriptor, hw);
        if let Some(inj) = &self.injector {
            handle.session.arm(id, inj.clone());
            inj.device_restarted(id);
        }
        if let Some(obs) = &self.obs {
            handle.session.observe(id, obs.clone());
        }
        self.devices.insert(id, handle);
    }

    /// The handle for `id`.
    pub fn device(&self, id: DeviceId) -> &DeviceHandle {
        &self.devices[&id]
    }

    /// Number of managed devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether no devices are managed.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// Outcome of pushing a plan to the device plane.
#[derive(Debug, Clone, Default)]
pub struct ApplyReport {
    /// Transponder line-configs acknowledged.
    pub transponders_configured: usize,
    /// MUX filter ports acknowledged.
    pub mux_ports_configured: usize,
    /// ROADM expresses acknowledged.
    pub expresses_configured: usize,
    /// Rejections, with device and cause.
    pub rejections: Vec<(DeviceId, String)>,
}

impl ApplyReport {
    /// Whether every configuration was acknowledged.
    pub fn is_clean(&self) -> bool {
        self.rejections.is_empty()
    }
}

/// Outcome of a [`Controller::reconcile`] pass.
#[derive(Debug, Clone, Default)]
pub struct ReconcileReport {
    /// Configurations re-issued to repair drift.
    pub repaired: usize,
    /// Repairs the devices rejected (need escalation).
    pub failures: Vec<(DeviceId, String)>,
}

impl ReconcileReport {
    /// Whether the plane is fully reconciled.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Retry policy for device sends: capped exponential backoff with full
/// jitter. Backoff only spends wall-clock time — it never changes *what*
/// the controller sends, so seeded chaos runs stay deterministic.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per send, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(16),
        }
    }
}

/// Consecutive failed *sends* (after internal retries) that open a
/// device's circuit breaker.
pub const BREAKER_THRESHOLD: u32 = 3;

/// Per-device circuit breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Quarantined: sends fail fast without touching the device.
    Open,
    /// Probing: one request is allowed through to test recovery.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }
}

/// Controller-side resilience counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CtrlStats {
    /// Sends issued (apply, reconcile, rollback — everything).
    pub sends: u64,
    /// Individual retry attempts beyond each send's first attempt.
    pub retries: u64,
    /// Rejections resolved by reading state back: the config was already
    /// in effect (its ack had been lost).
    pub read_repairs: u64,
    /// Circuit breakers opened.
    pub breaker_trips: u64,
    /// Crashed devices replaced and rolled forward from the journal.
    pub devices_restarted: u64,
}

/// Outcome of a [`Controller::converge`] run.
#[derive(Debug, Clone, Default)]
pub struct ConvergeReport {
    /// Convergence passes executed.
    pub passes: usize,
    /// Configurations re-issued by reconciliation across all passes.
    pub repaired: usize,
    /// Devices replaced and rolled forward from the journal.
    pub restarted: Vec<DeviceId>,
    /// Whether the plane reached the audited-clean fixed point.
    pub converged: bool,
}

/// The device-plane footprint of one applied wavelength, remembered so
/// [`Controller::release_wavelength_atomic`] can undo exactly what the
/// apply did (which transponders were spawned, which MUX ports were
/// claimed — the ROADM expresses are re-derivable from the wavelength).
#[derive(Debug, Clone)]
struct LightpathAlloc {
    transponders: Vec<DeviceId>,
    mux_ports: Vec<(NodeId, u16)>,
}

/// Identity of a lightpath on the device plane: same route + same
/// spectrum ⇒ same footprint shape (allocations stack for duplicates).
type LightpathKey = (Vec<EdgeId>, u32, u16);

fn lightpath_key(w: &flexwan_core::Wavelength) -> LightpathKey {
    (
        w.path.edges.clone(),
        w.channel.start,
        w.channel.width.pixels(),
    )
}

/// The centralized controller.
pub struct Controller {
    /// Device manager.
    pub devmgr: DevMgr,
    mux_at: HashMap<NodeId, DeviceId>,
    roadm_at: HashMap<NodeId, DeviceId>,
    next_port: HashMap<NodeId, u16>,
    /// Filter ports handed back by released lightpaths, reused before
    /// `next_port` grows — without this the monotonic counter exhausts
    /// the 64 ports of a site MUX under sustained cut/repair churn.
    free_ports: HashMap<NodeId, Vec<u16>>,
    /// Live lightpath footprints, keyed by route + spectrum.
    live_paths: HashMap<LightpathKey, Vec<LightpathAlloc>>,
    degree_of: HashMap<(NodeId, EdgeId), u16>,
    revision: u64,
    journal: ConfigJournal,
    retry: RetryPolicy,
    breakers: HashMap<DeviceId, Breaker>,
    backoff_rng: ChaCha8Rng,
    stats: CtrlStats,
    obs: Option<Obs>,
}

impl Controller {
    /// Builds the OLS device plane for `optical`: per site one MUX and one
    /// ROADM (vendor assigned round-robin by site — multi-vendor by
    /// construction), with `wss`/`grid` equipment.
    pub fn build(optical: &Graph, wss: WssKind, grid: SpectrumGrid) -> Controller {
        let mut devmgr = DevMgr::default();
        let mut mux_at = HashMap::new();
        let mut roadm_at = HashMap::new();
        let mut degree_of = HashMap::new();
        for node in optical.nodes() {
            let vendor = Vendor::ALL[node.id.0 as usize % Vendor::ALL.len()];
            let mux = devmgr.register(
                vendor,
                DeviceKind::Mux,
                node.id,
                Hardware::Mux(Mux::new(wss, grid, MUX_PORTS)),
            );
            mux_at.insert(node.id, mux);
            let incident = optical.incident_edges(node.id);
            for (i, e) in incident.iter().enumerate() {
                degree_of.insert((node.id, *e), i as u16);
            }
            let roadm = devmgr.register(
                vendor,
                DeviceKind::Roadm,
                node.id,
                Hardware::Roadm(Roadm::new(wss, grid, incident.len() as u16)),
            );
            roadm_at.insert(node.id, roadm);
        }
        Controller {
            devmgr,
            mux_at,
            roadm_at,
            next_port: HashMap::new(),
            free_ports: HashMap::new(),
            live_paths: HashMap::new(),
            degree_of,
            revision: 0,
            journal: ConfigJournal::new(),
            retry: RetryPolicy::default(),
            breakers: HashMap::new(),
            backoff_rng: ChaCha8Rng::seed_from_u64(0x0C0FFEE),
            stats: CtrlStats::default(),
            obs: None,
        }
    }

    /// The controller's configuration audit trail.
    pub fn journal(&self) -> &ConfigJournal {
        &self.journal
    }

    /// Arms the whole device plane with a fault injector (chaos harness).
    pub fn arm_faults(&mut self, injector: Arc<FaultInjector>) {
        self.devmgr.arm_faults(injector);
    }

    /// Arms the controller (and every device session, present and future)
    /// with an observability bundle: sends, retries, read-repairs, breaker
    /// transitions and transaction lifecycles are recorded from here on.
    pub fn set_obs(&mut self, obs: Obs) {
        self.devmgr.arm_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// Counts one controller-level event.
    fn count(&self, metric: &str) {
        if let Some(obs) = &self.obs {
            obs.registry().counter(metric).inc();
        }
    }

    /// Publishes a breaker transition as a per-device gauge
    /// (0 = closed, 0.5 = half-open probing, 1 = open/quarantined).
    fn note_breaker(&self, id: DeviceId, state: BreakerState) {
        if let Some(obs) = &self.obs {
            let value = match state {
                BreakerState::Closed => 0.0,
                BreakerState::HalfOpen => 0.5,
                BreakerState::Open => 1.0,
            };
            let device = id.0.to_string();
            obs.registry()
                .gauge_with("ctrl_breaker_state", &[("device", &device)])
                .set(value);
        }
    }

    /// Replaces the retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts >= 1);
        self.retry = policy;
    }

    /// Resilience counters.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// The circuit-breaker state of `id`.
    pub fn breaker_state(&self, id: DeviceId) -> BreakerState {
        self.breakers
            .get(&id)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// Devices currently quarantined behind an open breaker.
    pub fn quarantined(&self) -> Vec<DeviceId> {
        let mut q: Vec<DeviceId> = self
            .breakers
            .iter()
            .filter(|(_, b)| b.state == BreakerState::Open)
            .map(|(id, _)| *id)
            .collect();
        q.sort();
        q
    }

    fn breaker_ok(&mut self, id: DeviceId) {
        let b = self.breakers.entry(id).or_default();
        let was_closed = b.state == BreakerState::Closed;
        b.state = BreakerState::Closed;
        b.consecutive_failures = 0;
        if !was_closed {
            self.note_breaker(id, BreakerState::Closed);
        }
    }

    /// Records a failed send; returns true if the breaker just opened.
    fn breaker_fail(&mut self, id: DeviceId) -> bool {
        let b = self.breakers.entry(id).or_default();
        b.consecutive_failures += 1;
        if b.consecutive_failures >= BREAKER_THRESHOLD && b.state != BreakerState::Open {
            b.state = BreakerState::Open;
            self.stats.breaker_trips += 1;
            self.count("ctrl_breaker_trips_total");
            self.note_breaker(id, BreakerState::Open);
            return true;
        }
        false
    }

    /// Sleeps the jittered exponential backoff before retry `attempt`.
    fn backoff(&mut self, attempt: u32) {
        let shift = (attempt - 1).min(10);
        let exp = self.retry.base_backoff.saturating_mul(1u32 << shift);
        let capped = exp.min(self.retry.max_backoff);
        let nanos = capped.as_nanos() as u64;
        if nanos == 0 {
            return;
        }
        // Full jitter over [nanos/2, nanos]: desynchronizes retry storms.
        let jittered = nanos / 2 + self.backoff_rng.gen_range(0..nanos / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    /// Claims a MUX filter port at `site`: lowest released port first
    /// (deterministic), else the next never-used one.
    fn alloc_port(&mut self, site: NodeId) -> u16 {
        if let Some(free) = self.free_ports.get_mut(&site) {
            if let Some(pos) = (0..free.len()).min_by_key(|&i| free[i]) {
                return free.swap_remove(pos);
            }
        }
        let p = self.next_port.entry(site).or_insert(0);
        let port = *p;
        *p += 1;
        port
    }

    /// Returns a filter port to `site`'s free list.
    fn release_port(&mut self, site: NodeId, port: u16) {
        self.free_ports.entry(site).or_default().push(port);
    }

    fn send(&mut self, id: DeviceId, cfg: StandardConfig) -> Result<(), (DeviceId, String)> {
        self.stats.sends += 1;
        self.count("ctrl_sends_total");
        if self.breaker_state(id) == BreakerState::Open {
            return Err((id, "circuit open: device quarantined".into()));
        }
        let mut saw_timeout = false;
        let mut attempt = 0;
        loop {
            attempt += 1;
            self.revision += 1;
            let revision = self.revision;
            let handle = &self.devmgr.devices[&id];
            // The controller logs the standard document; the device
            // receives its native dialect.
            let _doc = ConfigDocument {
                revision,
                config: cfg.clone(),
            };
            let native = vendor::encode(handle.descriptor.vendor, &cfg);
            match handle.session.edit_config(revision, native) {
                Ok(_) => {
                    self.journal.record(revision, id, cfg);
                    self.breaker_ok(id);
                    return Ok(());
                }
                Err(SessionError::Rejected(cause)) => {
                    // The device answered: it is reachable.
                    self.breaker_ok(id);
                    if saw_timeout {
                        // An earlier attempt may have been applied with
                        // its ack lost; re-sending a non-idempotent config
                        // (ROADM express) then self-conflicts. Read the
                        // state back before believing the rejection.
                        if let Ok(state) = self.devmgr.devices[&id].session.get_state() {
                            if config_in_effect(&state, &cfg) {
                                self.stats.read_repairs += 1;
                                self.count("ctrl_read_repairs_total");
                                self.journal.record(revision, id, cfg);
                                return Ok(());
                            }
                        }
                    }
                    return Err((id, cause));
                }
                Err(e @ (SessionError::Unreachable | SessionError::ProtocolViolation)) => {
                    if matches!(e, SessionError::Unreachable) {
                        saw_timeout = true;
                    }
                    if attempt >= self.retry.max_attempts {
                        if self.breaker_fail(id) {
                            return Err((
                                id,
                                format!("{e} after {attempt} attempts; circuit opened"),
                            ));
                        }
                        return Err((id, format!("{e} after {attempt} attempts")));
                    }
                    self.stats.retries += 1;
                    self.count("ctrl_retries_total");
                    self.backoff(attempt);
                }
            }
        }
    }

    /// Pushes every wavelength of `plan` to the device plane.
    pub fn apply_plan(&mut self, plan: &Plan, optical: &Graph) -> ApplyReport {
        let span = self.obs.as_ref().map(|o| {
            let s = o.span("ctrl.apply_plan");
            s.field("wavelengths", plan.wavelengths.len());
            s
        });
        let start = self.obs.as_ref().map(|o| o.now_ns());
        let mut report = ApplyReport::default();
        for w in &plan.wavelengths {
            // 1. Transponders at both ends (vendor follows the site).
            for site in [w.path.source(), w.path.destination()] {
                let vendor = Vendor::ALL[site.0 as usize % Vendor::ALL.len()];
                let t = self.devmgr.register(
                    vendor,
                    DeviceKind::Transponder,
                    site,
                    Hardware::Transponder(None),
                );
                match self.send(
                    t,
                    StandardConfig::Transponder {
                        format: w.format,
                        channel: w.channel,
                        enabled: true,
                    },
                ) {
                    Ok(()) => report.transponders_configured += 1,
                    Err(r) => report.rejections.push(r),
                }
            }
            // 2. MUX filter ports at both ends, passband = the channel.
            for site in [w.path.source(), w.path.destination()] {
                let mux = self.mux_at[&site];
                let port = self.alloc_port(site);
                if port >= MUX_PORTS {
                    report
                        .rejections
                        .push((mux, format!("site {site:?} out of filter ports")));
                    continue;
                }
                match self.send(
                    mux,
                    StandardConfig::MuxPort {
                        port,
                        passband: Some(w.channel),
                    },
                ) {
                    Ok(()) => report.mux_ports_configured += 1,
                    Err(r) => report.rejections.push(r),
                }
            }
            // 3. Express passbands at intermediate ROADMs.
            for i in 1..w.path.nodes.len().saturating_sub(1) {
                let node = w.path.nodes[i];
                let from = self.degree_of[&(node, w.path.edges[i - 1])];
                let to = self.degree_of[&(node, w.path.edges[i])];
                let roadm = self.roadm_at[&node];
                match self.send(
                    roadm,
                    StandardConfig::RoadmExpress {
                        from_degree: from,
                        to_degree: to,
                        passband: w.channel,
                    },
                ) {
                    Ok(()) => report.expresses_configured += 1,
                    Err(r) => report.rejections.push(r),
                }
            }
        }
        let _ = optical;
        if let Some(s) = &span {
            s.field("rejections", report.rejections.len());
        }
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            obs.registry()
                .counter("ctrl_apply_rejections_total")
                .add(report.rejections.len() as u64);
            obs.observe_since("ctrl_apply_plan_seconds", start);
        }
        report
    }

    /// Applies one wavelength's configuration **atomically**: transponder
    /// line-configs, endpoint MUX passbands and intermediate ROADM
    /// expresses either all land or none do (first rejection rolls the
    /// applied prefix back). See [`crate::transaction`].
    pub fn apply_wavelength_atomic(
        &mut self,
        w: &flexwan_core::Wavelength,
    ) -> Result<usize, TxError> {
        self.apply_wavelength_atomic_with_budget(w, usize::MAX)
    }

    /// Tears one wavelength's configuration down **atomically**: disables
    /// its transponders, clears its endpoint MUX filter ports and releases
    /// the intermediate ROADM expresses — the exact inverse of
    /// [`apply_wavelength_atomic`](Self::apply_wavelength_atomic). A
    /// mid-path rejection rolls the already-released prefix back, so the
    /// lightpath is either fully up or fully down. On success the MUX
    /// ports return to the site free list for reuse. Releasing a
    /// wavelength this controller never applied is a counted no-op.
    pub fn release_wavelength_atomic(
        &mut self,
        w: &flexwan_core::Wavelength,
    ) -> Result<usize, TxError> {
        let key = lightpath_key(w);
        let Some(alloc) = self.live_paths.get_mut(&key).and_then(|v| v.pop()) else {
            self.count("ctrl_release_untracked_total");
            return Ok(0);
        };
        let mut tx = Transaction::new();
        // Inverse step list: every forward config is the apply's undo and
        // vice versa, so a failed release rolls back to fully-applied.
        for &t in &alloc.transponders {
            tx.step(
                t,
                StandardConfig::Transponder {
                    format: w.format,
                    channel: w.channel,
                    enabled: false,
                },
                StandardConfig::Transponder {
                    format: w.format,
                    channel: w.channel,
                    enabled: true,
                },
            );
        }
        for &(site, port) in &alloc.mux_ports {
            tx.step(
                self.mux_at[&site],
                StandardConfig::MuxPort {
                    port,
                    passband: None,
                },
                StandardConfig::MuxPort {
                    port,
                    passband: Some(w.channel),
                },
            );
        }
        for i in 1..w.path.nodes.len().saturating_sub(1) {
            let node = w.path.nodes[i];
            let from = self.degree_of[&(node, w.path.edges[i - 1])];
            let to = self.degree_of[&(node, w.path.edges[i])];
            tx.step(
                self.roadm_at[&node],
                StandardConfig::RoadmRelease {
                    from_degree: from,
                    to_degree: to,
                    passband: w.channel,
                },
                StandardConfig::RoadmExpress {
                    from_degree: from,
                    to_degree: to,
                    passband: w.channel,
                },
            );
        }
        let result = match self.obs.clone() {
            Some(obs) => tx.execute_observed(&obs, usize::MAX, |d, cfg| {
                self.send(d, cfg.clone()).map_err(|(_, e)| e)
            }),
            None => tx.execute(|d, cfg| self.send(d, cfg.clone()).map_err(|(_, e)| e)),
        };
        match &result {
            Ok(_) => {
                for (site, port) in alloc.mux_ports {
                    self.release_port(site, port);
                }
                self.count("ctrl_releases_total");
            }
            // Rolled back to fully-applied: the footprint is still live.
            Err(_) => self.live_paths.entry(key).or_default().push(alloc),
        }
        result
    }

    /// Builds the transactional step list lighting wavelength `w`, plus
    /// the footprint record a later release needs.
    fn wavelength_transaction(
        &mut self,
        w: &flexwan_core::Wavelength,
    ) -> (Transaction, LightpathAlloc) {
        let mut tx = Transaction::new();
        let mut alloc = LightpathAlloc {
            transponders: Vec::new(),
            mux_ports: Vec::new(),
        };
        // 1. Transponders (registered up front; rollback disables them).
        for site in [w.path.source(), w.path.destination()] {
            let vendor = Vendor::ALL[site.0 as usize % Vendor::ALL.len()];
            let t = self.devmgr.register(
                vendor,
                DeviceKind::Transponder,
                site,
                Hardware::Transponder(None),
            );
            alloc.transponders.push(t);
            tx.step(
                t,
                StandardConfig::Transponder {
                    format: w.format,
                    channel: w.channel,
                    enabled: true,
                },
                StandardConfig::Transponder {
                    format: w.format,
                    channel: w.channel,
                    enabled: false,
                },
            );
        }
        // 2. Endpoint MUX filter ports.
        for site in [w.path.source(), w.path.destination()] {
            let mux = self.mux_at[&site];
            let port = self.alloc_port(site);
            alloc.mux_ports.push((site, port));
            tx.step(
                mux,
                StandardConfig::MuxPort {
                    port,
                    passband: Some(w.channel),
                },
                StandardConfig::MuxPort {
                    port,
                    passband: None,
                },
            );
        }
        // 3. Intermediate ROADM expresses.
        for i in 1..w.path.nodes.len().saturating_sub(1) {
            let node = w.path.nodes[i];
            let from = self.degree_of[&(node, w.path.edges[i - 1])];
            let to = self.degree_of[&(node, w.path.edges[i])];
            tx.step(
                self.roadm_at[&node],
                StandardConfig::RoadmExpress {
                    from_degree: from,
                    to_degree: to,
                    passband: w.channel,
                },
                StandardConfig::RoadmRelease {
                    from_degree: from,
                    to_degree: to,
                    passband: w.channel,
                },
            );
        }
        (tx, alloc)
    }

    /// Repairs configuration drift: re-audits `plan` against live device
    /// state and re-issues the missing passbands/expresses (e.g. after a
    /// device was swapped for a factory-fresh unit in the field).
    pub fn reconcile(&mut self, plan: &Plan) -> ReconcileReport {
        let mut repaired = 0;
        let mut failures = Vec::new();
        for w in &plan.wavelengths {
            for site in [w.path.source(), w.path.destination()] {
                let mux_id = self.mux_at[&site];
                let passes = {
                    let mux = self.devmgr.device(mux_id);
                    match mux.session.get_state() {
                        Ok(state) => match state.hardware {
                            crate::device::Hardware::Mux(m) => {
                                (0..MUX_PORTS).any(|p| m.passes(p, &w.channel).unwrap_or(false))
                            }
                            _ => false,
                        },
                        Err(_) => false,
                    }
                };
                if !passes {
                    let port = self.alloc_port(site);
                    match self.send(
                        mux_id,
                        StandardConfig::MuxPort {
                            port,
                            passband: Some(w.channel),
                        },
                    ) {
                        Ok(()) => repaired += 1,
                        Err(e) => failures.push(e),
                    }
                }
            }
            for i in 1..w.path.nodes.len().saturating_sub(1) {
                let node = w.path.nodes[i];
                let from = self.degree_of[&(node, w.path.edges[i - 1])];
                let to = self.degree_of[&(node, w.path.edges[i])];
                let roadm_id = self.roadm_at[&node];
                let expressed = {
                    let roadm = self.devmgr.device(roadm_id);
                    match roadm.session.get_state() {
                        Ok(state) => match state.hardware {
                            crate::device::Hardware::Roadm(r) => {
                                r.expresses(from, to, &w.channel).unwrap_or(false)
                            }
                            _ => false,
                        },
                        Err(_) => false,
                    }
                };
                if !expressed {
                    match self.send(
                        roadm_id,
                        StandardConfig::RoadmExpress {
                            from_degree: from,
                            to_degree: to,
                            passband: w.channel,
                        },
                    ) {
                        Ok(()) => repaired += 1,
                        Err(e) => failures.push(e),
                    }
                }
            }
        }
        ReconcileReport { repaired, failures }
    }

    /// End-to-end audit: re-reads device state and verifies that every
    /// wavelength's channel is passed by its endpoint MUXes and expressed
    /// by every intermediate ROADM (the §4.3 channel-consistency check).
    pub fn audit_plan(&self, plan: &Plan) -> Vec<String> {
        let mut findings = Vec::new();
        // Collect endpoint passbands per site once.
        for (wi, w) in plan.wavelengths.iter().enumerate() {
            for site in [w.path.source(), w.path.destination()] {
                let mux = self.devmgr.device(self.mux_at[&site]);
                let state = match mux.session.get_state() {
                    Ok(s) => s,
                    Err(e) => {
                        findings.push(format!("wavelength {wi}: mux at {site:?} unreachable: {e}"));
                        continue;
                    }
                };
                let crate::device::Hardware::Mux(m) = state.hardware else {
                    findings.push(format!("device at {site:?} is not a MUX"));
                    continue;
                };
                let passed = (0..MUX_PORTS).any(|p| m.passes(p, &w.channel).unwrap_or(false));
                if !passed {
                    findings.push(format!(
                        "wavelength {wi}: channel {} not passed by any filter port at {site:?} (channel inconsistency)",
                        w.channel
                    ));
                }
            }
            for i in 1..w.path.nodes.len().saturating_sub(1) {
                let node = w.path.nodes[i];
                let roadm = self.devmgr.device(self.roadm_at[&node]);
                let Ok(state) = roadm.session.get_state() else {
                    findings.push(format!("wavelength {wi}: roadm at {node:?} unreachable"));
                    continue;
                };
                let crate::device::Hardware::Roadm(r) = state.hardware else {
                    continue;
                };
                let from = self.degree_of[&(node, w.path.edges[i - 1])];
                let to = self.degree_of[&(node, w.path.edges[i])];
                if !r.expresses(from, to, &w.channel).unwrap_or(false) {
                    findings.push(format!(
                        "wavelength {wi}: channel {} not expressed at {node:?} (channel inconsistency)",
                        w.channel
                    ));
                }
            }
        }
        findings
    }

    /// Re-pushes the journaled entries of `id` with revision strictly
    /// greater than `after` — rolling a replaced or lagging device forward
    /// to its journaled state. Returns false if any replay send failed
    /// (the device stays quarantined for the next pass).
    fn roll_forward(&mut self, id: DeviceId, after: u64) -> bool {
        let pending: Vec<(u64, StandardConfig)> = self
            .journal
            .history(id)
            .filter(|e| e.revision > after)
            .map(|e| (e.revision, e.config.clone()))
            .collect();
        let handle = &self.devmgr.devices[&id];
        let vendor_kind = handle.descriptor.vendor;
        for (rev, cfg) in pending {
            let native = vendor::encode(vendor_kind, &cfg);
            // Replays go through the session directly: the entries are
            // already journaled, so journaling them again would duplicate
            // the ledger.
            if self.devmgr.devices[&id]
                .session
                .edit_config(rev, native)
                .is_err()
            {
                return false;
            }
        }
        true
    }

    /// Half-open probe of one quarantined device: if it answers, close the
    /// breaker (rolling it forward if its revision lags the journal); if
    /// it does not, assume the thread crashed, replace it with a
    /// factory-fresh unit and replay its journaled history.
    fn probe_quarantined(&mut self, id: DeviceId, report: &mut ConvergeReport) {
        self.breakers.entry(id).or_default().state = BreakerState::HalfOpen;
        self.note_breaker(id, BreakerState::HalfOpen);
        let latest = self.journal.latest(id).map_or(0, |e| e.revision);
        match self.devmgr.devices[&id].session.get_state() {
            Ok(state) => {
                if state.last_revision >= latest || self.roll_forward(id, state.last_revision) {
                    self.breaker_ok(id);
                } else {
                    self.breakers.entry(id).or_default().state = BreakerState::Open;
                    self.note_breaker(id, BreakerState::Open);
                }
            }
            Err(_) => {
                // Dead or still unreachable: restart from the factory
                // image and roll the whole journaled history forward.
                self.devmgr.reset_device(id);
                self.stats.devices_restarted += 1;
                self.count("ctrl_devices_restarted_total");
                report.restarted.push(id);
                if self.roll_forward(id, 0) {
                    self.breaker_ok(id);
                } else {
                    self.breakers.entry(id).or_default().state = BreakerState::Open;
                    self.note_breaker(id, BreakerState::Open);
                }
            }
        }
    }

    /// The self-healing loop: repeatedly probes quarantined devices
    /// (restarting crashed ones and rolling them forward from the
    /// journal), reconciles drift against `plan`, and audits — until the
    /// plane is clean or `max_passes` passes have run.
    pub fn converge(&mut self, plan: &Plan, max_passes: usize) -> ConvergeReport {
        let span = self.obs.as_ref().map(|o| o.span("ctrl.converge"));
        let start = self.obs.as_ref().map(|o| o.now_ns());
        let mut report = ConvergeReport::default();
        for _ in 0..max_passes {
            report.passes += 1;
            let pass_span = span.as_ref().map(|s| {
                let p = s.child("ctrl.converge_pass");
                p.field("pass", report.passes);
                p
            });
            for id in self.quarantined() {
                self.probe_quarantined(id, &mut report);
            }
            let rec = self.reconcile(plan);
            report.repaired += rec.repaired;
            if let Some(p) = &pass_span {
                p.field("repaired", rec.repaired);
            }
            if rec.is_clean() && self.quarantined().is_empty() && self.audit_plan(plan).is_empty() {
                report.converged = true;
                break;
            }
        }
        if let Some(s) = &span {
            s.field("passes", report.passes);
            s.field("repaired", report.repaired);
            s.field("restarted", report.restarted.len());
            s.field("converged", report.converged);
        }
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            obs.registry()
                .counter("ctrl_reconcile_repairs_total")
                .add(report.repaired as u64);
            obs.observe_since("ctrl_converge_seconds", start);
        }
        report
    }

    /// [`Controller::apply_wavelength_atomic`] with a per-transaction
    /// budget: at most `budget` apply-steps are attempted before the
    /// transaction gives up and rolls back (rollback sends are not
    /// budgeted — partial state must never leak).
    pub fn apply_wavelength_atomic_with_budget(
        &mut self,
        w: &flexwan_core::Wavelength,
        budget: usize,
    ) -> Result<usize, TxError> {
        let (tx, alloc) = self.wavelength_transaction(w);
        let result = match self.obs.clone() {
            Some(obs) => tx.execute_observed(&obs, budget, |d, cfg| {
                self.send(d, cfg.clone()).map_err(|(_, e)| e)
            }),
            None => tx.execute_with_budget(budget, |d, cfg| {
                self.send(d, cfg.clone()).map_err(|(_, e)| e)
            }),
        };
        match &result {
            // Remember the footprint so the lightpath can be released.
            Ok(_) => self
                .live_paths
                .entry(lightpath_key(w))
                .or_default()
                .push(alloc),
            // Rolled back: the claimed ports go straight back to the
            // free list (the rollback already cleared them on-device).
            Err(_) => {
                for (site, port) in alloc.mux_ports {
                    self.release_port(site, port);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_core::planning::{plan, PlannerConfig};
    use flexwan_core::Scheme;
    use flexwan_topo::ip::IpTopology;

    fn backbone() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 150);
        g.add_edge(b, c, 200);
        g.add_edge(a, c, 500);
        let mut ip = IpTopology::new();
        ip.add_link(a, c, 600);
        ip.add_link(a, b, 400);
        (g, ip)
    }

    #[test]
    fn plan_applies_cleanly_and_audits_consistent() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        assert!(p.is_feasible());
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(report.is_clean(), "rejections: {:?}", report.rejections);
        assert_eq!(report.transponders_configured, 2 * p.wavelengths.len());
        assert_eq!(report.mux_ports_configured, 2 * p.wavelengths.len());
        // §4.3's result: zero inconsistency under centralized control.
        let findings = ctrl.audit_plan(&p);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn radwan_plan_applies_on_fixed_grid_ols() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::Radwan, &g, &ip, &cfg);
        assert!(p.is_feasible());
        let mut ctrl = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(report.is_clean(), "rejections: {:?}", report.rejections);
        assert!(ctrl.audit_plan(&p).is_empty());
    }

    #[test]
    fn flexwan_plan_rejected_by_legacy_fixed_grid_ols() {
        // Deploying FlexWAN wavelengths over a rigid 75 GHz OLS must fail
        // at the devices — the §9 "smooth evolution" motivation.
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        // 600 G at 500 km → 100 GHz spacing: not a 75 GHz slot.
        let mut ctrl = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(
            !report.is_clean(),
            "legacy OLS should reject pixel-wise channels"
        );
    }

    #[test]
    fn atomic_apply_rolls_back_on_mid_path_rejection() {
        // Fixed-grid OLS + an off-grid FlexWAN channel: the first MUX step
        // rejects, and the already-configured transponders must be
        // disabled again.
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let off_grid = p
            .wavelengths
            .iter()
            .find(|w| w.channel.start % 6 != 0 || w.channel.width.pixels() != 6)
            .expect("plan contains an off-75GHz-grid channel");
        let mut ctrl = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let before_devices = ctrl.devmgr.len();
        let err = ctrl.apply_wavelength_atomic(off_grid).unwrap_err();
        assert!(err.rollback_failures.is_empty(), "{err:?}");
        assert!(err.rolled_back >= 2, "transponders were applied first");
        // The registered transponders exist but are administratively down.
        assert_eq!(ctrl.devmgr.len(), before_devices + 2);
        for id in (0..ctrl.devmgr.len() as u32).map(DeviceId) {
            let Ok(state) = ctrl.devmgr.device(id).session.get_state() else {
                continue;
            };
            if let crate::device::Hardware::Transponder(Some(t)) = state.hardware {
                assert!(!t.enabled, "rolled-back transponder still enabled");
            }
        }
    }

    #[test]
    fn atomic_apply_succeeds_on_pixel_wise_plane() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        for w in &p.wavelengths {
            let steps = ctrl.apply_wavelength_atomic(w).unwrap();
            assert!(steps >= 4, "2 transponders + 2 mux ports at least");
        }
        assert!(ctrl.audit_plan(&p).is_empty());
    }

    #[test]
    fn reconcile_repairs_field_swapped_device() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        assert!(ctrl.apply_plan(&p, &g).is_clean());
        assert!(ctrl.audit_plan(&p).is_empty());
        // A MUX is swapped for a factory-fresh unit: drift appears…
        let mux0 = ctrl.mux_at[&p.wavelengths[0].path.source()];
        ctrl.devmgr.reset_device(mux0);
        assert!(!ctrl.audit_plan(&p).is_empty(), "drift must be visible");
        // …and reconcile repairs it.
        let rep = ctrl.reconcile(&p);
        assert!(rep.is_clean(), "{:?}", rep.failures);
        assert!(rep.repaired > 0);
        assert!(ctrl.audit_plan(&p).is_empty(), "plane reconciled");
        // A second pass is a no-op (reconcile is idempotent).
        assert_eq!(ctrl.reconcile(&p).repaired, 0);
    }

    #[test]
    fn journal_records_acknowledged_configs_only() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(report.is_clean());
        let total = report.transponders_configured
            + report.mux_ports_configured
            + report.expresses_configured;
        assert_eq!(ctrl.journal().len(), total);
        // Forensics: what was the first MUX's first port running?
        let mux = ctrl.mux_at[&p.wavelengths[0].path.source()];
        assert!(ctrl.journal().latest(mux).is_some());
        // Rejected configs are absent: a legacy plane rejects everything
        // off-grid and journals nothing for those sends.
        let mut legacy = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let rep2 = legacy.apply_plan(&p, &g);
        let total2 =
            rep2.transponders_configured + rep2.mux_ports_configured + rep2.expresses_configured;
        assert_eq!(legacy.journal().len(), total2);
        assert!(legacy.journal().len() < ctrl.journal().len());
    }

    #[test]
    fn release_undoes_apply_on_the_device_plane() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        for w in &p.wavelengths {
            ctrl.apply_wavelength_atomic(w).unwrap();
        }
        assert!(ctrl.audit_plan(&p).is_empty());
        let released = ctrl.release_wavelength_atomic(&p.wavelengths[0]).unwrap();
        assert!(released >= 4, "2 transponders + 2 mux ports at least");
        // The released wavelength now audits as inconsistent; the rest of
        // the plan is untouched.
        let findings = ctrl.audit_plan(&p);
        assert!(
            findings.iter().all(|f| f.starts_with("wavelength 0")),
            "{findings:?}"
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn released_ports_are_reused_not_leaked() {
        // Apply/release the same wavelength more times than a site MUX
        // has filter ports: with the free list this cycles port 0/1
        // forever; with the old monotonic counter it exhausts at 64.
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let w = &p.wavelengths[0];
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        for cycle in 0..(MUX_PORTS + 8) {
            ctrl.apply_wavelength_atomic(w)
                .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
            ctrl.release_wavelength_atomic(w).unwrap();
        }
        // Only the two endpoint ports were ever claimed.
        for site in [w.path.source(), w.path.destination()] {
            assert!(ctrl.next_port[&site] <= 1, "ports leaked at {site:?}");
        }
    }

    #[test]
    fn releasing_an_unapplied_wavelength_is_a_noop() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        assert_eq!(
            ctrl.release_wavelength_atomic(&p.wavelengths[0]).unwrap(),
            0
        );
    }

    #[test]
    fn vendor_diversity_is_real() {
        let (g, _) = backbone();
        let ctrl = Controller::build(&g, WssKind::PixelWise, SpectrumGrid::new(96));
        let vendors: std::collections::HashSet<_> = ctrl
            .devmgr
            .devices
            .values()
            .map(|d| d.descriptor.vendor)
            .collect();
        assert_eq!(vendors.len(), 3, "three sites → three vendors");
    }
}
