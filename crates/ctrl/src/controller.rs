//! The centralized optical controller (§4.4): global manager + DevMgr.
//!
//! Builds one MUX and one ROADM (vendor-diverse) per optical site, spawns
//! transponders per planned wavelength, and pushes a [`Plan`] to the
//! devices: line-configs to transponders, filter-port passbands to the
//! endpoint MUXes, and express passbands to every intermediate ROADM —
//! "the centralized controller uses the same configuration parameters as
//! the wavelength's spectrum to configure the passband of these devices"
//! (§4.3), which is what makes channel inconsistency impossible.

use std::collections::HashMap;

use flexwan_core::planning::Plan;
use flexwan_optical::devices::{Mux, Roadm};
use flexwan_optical::spectrum::SpectrumGrid;
use flexwan_optical::WssKind;
use flexwan_topo::graph::{EdgeId, Graph, NodeId};

use crate::config::{ConfigDocument, StandardConfig};
use crate::journal::ConfigJournal;
use crate::device::{spawn_device, DeviceHandle, Hardware};
use crate::model::{DeviceDescriptor, DeviceId, DeviceKind, Vendor};
use crate::transaction::{Transaction, TxError};
use crate::vendor;

/// Filter ports per site MUX.
const MUX_PORTS: u16 = 64;

/// The device manager: registry plus live sessions.
#[derive(Debug, Default)]
pub struct DevMgr {
    devices: HashMap<DeviceId, DeviceHandle>,
    factory: HashMap<DeviceId, Hardware>,
    next_id: u32,
}

impl DevMgr {
    fn allocate(&mut self, vendor: Vendor, kind: DeviceKind, site: NodeId) -> DeviceDescriptor {
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        DeviceDescriptor { id, vendor, kind, mgmt_ip: DeviceDescriptor::mgmt_ip_for(id), site }
    }

    /// Spawns and registers a device, remembering its factory hardware.
    pub fn register(&mut self, vendor: Vendor, kind: DeviceKind, site: NodeId, hw: Hardware) -> DeviceId {
        let descriptor = self.allocate(vendor, kind, site);
        let id = descriptor.id;
        self.factory.insert(id, hw.clone());
        self.devices.insert(id, spawn_device(descriptor, hw));
        id
    }

    /// Simulates a field replacement: the device at `id` is swapped for a
    /// factory-fresh unit (same identity, empty configuration) — the
    /// configuration-drift scenario [`Controller::reconcile`] repairs.
    pub fn reset_device(&mut self, id: DeviceId) {
        let old = self.devices.remove(&id).expect("unknown device");
        let descriptor = old.descriptor.clone();
        drop(old); // shuts the old device thread down
        let hw = self.factory.get(&id).expect("factory image recorded").clone();
        self.devices.insert(id, spawn_device(descriptor, hw));
    }

    /// The handle for `id`.
    pub fn device(&self, id: DeviceId) -> &DeviceHandle {
        &self.devices[&id]
    }

    /// Number of managed devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether no devices are managed.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// Outcome of pushing a plan to the device plane.
#[derive(Debug, Clone, Default)]
pub struct ApplyReport {
    /// Transponder line-configs acknowledged.
    pub transponders_configured: usize,
    /// MUX filter ports acknowledged.
    pub mux_ports_configured: usize,
    /// ROADM expresses acknowledged.
    pub expresses_configured: usize,
    /// Rejections, with device and cause.
    pub rejections: Vec<(DeviceId, String)>,
}

impl ApplyReport {
    /// Whether every configuration was acknowledged.
    pub fn is_clean(&self) -> bool {
        self.rejections.is_empty()
    }
}

/// Outcome of a [`Controller::reconcile`] pass.
#[derive(Debug, Clone, Default)]
pub struct ReconcileReport {
    /// Configurations re-issued to repair drift.
    pub repaired: usize,
    /// Repairs the devices rejected (need escalation).
    pub failures: Vec<(DeviceId, String)>,
}

impl ReconcileReport {
    /// Whether the plane is fully reconciled.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The centralized controller.
pub struct Controller {
    /// Device manager.
    pub devmgr: DevMgr,
    mux_at: HashMap<NodeId, DeviceId>,
    roadm_at: HashMap<NodeId, DeviceId>,
    next_port: HashMap<NodeId, u16>,
    degree_of: HashMap<(NodeId, EdgeId), u16>,
    revision: u64,
    journal: ConfigJournal,
}

impl Controller {
    /// Builds the OLS device plane for `optical`: per site one MUX and one
    /// ROADM (vendor assigned round-robin by site — multi-vendor by
    /// construction), with `wss`/`grid` equipment.
    pub fn build(optical: &Graph, wss: WssKind, grid: SpectrumGrid) -> Controller {
        let mut devmgr = DevMgr::default();
        let mut mux_at = HashMap::new();
        let mut roadm_at = HashMap::new();
        let mut degree_of = HashMap::new();
        for node in optical.nodes() {
            let vendor = Vendor::ALL[node.id.0 as usize % Vendor::ALL.len()];
            let mux = devmgr.register(
                vendor,
                DeviceKind::Mux,
                node.id,
                Hardware::Mux(Mux::new(wss, grid, MUX_PORTS)),
            );
            mux_at.insert(node.id, mux);
            let incident = optical.incident_edges(node.id);
            for (i, e) in incident.iter().enumerate() {
                degree_of.insert((node.id, *e), i as u16);
            }
            let roadm = devmgr.register(
                vendor,
                DeviceKind::Roadm,
                node.id,
                Hardware::Roadm(Roadm::new(wss, grid, incident.len() as u16)),
            );
            roadm_at.insert(node.id, roadm);
        }
        Controller {
            devmgr,
            mux_at,
            roadm_at,
            next_port: HashMap::new(),
            degree_of,
            revision: 0,
            journal: ConfigJournal::new(),
        }
    }

    /// The controller's configuration audit trail.
    pub fn journal(&self) -> &ConfigJournal {
        &self.journal
    }

    fn send(&mut self, id: DeviceId, cfg: StandardConfig) -> Result<(), (DeviceId, String)> {
        self.revision += 1;
        let handle = &self.devmgr.devices[&id];
        // The controller logs the standard document; the device receives
        // its native dialect.
        let _doc = ConfigDocument { revision: self.revision, config: cfg.clone() };
        let native = vendor::encode(handle.descriptor.vendor, &cfg);
        let result = handle
            .session
            .edit_config(self.revision, native)
            .map(|_| ())
            .map_err(|e| (id, e.to_string()));
        if result.is_ok() {
            self.journal.record(self.revision, id, cfg);
        }
        result
    }

    /// Pushes every wavelength of `plan` to the device plane.
    pub fn apply_plan(&mut self, plan: &Plan, optical: &Graph) -> ApplyReport {
        let mut report = ApplyReport::default();
        for w in &plan.wavelengths {
            // 1. Transponders at both ends (vendor follows the site).
            for site in [w.path.source(), w.path.destination()] {
                let vendor = Vendor::ALL[site.0 as usize % Vendor::ALL.len()];
                let t = self.devmgr.register(
                    vendor,
                    DeviceKind::Transponder,
                    site,
                    Hardware::Transponder(None),
                );
                match self.send(
                    t,
                    StandardConfig::Transponder {
                        format: w.format,
                        channel: w.channel,
                        enabled: true,
                    },
                ) {
                    Ok(()) => report.transponders_configured += 1,
                    Err(r) => report.rejections.push(r),
                }
            }
            // 2. MUX filter ports at both ends, passband = the channel.
            for site in [w.path.source(), w.path.destination()] {
                let mux = self.mux_at[&site];
                let port = {
                    let p = self.next_port.entry(site).or_insert(0);
                    let port = *p;
                    *p += 1;
                    port
                };
                if port >= MUX_PORTS {
                    report.rejections.push((mux, format!("site {site:?} out of filter ports")));
                    continue;
                }
                match self.send(mux, StandardConfig::MuxPort { port, passband: Some(w.channel) }) {
                    Ok(()) => report.mux_ports_configured += 1,
                    Err(r) => report.rejections.push(r),
                }
            }
            // 3. Express passbands at intermediate ROADMs.
            for i in 1..w.path.nodes.len().saturating_sub(1) {
                let node = w.path.nodes[i];
                let from = self.degree_of[&(node, w.path.edges[i - 1])];
                let to = self.degree_of[&(node, w.path.edges[i])];
                let roadm = self.roadm_at[&node];
                match self.send(
                    roadm,
                    StandardConfig::RoadmExpress { from_degree: from, to_degree: to, passband: w.channel },
                ) {
                    Ok(()) => report.expresses_configured += 1,
                    Err(r) => report.rejections.push(r),
                }
            }
        }
        let _ = optical;
        report
    }

    /// Applies one wavelength's configuration **atomically**: transponder
    /// line-configs, endpoint MUX passbands and intermediate ROADM
    /// expresses either all land or none do (first rejection rolls the
    /// applied prefix back). See [`crate::transaction`].
    pub fn apply_wavelength_atomic(
        &mut self,
        w: &flexwan_core::Wavelength,
    ) -> Result<usize, TxError> {
        let mut tx = Transaction::new();
        // 1. Transponders (registered up front; rollback disables them).
        for site in [w.path.source(), w.path.destination()] {
            let vendor = Vendor::ALL[site.0 as usize % Vendor::ALL.len()];
            let t = self.devmgr.register(
                vendor,
                DeviceKind::Transponder,
                site,
                Hardware::Transponder(None),
            );
            tx.step(
                t,
                StandardConfig::Transponder { format: w.format, channel: w.channel, enabled: true },
                StandardConfig::Transponder { format: w.format, channel: w.channel, enabled: false },
            );
        }
        // 2. Endpoint MUX filter ports.
        for site in [w.path.source(), w.path.destination()] {
            let mux = self.mux_at[&site];
            let p = self.next_port.entry(site).or_insert(0);
            let port = *p;
            *p += 1;
            tx.step(
                mux,
                StandardConfig::MuxPort { port, passband: Some(w.channel) },
                StandardConfig::MuxPort { port, passband: None },
            );
        }
        // 3. Intermediate ROADM expresses.
        for i in 1..w.path.nodes.len().saturating_sub(1) {
            let node = w.path.nodes[i];
            let from = self.degree_of[&(node, w.path.edges[i - 1])];
            let to = self.degree_of[&(node, w.path.edges[i])];
            tx.step(
                self.roadm_at[&node],
                StandardConfig::RoadmExpress { from_degree: from, to_degree: to, passband: w.channel },
                StandardConfig::RoadmRelease { from_degree: from, to_degree: to, passband: w.channel },
            );
        }
        tx.execute(|d, cfg| self.send(d, cfg.clone()).map_err(|(_, e)| e))
    }

    /// Repairs configuration drift: re-audits `plan` against live device
    /// state and re-issues the missing passbands/expresses (e.g. after a
    /// device was swapped for a factory-fresh unit in the field).
    pub fn reconcile(&mut self, plan: &Plan) -> ReconcileReport {
        let mut repaired = 0;
        let mut failures = Vec::new();
        for w in &plan.wavelengths {
            for site in [w.path.source(), w.path.destination()] {
                let mux_id = self.mux_at[&site];
                let passes = {
                    let mux = self.devmgr.device(mux_id);
                    match mux.session.get_state() {
                        Ok(state) => match state.hardware {
                            crate::device::Hardware::Mux(m) => {
                                (0..MUX_PORTS).any(|p| m.passes(p, &w.channel).unwrap_or(false))
                            }
                            _ => false,
                        },
                        Err(_) => false,
                    }
                };
                if !passes {
                    let p = self.next_port.entry(site).or_insert(0);
                    let port = *p;
                    *p += 1;
                    match self.send(mux_id, StandardConfig::MuxPort { port, passband: Some(w.channel) }) {
                        Ok(()) => repaired += 1,
                        Err(e) => failures.push(e),
                    }
                }
            }
            for i in 1..w.path.nodes.len().saturating_sub(1) {
                let node = w.path.nodes[i];
                let from = self.degree_of[&(node, w.path.edges[i - 1])];
                let to = self.degree_of[&(node, w.path.edges[i])];
                let roadm_id = self.roadm_at[&node];
                let expressed = {
                    let roadm = self.devmgr.device(roadm_id);
                    match roadm.session.get_state() {
                        Ok(state) => match state.hardware {
                            crate::device::Hardware::Roadm(r) => {
                                r.expresses(from, to, &w.channel).unwrap_or(false)
                            }
                            _ => false,
                        },
                        Err(_) => false,
                    }
                };
                if !expressed {
                    match self.send(
                        roadm_id,
                        StandardConfig::RoadmExpress { from_degree: from, to_degree: to, passband: w.channel },
                    ) {
                        Ok(()) => repaired += 1,
                        Err(e) => failures.push(e),
                    }
                }
            }
        }
        ReconcileReport { repaired, failures }
    }

    /// End-to-end audit: re-reads device state and verifies that every
    /// wavelength's channel is passed by its endpoint MUXes and expressed
    /// by every intermediate ROADM (the §4.3 channel-consistency check).
    pub fn audit_plan(&self, plan: &Plan) -> Vec<String> {
        let mut findings = Vec::new();
        // Collect endpoint passbands per site once.
        for (wi, w) in plan.wavelengths.iter().enumerate() {
            for site in [w.path.source(), w.path.destination()] {
                let mux = self.devmgr.device(self.mux_at[&site]);
                let state = match mux.session.get_state() {
                    Ok(s) => s,
                    Err(e) => {
                        findings.push(format!("wavelength {wi}: mux at {site:?} unreachable: {e}"));
                        continue;
                    }
                };
                let crate::device::Hardware::Mux(m) = state.hardware else {
                    findings.push(format!("device at {site:?} is not a MUX"));
                    continue;
                };
                let passed = (0..MUX_PORTS)
                    .any(|p| m.passes(p, &w.channel).unwrap_or(false));
                if !passed {
                    findings.push(format!(
                        "wavelength {wi}: channel {} not passed by any filter port at {site:?} (channel inconsistency)",
                        w.channel
                    ));
                }
            }
            for i in 1..w.path.nodes.len().saturating_sub(1) {
                let node = w.path.nodes[i];
                let roadm = self.devmgr.device(self.roadm_at[&node]);
                let Ok(state) = roadm.session.get_state() else {
                    findings.push(format!("wavelength {wi}: roadm at {node:?} unreachable"));
                    continue;
                };
                let crate::device::Hardware::Roadm(r) = state.hardware else { continue };
                let from = self.degree_of[&(node, w.path.edges[i - 1])];
                let to = self.degree_of[&(node, w.path.edges[i])];
                if !r.expresses(from, to, &w.channel).unwrap_or(false) {
                    findings.push(format!(
                        "wavelength {wi}: channel {} not expressed at {node:?} (channel inconsistency)",
                        w.channel
                    ));
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_core::planning::{plan, PlannerConfig};
    use flexwan_core::Scheme;
    use flexwan_topo::ip::IpTopology;

    fn backbone() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 150);
        g.add_edge(b, c, 200);
        g.add_edge(a, c, 500);
        let mut ip = IpTopology::new();
        ip.add_link(a, c, 600);
        ip.add_link(a, b, 400);
        (g, ip)
    }

    #[test]
    fn plan_applies_cleanly_and_audits_consistent() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig { grid: SpectrumGrid::new(96), ..Default::default() };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        assert!(p.is_feasible());
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(report.is_clean(), "rejections: {:?}", report.rejections);
        assert_eq!(report.transponders_configured, 2 * p.wavelengths.len());
        assert_eq!(report.mux_ports_configured, 2 * p.wavelengths.len());
        // §4.3's result: zero inconsistency under centralized control.
        let findings = ctrl.audit_plan(&p);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn radwan_plan_applies_on_fixed_grid_ols() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig { grid: SpectrumGrid::new(96), ..Default::default() };
        let p = plan(Scheme::Radwan, &g, &ip, &cfg);
        assert!(p.is_feasible());
        let mut ctrl = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(report.is_clean(), "rejections: {:?}", report.rejections);
        assert!(ctrl.audit_plan(&p).is_empty());
    }

    #[test]
    fn flexwan_plan_rejected_by_legacy_fixed_grid_ols() {
        // Deploying FlexWAN wavelengths over a rigid 75 GHz OLS must fail
        // at the devices — the §9 "smooth evolution" motivation.
        let (g, ip) = backbone();
        let cfg = PlannerConfig { grid: SpectrumGrid::new(96), ..Default::default() };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        // 600 G at 500 km → 100 GHz spacing: not a 75 GHz slot.
        let mut ctrl = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(!report.is_clean(), "legacy OLS should reject pixel-wise channels");
    }

    #[test]
    fn atomic_apply_rolls_back_on_mid_path_rejection() {
        // Fixed-grid OLS + an off-grid FlexWAN channel: the first MUX step
        // rejects, and the already-configured transponders must be
        // disabled again.
        let (g, ip) = backbone();
        let cfg = PlannerConfig { grid: SpectrumGrid::new(96), ..Default::default() };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let off_grid = p
            .wavelengths
            .iter()
            .find(|w| w.channel.start % 6 != 0 || w.channel.width.pixels() != 6)
            .expect("plan contains an off-75GHz-grid channel");
        let mut ctrl = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let before_devices = ctrl.devmgr.len();
        let err = ctrl.apply_wavelength_atomic(off_grid).unwrap_err();
        assert!(err.rollback_failures.is_empty(), "{err:?}");
        assert!(err.rolled_back >= 2, "transponders were applied first");
        // The registered transponders exist but are administratively down.
        assert_eq!(ctrl.devmgr.len(), before_devices + 2);
        for id in (0..ctrl.devmgr.len() as u32).map(DeviceId) {
            let Ok(state) = ctrl.devmgr.device(id).session.get_state() else { continue };
            if let crate::device::Hardware::Transponder(Some(t)) = state.hardware {
                assert!(!t.enabled, "rolled-back transponder still enabled");
            }
        }
    }

    #[test]
    fn atomic_apply_succeeds_on_pixel_wise_plane() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig { grid: SpectrumGrid::new(96), ..Default::default() };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        for w in &p.wavelengths {
            let steps = ctrl.apply_wavelength_atomic(w).unwrap();
            assert!(steps >= 4, "2 transponders + 2 mux ports at least");
        }
        assert!(ctrl.audit_plan(&p).is_empty());
    }

    #[test]
    fn reconcile_repairs_field_swapped_device() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig { grid: SpectrumGrid::new(96), ..Default::default() };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        assert!(ctrl.apply_plan(&p, &g).is_clean());
        assert!(ctrl.audit_plan(&p).is_empty());
        // A MUX is swapped for a factory-fresh unit: drift appears…
        let mux0 = ctrl.mux_at[&p.wavelengths[0].path.source()];
        ctrl.devmgr.reset_device(mux0);
        assert!(!ctrl.audit_plan(&p).is_empty(), "drift must be visible");
        // …and reconcile repairs it.
        let rep = ctrl.reconcile(&p);
        assert!(rep.is_clean(), "{:?}", rep.failures);
        assert!(rep.repaired > 0);
        assert!(ctrl.audit_plan(&p).is_empty(), "plane reconciled");
        // A second pass is a no-op (reconcile is idempotent).
        assert_eq!(ctrl.reconcile(&p).repaired, 0);
    }

    #[test]
    fn journal_records_acknowledged_configs_only() {
        let (g, ip) = backbone();
        let cfg = PlannerConfig { grid: SpectrumGrid::new(96), ..Default::default() };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let report = ctrl.apply_plan(&p, &g);
        assert!(report.is_clean());
        let total = report.transponders_configured
            + report.mux_ports_configured
            + report.expresses_configured;
        assert_eq!(ctrl.journal().len(), total);
        // Forensics: what was the first MUX's first port running?
        let mux = ctrl.mux_at[&p.wavelengths[0].path.source()];
        assert!(ctrl.journal().latest(mux).is_some());
        // Rejected configs are absent: a legacy plane rejects everything
        // off-grid and journals nothing for those sends.
        let mut legacy = Controller::build(&g, Scheme::Radwan.wss(), cfg.grid);
        let rep2 = legacy.apply_plan(&p, &g);
        let total2 = rep2.transponders_configured
            + rep2.mux_ports_configured
            + rep2.expresses_configured;
        assert_eq!(legacy.journal().len(), total2);
        assert!(legacy.journal().len() < ctrl.journal().len());
    }

    #[test]
    fn vendor_diversity_is_real() {
        let (g, _) = backbone();
        let ctrl = Controller::build(&g, WssKind::PixelWise, SpectrumGrid::new(96));
        let vendors: std::collections::HashSet<_> = ctrl
            .devmgr
            .devices
            .values()
            .map(|d| d.descriptor.vendor)
            .collect();
        assert_eq!(vendors.len(), 3, "three sites → three vendors");
    }
}
