//! Vendor adapters: translating standard configuration into each vendor's
//! native dialect (§4.3, §9 "vendor-agnostic optical backbone").
//!
//! Every vendor ships a different management encoding — units, field
//! names, even how spectrum is addressed — which is exactly the
//! fragmentation the centralized controller hides. The adapters are
//! deliberately lossless: `decode(encode(c)) == c` for every standard
//! config, proven by round-trip and property tests.

use flexwan_util::json;
use flexwan_util::json::Value;

use flexwan_optical::spectrum::{PixelRange, PixelWidth, PIXEL_GHZ};
use flexwan_optical::OpticalError;

use crate::config::StandardConfig;
use crate::model::Vendor;

/// Translation error: the native document was malformed or off-grid.
///
/// When the failure originates in the optical layer (an off-grid width
/// or start), the underlying [`OpticalError`] is preserved and exposed
/// through [`std::error::Error::source`] so callers can report — or
/// match on — the root cause instead of a flattened string.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectError {
    msg: String,
    source: Option<OpticalError>,
}

impl DialectError {
    /// A translation error with no deeper cause.
    pub fn new(msg: impl Into<String>) -> Self {
        DialectError {
            msg: msg.into(),
            source: None,
        }
    }

    /// A translation error caused by an optical-layer rejection.
    pub fn with_source(msg: impl Into<String>, source: OpticalError) -> Self {
        DialectError {
            msg: msg.into(),
            source: Some(source),
        }
    }

    /// The dialect-level message (without the source chain).
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for DialectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vendor dialect error: {}", self.msg)
    }
}

impl std::error::Error for DialectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_ref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Encodes a pixel range in the vendor's native spectrum addressing.
fn encode_range(vendor: Vendor, r: &PixelRange) -> Value {
    match vendor {
        // Vendor A: GHz offsets from band start.
        Vendor::VendorA => json!({
            "low_ghz": r.low_ghz(),
            "high_ghz": r.high_ghz(),
        }),
        // Vendor B: 12.5 GHz slice indices, inclusive start, exclusive end.
        Vendor::VendorB => json!({
            "slice_start": r.start,
            "slice_count": r.width.pixels(),
        }),
        // Vendor C: MHz integers with its own field names.
        Vendor::VendorC => json!({
            "f_min_mhz": (r.low_ghz() * 1000.0) as u64,
            "f_max_mhz": (r.high_ghz() * 1000.0) as u64,
        }),
    }
}

fn get_u64(v: &Value, key: &str) -> Result<u64, DialectError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| DialectError::new(format!("missing integer field {key}")))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, DialectError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| DialectError::new(format!("missing numeric field {key}")))
}

/// Decodes a vendor-native spectrum address back to pixels.
fn decode_range(vendor: Vendor, v: &Value) -> Result<PixelRange, DialectError> {
    let (low_ghz, width_ghz) = match vendor {
        Vendor::VendorA => {
            let low = get_f64(v, "low_ghz")?;
            (low, get_f64(v, "high_ghz")? - low)
        }
        Vendor::VendorB => {
            let start = get_u64(v, "slice_start")? as f64 * PIXEL_GHZ;
            (start, get_u64(v, "slice_count")? as f64 * PIXEL_GHZ)
        }
        Vendor::VendorC => {
            let low = get_u64(v, "f_min_mhz")? as f64 / 1000.0;
            (low, get_u64(v, "f_max_mhz")? as f64 / 1000.0 - low)
        }
    };
    let width = PixelWidth::from_ghz(width_ghz).map_err(|e| {
        DialectError::with_source(format!("native width {width_ghz} GHz is off-grid"), e)
    })?;
    let start = low_ghz / PIXEL_GHZ;
    if (start - start.round()).abs() > 1e-6 || start < 0.0 {
        return Err(DialectError::new(format!(
            "native start {low_ghz} GHz off-grid"
        )));
    }
    Ok(PixelRange::new(start.round() as u32, width))
}

/// Encodes a standard config into the vendor's native document.
pub fn encode(vendor: Vendor, cfg: &StandardConfig) -> Value {
    match cfg {
        StandardConfig::Transponder {
            format,
            channel,
            enabled,
        } => json!({
            "op": "line-config",
            "rate_gbps": format.data_rate_gbps,
            "reach_km": format.reach_km,
            "fec_overhead_pct": format.fec.percent(),
            "baud_gbd": format.baud_gbd,
            "modulation": format.modulation.name(),
            "spectrum": encode_range(vendor, channel),
            "admin_up": enabled,
        }),
        StandardConfig::MuxPort { port, passband } => json!({
            "op": "filter-port",
            "port": port,
            "passband": passband.as_ref().map(|r| encode_range(vendor, r)),
        }),
        StandardConfig::RoadmExpress {
            from_degree,
            to_degree,
            passband,
        } => json!({
            "op": "express-add",
            "ingress": from_degree,
            "egress": to_degree,
            "passband": encode_range(vendor, passband),
        }),
        StandardConfig::RoadmRelease {
            from_degree,
            to_degree,
            passband,
        } => json!({
            "op": "express-del",
            "ingress": from_degree,
            "egress": to_degree,
            "passband": encode_range(vendor, passband),
        }),
        StandardConfig::AmplifierGain { gain_db } => json!({
            "op": "gain",
            "gain_db": gain_db,
        }),
    }
}

/// Decodes a vendor-native document back into standard form. (Devices use
/// this to apply configs; the controller uses it in audits.)
pub fn decode(vendor: Vendor, v: &Value) -> Result<StandardConfig, DialectError> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| DialectError::new("missing op"))?;
    match op {
        "line-config" => {
            let channel = decode_range(
                vendor,
                v.get("spectrum")
                    .ok_or_else(|| DialectError::new("missing spectrum"))?,
            )?;
            let rate = get_u64(v, "rate_gbps")? as u32;
            let reach = get_u64(v, "reach_km")? as u32;
            let format =
                flexwan_optical::format::TransponderFormat::derive(rate, channel.width, reach);
            let enabled = v.get("admin_up").and_then(Value::as_bool).unwrap_or(false);
            Ok(StandardConfig::Transponder {
                format,
                channel,
                enabled,
            })
        }
        "filter-port" => {
            let port = get_u64(v, "port")? as u16;
            let passband = match v.get("passband") {
                None | Some(Value::Null) => None,
                Some(pb) => Some(decode_range(vendor, pb)?),
            };
            Ok(StandardConfig::MuxPort { port, passband })
        }
        "express-add" | "express-del" => {
            let from_degree = get_u64(v, "ingress")? as u16;
            let to_degree = get_u64(v, "egress")? as u16;
            let passband = decode_range(
                vendor,
                v.get("passband")
                    .ok_or_else(|| DialectError::new("missing passband"))?,
            )?;
            Ok(if op == "express-add" {
                StandardConfig::RoadmExpress {
                    from_degree,
                    to_degree,
                    passband,
                }
            } else {
                StandardConfig::RoadmRelease {
                    from_degree,
                    to_degree,
                    passband,
                }
            })
        }
        "gain" => Ok(StandardConfig::AmplifierGain {
            gain_db: get_f64(v, "gain_db")?,
        }),
        other => Err(DialectError::new(format!("unknown op {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::format::TransponderFormat;

    fn sample_configs() -> Vec<StandardConfig> {
        let r = PixelRange::new(10, PixelWidth::new(7));
        vec![
            StandardConfig::Transponder {
                format: TransponderFormat::derive(500, PixelWidth::new(7), 600),
                channel: PixelRange::new(10, PixelWidth::new(7)),
                enabled: true,
            },
            StandardConfig::MuxPort {
                port: 5,
                passband: Some(r),
            },
            StandardConfig::MuxPort {
                port: 6,
                passband: None,
            },
            StandardConfig::RoadmExpress {
                from_degree: 1,
                to_degree: 2,
                passband: r,
            },
            StandardConfig::RoadmRelease {
                from_degree: 1,
                to_degree: 2,
                passband: r,
            },
            StandardConfig::AmplifierGain { gain_db: 16.0 },
        ]
    }

    #[test]
    fn round_trip_every_vendor_every_config() {
        for vendor in Vendor::ALL {
            for cfg in sample_configs() {
                let native = encode(vendor, &cfg);
                let back = decode(vendor, &native)
                    .unwrap_or_else(|e| panic!("{vendor:?} failed to decode {native}: {e}"));
                match (&cfg, &back) {
                    // Transponder formats re-derive internals; compare the
                    // externally meaningful fields.
                    (
                        StandardConfig::Transponder {
                            format: f1,
                            channel: c1,
                            enabled: e1,
                        },
                        StandardConfig::Transponder {
                            format: f2,
                            channel: c2,
                            enabled: e2,
                        },
                    ) => {
                        assert_eq!(f1.data_rate_gbps, f2.data_rate_gbps);
                        assert_eq!(f1.spacing, f2.spacing);
                        assert_eq!(f1.reach_km, f2.reach_km);
                        assert_eq!(c1, c2);
                        assert_eq!(e1, e2);
                    }
                    _ => assert_eq!(&cfg, &back, "{vendor:?}"),
                }
            }
        }
    }

    #[test]
    fn dialects_actually_differ() {
        let cfg = StandardConfig::MuxPort {
            port: 0,
            passband: Some(PixelRange::new(4, PixelWidth::new(6))),
        };
        let a = encode(Vendor::VendorA, &cfg).to_string();
        let b = encode(Vendor::VendorB, &cfg).to_string();
        let c = encode(Vendor::VendorC, &cfg).to_string();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(a.contains("low_ghz"));
        assert!(b.contains("slice_start"));
        assert!(c.contains("f_min_mhz"));
    }

    #[test]
    fn off_grid_native_rejected() {
        // 55 GHz is not a pixel multiple: VendorA document must not decode.
        let bad = json!({
            "op": "filter-port",
            "port": 1,
            "passband": json!({ "low_ghz": 0.0, "high_ghz": 55.0 }),
        });
        assert!(decode(Vendor::VendorA, &bad).is_err());
    }

    #[test]
    fn off_grid_width_preserves_optical_source() {
        // The width is off the 12.5 GHz grid, so the optical layer is the
        // root cause and must survive the translation into DialectError.
        let bad = json!({
            "op": "filter-port",
            "port": 1,
            "passband": json!({ "low_ghz": 0.0, "high_ghz": 55.0 }),
        });
        let err = decode(Vendor::VendorA, &bad).unwrap_err();
        assert!(err.message().contains("off-grid"), "{err}");
        let source = std::error::Error::source(&err).expect("optical cause preserved");
        assert!(source.to_string().contains("12.5"), "root cause: {source}");
    }

    #[test]
    fn unknown_op_rejected() {
        let bad = json!({ "op": "self-destruct" });
        assert!(decode(Vendor::VendorB, &bad).is_err());
    }
}
