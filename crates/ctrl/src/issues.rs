//! Spectrum-related issues in a multi-vendor backbone (§3.4, Figure 5) and
//! the uncoordinated-control counterfactual.
//!
//! With per-vendor controllers, "configuring thousands of IP links …
//! increases the likelihood of spectrum-related issues": each vendor's
//! controller assigns spectrum knowing only its own devices, and only
//! configures passbands on OLS sites it owns. [`uncoordinated_assignment`]
//! simulates exactly that; [`find_conflicts`] / [`find_inconsistencies`]
//! audit the result. The centralized planner's output audits clean by
//! construction — the §4.3 "*zero* spectrum inconsistency and conflict"
//! claim, reproduced as a test and as the `tab_ctrl_issues` bench target.

use std::collections::HashMap;

use flexwan_optical::spectrum::{PixelRange, SpectrumGrid, SpectrumMask};
use flexwan_optical::OpticalError;
use flexwan_topo::graph::{EdgeId, NodeId};
use flexwan_topo::path::Path;

use crate::model::Vendor;

/// A wavelength as configured by some control plane: its path and channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfiguredChannel {
    /// The optical path.
    pub path: Path,
    /// The spectrum the transponder emits on.
    pub channel: PixelRange,
    /// The vendor whose controller configured it.
    pub vendor: Vendor,
}

/// A detected spectrum issue.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectrumIssue {
    /// Two wavelengths overlap on a fiber (Figure 5(b)).
    Conflict {
        /// The shared fiber.
        fiber: EdgeId,
        /// Indices of the clashing wavelengths.
        wavelengths: (usize, usize),
    },
    /// A wavelength crosses a site whose OLS has no matching passband
    /// (Figure 5(a)): its signal is clipped.
    Inconsistency {
        /// The wavelength affected.
        wavelength: usize,
        /// The site lacking the passband.
        site: NodeId,
    },
}

/// Finds channel conflicts: overlapping channels sharing a fiber.
pub fn find_conflicts(channels: &[ConfiguredChannel]) -> Vec<SpectrumIssue> {
    let mut per_fiber: HashMap<EdgeId, Vec<usize>> = HashMap::new();
    for (i, c) in channels.iter().enumerate() {
        for e in &c.path.edges {
            per_fiber.entry(*e).or_default().push(i);
        }
    }
    let mut issues = Vec::new();
    let mut fibers: Vec<_> = per_fiber.into_iter().collect();
    fibers.sort_by_key(|(e, _)| *e);
    for (fiber, idxs) in fibers {
        for (a_pos, &a) in idxs.iter().enumerate() {
            for &b in &idxs[a_pos + 1..] {
                if channels[a].channel.overlaps(&channels[b].channel) {
                    issues.push(SpectrumIssue::Conflict {
                        fiber,
                        wavelengths: (a, b),
                    });
                }
            }
        }
    }
    issues
}

/// Finds channel inconsistencies given the set of passbands actually
/// configured at each site (`site → configured passbands`).
pub fn find_inconsistencies(
    channels: &[ConfiguredChannel],
    passbands_at: &HashMap<NodeId, Vec<PixelRange>>,
) -> Vec<SpectrumIssue> {
    let mut issues = Vec::new();
    for (i, c) in channels.iter().enumerate() {
        for node in &c.path.nodes {
            let ok = passbands_at
                .get(node)
                .map(|pbs| pbs.iter().any(|pb| pb.contains(&c.channel)))
                .unwrap_or(false);
            if !ok {
                issues.push(SpectrumIssue::Inconsistency {
                    wavelength: i,
                    site: *node,
                });
            }
        }
    }
    issues
}

/// The uncoordinated multi-vendor counterfactual.
///
/// Input: the demands as (path, spacing, vendor) triples — what each
/// vendor's controller is asked to provision. Each vendor controller:
///
/// * assigns spectrum first-fit against **its own wavelengths only** (it
///   cannot see other vendors' usage on shared fibers);
/// * configures passbands **only at sites it owns**.
///
/// Returns the configured channels plus the per-site passbands, ready for
/// the issue finders.
pub fn uncoordinated_assignment(
    demands: &[(Path, flexwan_optical::spectrum::PixelWidth, Vendor)],
    site_owner: &HashMap<NodeId, Vendor>,
    grid: SpectrumGrid,
    num_fibers: usize,
) -> (Vec<ConfiguredChannel>, HashMap<NodeId, Vec<PixelRange>>) {
    let mut per_vendor_masks: HashMap<Vendor, Vec<SpectrumMask>> = HashMap::new();
    let mut channels = Vec::new();
    let mut passbands_at: HashMap<NodeId, Vec<PixelRange>> = HashMap::new();
    for (path, width, vendor) in demands {
        let masks = per_vendor_masks
            .entry(*vendor)
            .or_insert_with(|| vec![SpectrumMask::new(grid); num_fibers]);
        let views: Vec<&SpectrumMask> = path.edges.iter().map(|e| &masks[e.0 as usize]).collect();
        let Some(range) = SpectrumMask::first_fit_joint(&views, *width) else {
            continue; // vendor-local spectrum exhausted; demand dropped
        };
        for e in &path.edges {
            match masks[e.0 as usize].occupy(&range) {
                Ok(()) | Err(OpticalError::SpectrumConflict { .. }) => {}
                Err(other) => panic!("unexpected occupy failure: {other}"),
            }
        }
        // Passbands only at sites this vendor owns.
        for node in &path.nodes {
            if site_owner.get(node) == Some(vendor) {
                passbands_at.entry(*node).or_default().push(range);
            }
        }
        channels.push(ConfiguredChannel {
            path: path.clone(),
            channel: range,
            vendor: *vendor,
        });
    }
    (channels, passbands_at)
}

/// The centralized counterpart: one global first-fit over shared masks,
/// passbands configured at every site of every path (what
/// [`crate::controller::Controller`] does against live devices, in pure
/// form for the counterfactual comparison).
pub fn centralized_assignment(
    demands: &[(Path, flexwan_optical::spectrum::PixelWidth, Vendor)],
    grid: SpectrumGrid,
    num_fibers: usize,
) -> (Vec<ConfiguredChannel>, HashMap<NodeId, Vec<PixelRange>>) {
    let mut masks = vec![SpectrumMask::new(grid); num_fibers];
    let mut channels = Vec::new();
    let mut passbands_at: HashMap<NodeId, Vec<PixelRange>> = HashMap::new();
    for (path, width, vendor) in demands {
        let views: Vec<&SpectrumMask> = path.edges.iter().map(|e| &masks[e.0 as usize]).collect();
        let Some(range) = SpectrumMask::first_fit_joint(&views, *width) else {
            continue;
        };
        for e in &path.edges {
            masks[e.0 as usize].occupy(&range).expect("jointly free");
        }
        for node in &path.nodes {
            passbands_at.entry(*node).or_default().push(range);
        }
        channels.push(ConfiguredChannel {
            path: path.clone(),
            channel: range,
            vendor: *vendor,
        });
    }
    (channels, passbands_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::PixelWidth;
    use flexwan_topo::graph::Graph;

    type CrossingWorld = (
        Graph,
        Vec<(Path, PixelWidth, Vendor)>,
        HashMap<NodeId, Vendor>,
    );

    /// Two paths crossing a shared middle fiber, provisioned by different
    /// vendors (Figure 5(b)'s setup).
    fn crossing() -> CrossingWorld {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let ab = g.add_edge(a, b, 100);
        let bc = g.add_edge(b, c, 100); // shared
        let cd = g.add_edge(c, d, 100);
        let p1 = Path::new(&g, vec![a, b, c], vec![ab, bc]);
        let p2 = Path::new(&g, vec![b, c, d], vec![bc, cd]);
        // Different spacings so the vendors' first-fit channels overlap
        // without coinciding (a 75 GHz and a 50 GHz wavelength).
        let demands = vec![
            (p1, PixelWidth::new(6), Vendor::VendorA),
            (p2, PixelWidth::new(4), Vendor::VendorB),
        ];
        let owner: HashMap<NodeId, Vendor> = [
            (a, Vendor::VendorA),
            (b, Vendor::VendorA),
            (c, Vendor::VendorB),
            (d, Vendor::VendorB),
        ]
        .into_iter()
        .collect();
        (g, demands, owner)
    }

    #[test]
    fn uncoordinated_control_conflicts_on_shared_fiber() {
        let (g, demands, owner) = crossing();
        let (channels, _) =
            uncoordinated_assignment(&demands, &owner, SpectrumGrid::new(32), g.num_edges());
        // Both vendors first-fit to pixel 0 on the shared fiber.
        let conflicts = find_conflicts(&channels);
        assert_eq!(conflicts.len(), 1);
        assert!(
            matches!(conflicts[0], SpectrumIssue::Conflict { fiber, .. } if fiber == EdgeId(1))
        );
    }

    #[test]
    fn uncoordinated_control_leaves_inconsistencies() {
        let (g, demands, owner) = crossing();
        let (channels, passbands) =
            uncoordinated_assignment(&demands, &owner, SpectrumGrid::new(32), g.num_edges());
        // Wavelength 0 (VendorA) crosses site c owned by VendorB: no
        // passband there.
        let inc = find_inconsistencies(&channels, &passbands);
        assert!(inc.iter().any(
            |i| matches!(i, SpectrumIssue::Inconsistency { wavelength: 0, site } if site.0 == 2)
        ));
    }

    #[test]
    fn centralized_control_is_clean() {
        let (g, demands, _) = crossing();
        let (channels, passbands) =
            centralized_assignment(&demands, SpectrumGrid::new(32), g.num_edges());
        assert_eq!(channels.len(), 2, "both demands placed");
        assert!(find_conflicts(&channels).is_empty());
        assert!(find_inconsistencies(&channels, &passbands).is_empty());
        // And the two wavelengths landed on disjoint spectrum.
        assert!(!channels[0].channel.overlaps(&channels[1].channel));
    }

    #[test]
    fn conflict_finder_ignores_disjoint_spectrum() {
        let (g, demands, _) = crossing();
        let (mut channels, _) =
            centralized_assignment(&demands, SpectrumGrid::new(32), g.num_edges());
        // Force-disjoint channels: no conflicts even on the shared fiber.
        assert!(find_conflicts(&channels).is_empty());
        // Now force both to pixel 0: conflict appears.
        channels[1].channel = channels[0].channel;
        assert_eq!(find_conflicts(&channels).len(), 1);
    }
}
