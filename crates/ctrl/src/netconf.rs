//! The configuration session layer (NETCONF stand-in).
//!
//! Each managed device holds a session: a request/reply channel pair with
//! edit-config / get-state semantics and timeouts. The wire payload is the
//! vendor-*native* document — translation to the standard model happens at
//! the controller edge ([`crate::vendor`]), so a device only ever sees its
//! own dialect, exactly as in a real multi-vendor backbone.

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use serde_json::Value;

use crate::device::DeviceState;

/// Default session timeout. Devices are in-process; anything slower than
/// this is a wedged device thread.
pub const SESSION_TIMEOUT: Duration = Duration::from_secs(5);

/// A request sent to a device.
#[derive(Debug)]
pub enum NetconfRequest {
    /// Apply a vendor-native configuration document.
    EditConfig {
        /// Controller revision stamp.
        revision: u64,
        /// Vendor-native payload.
        native: Value,
    },
    /// Read the device's current state.
    GetState,
    /// Terminate the device thread.
    Shutdown,
}

/// A reply from a device.
#[derive(Debug)]
pub enum NetconfReply {
    /// Configuration applied; echoes the revision.
    Ok {
        /// The applied revision.
        revision: u64,
    },
    /// Configuration rejected.
    Rejected {
        /// The failed revision.
        revision: u64,
        /// Human-readable cause.
        cause: String,
    },
    /// State snapshot.
    State(Box<DeviceState>),
}

/// Session errors at the controller edge.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The device rejected the configuration.
    Rejected(String),
    /// The device did not answer within the timeout (or disconnected).
    Unreachable,
    /// The device answered with the wrong reply kind (protocol bug).
    ProtocolViolation,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Rejected(c) => write!(f, "device rejected configuration: {c}"),
            SessionError::Unreachable => write!(f, "device unreachable"),
            SessionError::ProtocolViolation => write!(f, "protocol violation"),
        }
    }
}

impl std::error::Error for SessionError {}

/// The controller's end of a device session.
#[derive(Debug, Clone)]
pub struct NetconfSession {
    pub(crate) req: Sender<NetconfRequest>,
    pub(crate) rep: Receiver<NetconfReply>,
}

impl NetconfSession {
    fn recv(&self) -> Result<NetconfReply, SessionError> {
        match self.rep.recv_timeout(SESSION_TIMEOUT) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                Err(SessionError::Unreachable)
            }
        }
    }

    /// Sends a native configuration document; returns the acknowledged
    /// revision.
    pub fn edit_config(&self, revision: u64, native: Value) -> Result<u64, SessionError> {
        self.req
            .send(NetconfRequest::EditConfig { revision, native })
            .map_err(|_| SessionError::Unreachable)?;
        match self.recv()? {
            NetconfReply::Ok { revision } => Ok(revision),
            NetconfReply::Rejected { cause, .. } => Err(SessionError::Rejected(cause)),
            NetconfReply::State(_) => Err(SessionError::ProtocolViolation),
        }
    }

    /// Reads the device state.
    pub fn get_state(&self) -> Result<DeviceState, SessionError> {
        self.req.send(NetconfRequest::GetState).map_err(|_| SessionError::Unreachable)?;
        match self.recv()? {
            NetconfReply::State(s) => Ok(*s),
            NetconfReply::Ok { .. } | NetconfReply::Rejected { .. } => {
                Err(SessionError::ProtocolViolation)
            }
        }
    }

    /// Asks the device thread to exit (best-effort).
    pub fn shutdown(&self) {
        let _ = self.req.send(NetconfRequest::Shutdown);
    }
}
