//! The configuration session layer (NETCONF stand-in).
//!
//! Each managed device holds a session: a request/reply channel pair with
//! edit-config / get-state semantics and timeouts. The wire payload is the
//! vendor-*native* document — translation to the standard model happens at
//! the controller edge ([`crate::vendor`]), so a device only ever sees its
//! own dialect, exactly as in a real multi-vendor backbone.
//!
//! A session may be *armed* with a [`FaultInjector`]
//! ([`crate::faults`]): every request then passes through the injector,
//! which can drop it, reject it, discard the reply, serve stale state, or
//! crash the device thread — the chaos harness's interposition point.

use std::sync::Arc;
use std::time::Duration;

use flexwan_obs::Obs;
use flexwan_util::json::Value;
use flexwan_util::sync::{Receiver, RecvTimeoutError, Sender};

use crate::device::DeviceState;
use crate::faults::{EditVerdict, FaultInjector, StateVerdict};
use crate::model::DeviceId;

/// Default session timeout. Devices are in-process; anything slower than
/// this is a wedged device thread.
pub const SESSION_TIMEOUT: Duration = Duration::from_secs(5);

/// A request sent to a device.
#[derive(Debug)]
pub enum NetconfRequest {
    /// Apply a vendor-native configuration document.
    EditConfig {
        /// Controller revision stamp.
        revision: u64,
        /// Vendor-native payload.
        native: Value,
    },
    /// Read the device's current state.
    GetState,
    /// Terminate the device thread.
    Shutdown,
}

/// A reply from a device.
#[derive(Debug)]
pub enum NetconfReply {
    /// Configuration applied; echoes the revision.
    Ok {
        /// The applied revision.
        revision: u64,
    },
    /// Configuration rejected.
    Rejected {
        /// The failed revision.
        revision: u64,
        /// Human-readable cause.
        cause: String,
    },
    /// State snapshot.
    State(Box<DeviceState>),
}

/// Session errors at the controller edge.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The device rejected the configuration.
    Rejected(String),
    /// The device did not answer within the timeout (or disconnected).
    Unreachable,
    /// The device answered with the wrong reply kind (protocol bug).
    ProtocolViolation,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Rejected(c) => write!(f, "device rejected configuration: {c}"),
            SessionError::Unreachable => write!(f, "device unreachable"),
            SessionError::ProtocolViolation => write!(f, "protocol violation"),
        }
    }
}

impl std::error::Error for SessionError {}

/// The controller's end of a device session.
#[derive(Debug, Clone)]
pub struct NetconfSession {
    pub(crate) req: Sender<NetconfRequest>,
    pub(crate) rep: Receiver<NetconfReply>,
    pub(crate) device: DeviceId,
    pub(crate) injector: Option<Arc<FaultInjector>>,
    pub(crate) obs: Option<Obs>,
}

impl NetconfSession {
    /// Arms the session with a fault injector; every subsequent request
    /// consults it.
    pub(crate) fn arm(&mut self, device: DeviceId, injector: Arc<FaultInjector>) {
        self.device = device;
        self.injector = Some(injector);
    }

    /// Arms the session with an observability bundle: every edit-config /
    /// get-state attempt is counted per device from here on.
    pub(crate) fn observe(&mut self, device: DeviceId, obs: Obs) {
        self.device = device;
        self.obs = Some(obs);
    }

    /// Counts one per-device session event.
    fn count(&self, metric: &str) {
        if let Some(obs) = &self.obs {
            let device = self.device.0.to_string();
            obs.registry()
                .counter_with(metric, &[("device", &device)])
                .inc();
        }
    }

    /// Counts one per-device session failure, tagged with the error kind.
    fn count_failure(&self, metric: &str, err: &SessionError) {
        if let Some(obs) = &self.obs {
            let device = self.device.0.to_string();
            let kind = match err {
                SessionError::Rejected(_) => "rejected",
                SessionError::Unreachable => "unreachable",
                SessionError::ProtocolViolation => "protocol",
            };
            obs.registry()
                .counter_with(metric, &[("device", &device), ("kind", kind)])
                .inc();
        }
    }

    fn recv(&self) -> Result<NetconfReply, SessionError> {
        match self.rep.recv_timeout(SESSION_TIMEOUT) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                Err(SessionError::Unreachable)
            }
        }
    }

    /// Sends a native configuration document; returns the acknowledged
    /// revision.
    pub fn edit_config(&self, revision: u64, native: Value) -> Result<u64, SessionError> {
        self.count("netconf_edit_attempts_total");
        let result = self.edit_config_inner(revision, native);
        if let Err(e) = &result {
            self.count_failure("netconf_edit_failures_total", e);
        }
        result
    }

    fn edit_config_inner(&self, revision: u64, native: Value) -> Result<u64, SessionError> {
        if let Some(inj) = &self.injector {
            match inj.on_edit_config(self.device) {
                EditVerdict::Deliver => {}
                EditVerdict::Drop => return Err(SessionError::Unreachable),
                EditVerdict::Reject => {
                    return Err(SessionError::Rejected(
                        "injected fault: edit-config rejected".into(),
                    ))
                }
                EditVerdict::DelayReply => {
                    // The device applies the config, but its reply lands
                    // after SESSION_TIMEOUT: deliver, then discard the
                    // (late) reply so it cannot poison the next exchange.
                    self.req
                        .send(NetconfRequest::EditConfig { revision, native })
                        .map_err(|_| SessionError::Unreachable)?;
                    let _ = self.rep.recv_timeout(SESSION_TIMEOUT);
                    return Err(SessionError::Unreachable);
                }
                EditVerdict::Crash => {
                    let _ = self.req.send(NetconfRequest::Shutdown);
                    return Err(SessionError::Unreachable);
                }
            }
        }
        self.req
            .send(NetconfRequest::EditConfig { revision, native })
            .map_err(|_| SessionError::Unreachable)?;
        match self.recv()? {
            NetconfReply::Ok { revision } => Ok(revision),
            NetconfReply::Rejected { cause, .. } => Err(SessionError::Rejected(cause)),
            NetconfReply::State(_) => Err(SessionError::ProtocolViolation),
        }
    }

    /// Reads the device state.
    pub fn get_state(&self) -> Result<DeviceState, SessionError> {
        self.count("netconf_get_state_total");
        let result = self.get_state_inner();
        if let Err(e) = &result {
            self.count_failure("netconf_get_state_failures_total", e);
        }
        result
    }

    fn get_state_inner(&self) -> Result<DeviceState, SessionError> {
        if let Some(inj) = &self.injector {
            match inj.on_get_state(self.device) {
                StateVerdict::Deliver => {}
                StateVerdict::Drop => return Err(SessionError::Unreachable),
                StateVerdict::Stale(s) => return Ok(*s),
            }
        }
        self.req
            .send(NetconfRequest::GetState)
            .map_err(|_| SessionError::Unreachable)?;
        match self.recv()? {
            NetconfReply::State(s) => {
                if let Some(inj) = &self.injector {
                    inj.record_state(self.device, (*s).clone());
                }
                Ok(*s)
            }
            NetconfReply::Ok { .. } | NetconfReply::Rejected { .. } => {
                Err(SessionError::ProtocolViolation)
            }
        }
    }

    /// Asks the device thread to exit (best-effort).
    pub fn shutdown(&self) {
        let _ = self.req.send(NetconfRequest::Shutdown);
    }
}
