//! Configuration journal: the controller's audit trail.
//!
//! Every acknowledged configuration is recorded with its revision stamp.
//! Production controllers keep exactly this ledger: it answers "what was
//! device X running at revision R?" during incident forensics, feeds the
//! §4.4 fault-tolerance story (a promoted replica replays the journal),
//! and gives [`ConfigJournal::config_at`]-style rollback a source of
//! truth.

use crate::config::StandardConfig;
use crate::model::DeviceId;
use flexwan_util::json::{self, FromJson, ToJson, Value};

/// One acknowledged configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Controller-wide revision (monotonic).
    pub revision: u64,
    /// The configured device.
    pub device: DeviceId,
    /// The standard-form configuration that was applied.
    pub config: StandardConfig,
}

/// Append-only ledger of acknowledged configurations.
#[derive(Debug, Clone, Default)]
pub struct ConfigJournal {
    entries: Vec<JournalEntry>,
}

impl ConfigJournal {
    /// An empty journal.
    pub fn new() -> Self {
        ConfigJournal::default()
    }

    /// Records an acknowledged configuration. Revisions must be strictly
    /// increasing (the controller stamps them).
    pub fn record(&mut self, revision: u64, device: DeviceId, config: StandardConfig) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.revision < revision),
            "journal revisions must be strictly increasing"
        );
        self.entries.push(JournalEntry {
            revision,
            device,
            config,
        });
    }

    /// Every entry, in revision order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Entries touching `device`, in revision order.
    pub fn history(&self, device: DeviceId) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter().filter(move |e| e.device == device)
    }

    /// The most recent configuration of `device`.
    pub fn latest(&self, device: DeviceId) -> Option<&JournalEntry> {
        self.history(device).last()
    }

    /// The configuration `device` was running at controller revision
    /// `revision` (the last entry with revision ≤ the bound).
    pub fn config_at(&self, device: DeviceId, revision: u64) -> Option<&StandardConfig> {
        self.history(device)
            .take_while(|e| e.revision <= revision)
            .last()
            .map(|e| &e.config)
    }

    /// Devices touched between two revisions (exclusive, inclusive) — the
    /// change set a replica must replay to catch up from `from`.
    pub fn changed_between(&self, from: u64, to: u64) -> Vec<DeviceId> {
        let mut ids: Vec<DeviceId> = self
            .entries
            .iter()
            .filter(|e| e.revision > from && e.revision <= to)
            .map(|e| e.device)
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---- JSON wire encoding ----

impl ToJson for JournalEntry {
    fn to_json(&self) -> Value {
        Value::obj([
            ("revision", self.revision.to_json()),
            ("device", self.device.to_json()),
            ("config", self.config.to_json()),
        ])
    }
}

impl FromJson for JournalEntry {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(JournalEntry {
            revision: v.field("revision")?,
            device: v.field("device")?,
            config: v.field("config")?,
        })
    }
}

impl ToJson for ConfigJournal {
    fn to_json(&self) -> Value {
        Value::obj([("entries", self.entries.to_json())])
    }
}

impl FromJson for ConfigJournal {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(ConfigJournal {
            entries: v.field("entries")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::{PixelRange, PixelWidth};

    fn cfg(port: u16) -> StandardConfig {
        StandardConfig::MuxPort {
            port,
            passband: Some(PixelRange::new(u32::from(port), PixelWidth::new(4))),
        }
    }

    #[test]
    fn history_and_latest() {
        let mut j = ConfigJournal::new();
        j.record(1, DeviceId(0), cfg(0));
        j.record(2, DeviceId(1), cfg(1));
        j.record(3, DeviceId(0), cfg(2));
        assert_eq!(j.len(), 3);
        assert_eq!(j.history(DeviceId(0)).count(), 2);
        assert_eq!(j.latest(DeviceId(0)).unwrap().revision, 3);
        assert_eq!(j.latest(DeviceId(2)), None);
    }

    #[test]
    fn config_at_picks_the_right_revision() {
        let mut j = ConfigJournal::new();
        j.record(5, DeviceId(7), cfg(0));
        j.record(9, DeviceId(7), cfg(1));
        assert_eq!(j.config_at(DeviceId(7), 4), None);
        assert_eq!(j.config_at(DeviceId(7), 5), Some(&cfg(0)));
        assert_eq!(j.config_at(DeviceId(7), 8), Some(&cfg(0)));
        assert_eq!(j.config_at(DeviceId(7), 9), Some(&cfg(1)));
        assert_eq!(j.config_at(DeviceId(7), 100), Some(&cfg(1)));
    }

    #[test]
    fn change_sets() {
        let mut j = ConfigJournal::new();
        j.record(1, DeviceId(0), cfg(0));
        j.record(2, DeviceId(1), cfg(1));
        j.record(3, DeviceId(1), cfg(2));
        j.record(4, DeviceId(2), cfg(3));
        assert_eq!(j.changed_between(1, 3), vec![DeviceId(1)]);
        assert_eq!(
            j.changed_between(0, 4),
            vec![DeviceId(0), DeviceId(1), DeviceId(2)]
        );
        assert!(j.changed_between(4, 4).is_empty());
    }

    #[test]
    fn journal_serializes() {
        let mut j = ConfigJournal::new();
        j.record(1, DeviceId(3), cfg(9));
        let s = json::to_string(&j);
        let back: ConfigJournal = json::from_str(&s).unwrap();
        assert_eq!(back.entries(), j.entries());
    }
}
