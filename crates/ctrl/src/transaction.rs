//! Atomic multi-device configuration: two-phase apply with rollback.
//!
//! Lighting one wavelength touches many devices — two transponders, two
//! MUX filter ports, every intermediate ROADM. If a mid-path device
//! rejects its config, the devices already configured hold passbands for
//! a wavelength that will never exist: exactly the partial-configuration
//! inconsistency a centralized controller must never leak (§4.3). A
//! [`Transaction`] bundles the steps with their inverses and guarantees
//! all-or-nothing semantics against the device plane.

use flexwan_obs::Obs;

use crate::config::StandardConfig;
use crate::model::DeviceId;

/// One transactional step: the config to apply and its inverse.
#[derive(Debug, Clone)]
pub struct Step {
    /// Target device.
    pub device: DeviceId,
    /// Configuration to apply.
    pub apply: StandardConfig,
    /// Configuration that undoes `apply` (sent on rollback).
    pub undo: StandardConfig,
}

/// Outcome of a failed transaction.
#[derive(Debug, Clone)]
pub struct TxError {
    /// The device that rejected its step.
    pub failed_device: DeviceId,
    /// The rejection cause.
    pub cause: String,
    /// Steps that had been applied and were rolled back.
    pub rolled_back: usize,
    /// Rollback sends that themselves failed (should be empty; non-empty
    /// means the plane needs manual reconciliation).
    pub rollback_failures: Vec<(DeviceId, String)>,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transaction failed at device {:?}: {} ({} steps rolled back)",
            self.failed_device, self.cause, self.rolled_back
        )
    }
}

impl std::error::Error for TxError {}

/// A pending all-or-nothing configuration change.
#[derive(Debug, Default)]
pub struct Transaction {
    steps: Vec<Step>,
}

impl Transaction {
    /// An empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Appends a step.
    pub fn step(&mut self, device: DeviceId, apply: StandardConfig, undo: StandardConfig) {
        self.steps.push(Step {
            device,
            apply,
            undo,
        });
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the transaction has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Executes the steps in order through `send`; on the first rejection,
    /// rolls the applied prefix back in reverse order.
    pub fn execute<F>(self, send: F) -> Result<usize, TxError>
    where
        F: FnMut(DeviceId, &StandardConfig) -> Result<(), String>,
    {
        self.execute_with_budget(usize::MAX, send)
    }

    /// [`Transaction::execute`] with a deadline budget: at most `budget`
    /// apply-steps are attempted. A transaction that runs out of budget
    /// mid-apply fails and rolls back its applied prefix — rollback sends
    /// are **not** budgeted, because leaking partial state is worse than
    /// overrunning the deadline.
    pub fn execute_with_budget<F>(self, budget: usize, send: F) -> Result<usize, TxError>
    where
        F: FnMut(DeviceId, &StandardConfig) -> Result<(), String>,
    {
        self.run(budget, send)
    }

    /// [`Transaction::execute_with_budget`] with the transaction lifecycle
    /// recorded into `obs`: a `tx.execute` span carrying the step count
    /// and outcome, plus commit/rollback counters — the §4.3
    /// all-or-nothing guarantee made observable.
    pub fn execute_observed<F>(self, obs: &Obs, budget: usize, send: F) -> Result<usize, TxError>
    where
        F: FnMut(DeviceId, &StandardConfig) -> Result<(), String>,
    {
        let span = obs.span("tx.execute");
        span.field("steps", self.len());
        let start = obs.now_ns();
        let result = self.run(budget, send);
        let reg = obs.registry();
        match &result {
            Ok(applied) => {
                span.field("outcome", "committed");
                reg.counter("tx_commits_total").inc();
                reg.counter("tx_steps_applied_total").add(*applied as u64);
            }
            Err(e) => {
                span.field("outcome", "rolled_back");
                span.field("failed_device", u64::from(e.failed_device.0));
                span.field("rolled_back", e.rolled_back);
                reg.counter("tx_rollbacks_total").inc();
                reg.counter("tx_rollback_steps_total")
                    .add(e.rolled_back as u64);
                reg.counter("tx_rollback_failures_total")
                    .add(e.rollback_failures.len() as u64);
            }
        }
        obs.observe_since("tx_execute_seconds", start);
        result
    }

    fn run<F>(self, budget: usize, mut send: F) -> Result<usize, TxError>
    where
        F: FnMut(DeviceId, &StandardConfig) -> Result<(), String>,
    {
        let mut applied: Vec<&Step> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let result = if applied.len() >= budget {
                Err("transaction deadline budget exhausted".to_string())
            } else {
                send(step.device, &step.apply)
            };
            match result {
                Ok(()) => applied.push(step),
                Err(cause) => {
                    let mut rollback_failures = Vec::new();
                    for done in applied.iter().rev() {
                        if let Err(e) = send(done.device, &done.undo) {
                            rollback_failures.push((done.device, e));
                        }
                    }
                    return Err(TxError {
                        failed_device: step.device,
                        cause,
                        rolled_back: applied.len(),
                        rollback_failures,
                    });
                }
            }
        }
        Ok(applied.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::{PixelRange, PixelWidth};
    use std::collections::HashMap;

    fn port_cfg(port: u16, set: bool) -> StandardConfig {
        StandardConfig::MuxPort {
            port,
            passband: set.then(|| PixelRange::new(0, PixelWidth::new(6))),
        }
    }

    /// A fake device plane: device 2 always rejects; state records the
    /// last config per device.
    struct FakePlane {
        state: HashMap<DeviceId, StandardConfig>,
        reject: DeviceId,
    }

    impl FakePlane {
        fn send(&mut self, d: DeviceId, cfg: &StandardConfig) -> Result<(), String> {
            if d == self.reject {
                return Err("simulated rejection".into());
            }
            self.state.insert(d, cfg.clone());
            Ok(())
        }
    }

    #[test]
    fn success_applies_all_steps() {
        let mut plane = FakePlane {
            state: HashMap::new(),
            reject: DeviceId(99),
        };
        let mut tx = Transaction::new();
        for i in 0..3 {
            tx.step(
                DeviceId(i),
                port_cfg(i as u16, true),
                port_cfg(i as u16, false),
            );
        }
        let n = tx.execute(|d, c| plane.send(d, c)).unwrap();
        assert_eq!(n, 3);
        assert_eq!(plane.state.len(), 3);
        for i in 0..3 {
            assert_eq!(plane.state[&DeviceId(i)], port_cfg(i as u16, true));
        }
    }

    #[test]
    fn failure_rolls_back_prefix_in_reverse() {
        let mut plane = FakePlane {
            state: HashMap::new(),
            reject: DeviceId(2),
        };
        let mut tx = Transaction::new();
        for i in 0..4 {
            tx.step(
                DeviceId(i),
                port_cfg(i as u16, true),
                port_cfg(i as u16, false),
            );
        }
        let err = tx.execute(|d, c| plane.send(d, c)).unwrap_err();
        assert_eq!(err.failed_device, DeviceId(2));
        assert_eq!(err.rolled_back, 2);
        assert!(err.rollback_failures.is_empty());
        // Devices 0 and 1 ended on their undo configs; 3 never touched.
        assert_eq!(plane.state[&DeviceId(0)], port_cfg(0, false));
        assert_eq!(plane.state[&DeviceId(1)], port_cfg(1, false));
        assert!(!plane.state.contains_key(&DeviceId(3)));
    }

    #[test]
    fn rollback_failures_are_reported() {
        // Reject device 1's apply AND device 0's undo (device 0 accepts
        // the set but fails the clear — a wedged device).
        struct Wedged;
        let mut calls = Vec::new();
        let _ = Wedged;
        let mut tx = Transaction::new();
        tx.step(DeviceId(0), port_cfg(0, true), port_cfg(0, false));
        tx.step(DeviceId(1), port_cfg(1, true), port_cfg(1, false));
        let err = tx
            .execute(|d, c| {
                calls.push((d, c.clone()));
                match (d, c) {
                    (DeviceId(1), _) => Err("apply rejected".into()),
                    (DeviceId(0), StandardConfig::MuxPort { passband: None, .. }) => {
                        Err("undo rejected".into())
                    }
                    _ => Ok(()),
                }
            })
            .unwrap_err();
        assert_eq!(err.rollback_failures.len(), 1);
        assert_eq!(err.rollback_failures[0].0, DeviceId(0));
    }

    #[test]
    fn budget_exhaustion_rolls_back_prefix() {
        let mut plane = FakePlane {
            state: HashMap::new(),
            reject: DeviceId(99),
        };
        let mut tx = Transaction::new();
        for i in 0..4 {
            tx.step(
                DeviceId(i),
                port_cfg(i as u16, true),
                port_cfg(i as u16, false),
            );
        }
        let err = tx
            .execute_with_budget(2, |d, c| plane.send(d, c))
            .unwrap_err();
        assert_eq!(err.failed_device, DeviceId(2));
        assert!(err.cause.contains("budget"), "{}", err.cause);
        assert_eq!(err.rolled_back, 2);
        assert!(err.rollback_failures.is_empty());
        // The applied prefix ended on its undo configs.
        assert_eq!(plane.state[&DeviceId(0)], port_cfg(0, false));
        assert_eq!(plane.state[&DeviceId(1)], port_cfg(1, false));
        assert!(!plane.state.contains_key(&DeviceId(3)));
    }

    #[test]
    fn empty_transaction_is_noop() {
        let tx = Transaction::new();
        assert!(tx.is_empty());
        let n = tx.execute(|_, _| panic!("no sends expected")).unwrap();
        assert_eq!(n, 0);
    }
}
