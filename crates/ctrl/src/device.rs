//! Simulated optical devices: one thread per device, speaking its vendor's
//! native dialect over a NETCONF-style session.
//!
//! A device validates configuration against its *hardware* model from
//! `flexwan-optical` — a fixed-grid MUX rejects off-grid passbands exactly
//! like the real device would — so controller logic is exercised against
//! honest failure modes.

use std::thread::JoinHandle;

use flexwan_util::sync::unbounded;

use flexwan_optical::devices::{Mux, Roadm};
use flexwan_optical::format::TransponderFormat;
use flexwan_optical::spectrum::PixelRange;

use crate::config::StandardConfig;
use crate::model::DeviceDescriptor;
use crate::netconf::{NetconfReply, NetconfRequest, NetconfSession};
use crate::vendor;

/// The line-side state of a transponder device.
#[derive(Debug, Clone, PartialEq)]
pub struct TransponderState {
    /// Programmed operating point.
    pub format: TransponderFormat,
    /// Assigned spectrum.
    pub channel: PixelRange,
    /// Administrative state.
    pub enabled: bool,
}

/// The hardware behind a device thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Hardware {
    /// A transponder (unconfigured until the first line-config).
    Transponder(Option<TransponderState>),
    /// A MUX with its filter ports.
    Mux(Mux),
    /// A ROADM with its degrees.
    Roadm(Roadm),
    /// An amplifier (gain only).
    Amplifier {
        /// Current gain, dB.
        gain_db: f64,
    },
}

/// A device's full state snapshot, as returned by get-state.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceState {
    /// Identity and placement.
    pub descriptor: DeviceDescriptor,
    /// Hardware state.
    pub hardware: Hardware,
    /// Last acknowledged configuration revision (0 = factory).
    pub last_revision: u64,
}

impl DeviceState {
    fn apply(&mut self, cfg: &StandardConfig) -> Result<(), String> {
        match (&mut self.hardware, cfg) {
            (
                Hardware::Transponder(state),
                StandardConfig::Transponder {
                    format,
                    channel,
                    enabled,
                },
            ) => {
                if format.spacing != channel.width {
                    return Err(format!(
                        "channel width {} does not match format spacing {}",
                        channel.width, format.spacing
                    ));
                }
                *state = Some(TransponderState {
                    format: *format,
                    channel: *channel,
                    enabled: *enabled,
                });
                Ok(())
            }
            (Hardware::Mux(mux), StandardConfig::MuxPort { port, passband }) => match passband {
                Some(r) => mux.set_passband(*port, *r).map_err(|e| e.to_string()),
                None => mux.clear_passband(*port).map_err(|e| e.to_string()),
            },
            (
                Hardware::Roadm(roadm),
                StandardConfig::RoadmExpress {
                    from_degree,
                    to_degree,
                    passband,
                },
            ) => {
                roadm
                    .add_passband(*from_degree, *passband)
                    .map_err(|e| e.to_string())?;
                if let Err(e) = roadm.add_passband(*to_degree, *passband) {
                    // Keep the two degrees atomic.
                    roadm
                        .remove_passband(*from_degree, *passband)
                        .expect("just added");
                    return Err(e.to_string());
                }
                Ok(())
            }
            (
                Hardware::Roadm(roadm),
                StandardConfig::RoadmRelease {
                    from_degree,
                    to_degree,
                    passband,
                },
            ) => {
                roadm
                    .remove_passband(*from_degree, *passband)
                    .map_err(|e| e.to_string())?;
                roadm
                    .remove_passband(*to_degree, *passband)
                    .map_err(|e| e.to_string())
            }
            (Hardware::Amplifier { gain_db }, StandardConfig::AmplifierGain { gain_db: g }) => {
                if !(0.0..=40.0).contains(g) {
                    return Err(format!("gain {g} dB outside the EDFA's 0–40 dB range"));
                }
                *gain_db = *g;
                Ok(())
            }
            (hw, cfg) => Err(format!("config {cfg:?} not applicable to {hw:?}")),
        }
    }
}

/// Renders an error with its full `source()` chain, so a rejection cause
/// carries the root failure (e.g. the optical-layer grid violation behind
/// a dialect decode error) and not just the outermost message.
fn error_chain(e: &dyn std::error::Error) -> String {
    let mut cause = e.to_string();
    let mut src = e.source();
    while let Some(s) = src {
        cause.push_str(": ");
        cause.push_str(&s.to_string());
        src = s.source();
    }
    cause
}

/// A running simulated device: descriptor + session; the thread exits when
/// the handle is dropped.
#[derive(Debug)]
pub struct DeviceHandle {
    /// Identity and placement.
    pub descriptor: DeviceDescriptor,
    /// The controller's session to the device.
    pub session: NetconfSession,
    join: Option<JoinHandle<()>>,
}

impl Drop for DeviceHandle {
    fn drop(&mut self) {
        self.session.shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Spawns a device thread with the given hardware.
pub fn spawn_device(descriptor: DeviceDescriptor, hardware: Hardware) -> DeviceHandle {
    let (req_tx, req_rx) = unbounded::<NetconfRequest>();
    let (rep_tx, rep_rx) = unbounded::<NetconfReply>();
    let vendor_kind = descriptor.vendor;
    let mut state = DeviceState {
        descriptor: descriptor.clone(),
        hardware,
        last_revision: 0,
    };
    let join = std::thread::spawn(move || {
        while let Ok(req) = req_rx.recv() {
            match req {
                NetconfRequest::Shutdown => break,
                NetconfRequest::GetState => {
                    if rep_tx
                        .send(NetconfReply::State(Box::new(state.clone())))
                        .is_err()
                    {
                        break;
                    }
                }
                NetconfRequest::EditConfig { revision, native } => {
                    // The device only understands its own dialect.
                    let reply = match vendor::decode(vendor_kind, &native) {
                        Err(e) => NetconfReply::Rejected {
                            revision,
                            cause: error_chain(&e),
                        },
                        Ok(cfg) => match state.apply(&cfg) {
                            Ok(()) => {
                                state.last_revision = revision;
                                NetconfReply::Ok { revision }
                            }
                            Err(cause) => NetconfReply::Rejected { revision, cause },
                        },
                    };
                    if rep_tx.send(reply).is_err() {
                        break;
                    }
                }
            }
        }
    });
    let session = NetconfSession {
        req: req_tx,
        rep: rep_rx,
        device: descriptor.id,
        injector: None,
        obs: None,
    };
    DeviceHandle {
        descriptor,
        session,
        join: Some(join),
    }
}

/// Whether `state` already reflects `cfg`.
///
/// The retry layer needs this to disambiguate "rejected because already
/// applied": after a reply is lost past the session timeout, the config
/// may well be in effect, and a blind re-send of a non-idempotent config
/// (a ROADM express self-conflicts with its own passband) is rejected even
/// though the intent holds.
pub fn config_in_effect(state: &DeviceState, cfg: &StandardConfig) -> bool {
    match (&state.hardware, cfg) {
        (
            Hardware::Transponder(Some(t)),
            StandardConfig::Transponder {
                format,
                channel,
                enabled,
            },
        ) => t.format == *format && t.channel == *channel && t.enabled == *enabled,
        (Hardware::Mux(m), StandardConfig::MuxPort { port, passband }) => {
            m.passband(*port).ok().as_ref() == Some(passband)
        }
        (
            Hardware::Roadm(r),
            StandardConfig::RoadmExpress {
                from_degree,
                to_degree,
                passband,
            },
        ) => r
            .expresses(*from_degree, *to_degree, passband)
            .unwrap_or(false),
        (
            Hardware::Roadm(r),
            StandardConfig::RoadmRelease {
                from_degree,
                to_degree,
                passband,
            },
        ) => {
            let released = |d: u16| {
                r.passbands(d)
                    .map(|pbs| !pbs.contains(passband))
                    .unwrap_or(false)
            };
            released(*from_degree) && released(*to_degree)
        }
        (Hardware::Amplifier { gain_db }, StandardConfig::AmplifierGain { gain_db: g }) => {
            (gain_db - g).abs() < 1e-9
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeviceId, DeviceKind, Vendor};
    use flexwan_optical::spectrum::{PixelWidth, SpectrumGrid};
    use flexwan_optical::WssKind;
    use flexwan_topo::graph::NodeId;

    fn descriptor(kind: DeviceKind, vendor: Vendor) -> DeviceDescriptor {
        DeviceDescriptor {
            id: DeviceId(1),
            vendor,
            kind,
            mgmt_ip: DeviceDescriptor::mgmt_ip_for(DeviceId(1)),
            site: NodeId(0),
        }
    }

    #[test]
    fn transponder_configures_over_its_dialect() {
        for vendor in Vendor::ALL {
            let h = spawn_device(
                descriptor(DeviceKind::Transponder, vendor),
                Hardware::Transponder(None),
            );
            let format = TransponderFormat::derive(400, PixelWidth::from_ghz(100.0).unwrap(), 1500);
            let cfg = StandardConfig::Transponder {
                format,
                channel: PixelRange::new(8, PixelWidth::new(8)),
                enabled: true,
            };
            let rev = h
                .session
                .edit_config(42, vendor::encode(vendor, &cfg))
                .unwrap();
            assert_eq!(rev, 42);
            let st = h.session.get_state().unwrap();
            assert_eq!(st.last_revision, 42);
            match st.hardware {
                Hardware::Transponder(Some(t)) => {
                    assert_eq!(t.format.data_rate_gbps, 400);
                    assert!(t.enabled);
                }
                other => panic!("unexpected state {other:?}"),
            }
        }
    }

    #[test]
    fn device_rejects_foreign_dialect() {
        // A VendorB device receives a VendorA-encoded document: the field
        // names don't exist in its dialect.
        let h = spawn_device(
            descriptor(DeviceKind::Mux, Vendor::VendorB),
            Hardware::Mux(Mux::new(WssKind::PixelWise, SpectrumGrid::new(64), 8)),
        );
        let cfg = StandardConfig::MuxPort {
            port: 1,
            passband: Some(PixelRange::new(0, PixelWidth::new(6))),
        };
        let foreign = vendor::encode(Vendor::VendorA, &cfg);
        let err = h.session.edit_config(1, foreign).unwrap_err();
        assert!(matches!(err, crate::netconf::SessionError::Rejected(_)));
        // And accepts its own.
        h.session
            .edit_config(2, vendor::encode(Vendor::VendorB, &cfg))
            .unwrap();
    }

    #[test]
    fn fixed_grid_mux_rejects_offgrid_passband() {
        let h = spawn_device(
            descriptor(DeviceKind::Mux, Vendor::VendorA),
            Hardware::Mux(Mux::new(
                WssKind::FixedGrid {
                    spacing: PixelWidth::new(6),
                },
                SpectrumGrid::new(48),
                4,
            )),
        );
        let bad = StandardConfig::MuxPort {
            port: 0,
            passband: Some(PixelRange::new(3, PixelWidth::new(6))),
        };
        assert!(h
            .session
            .edit_config(1, vendor::encode(Vendor::VendorA, &bad))
            .is_err());
        let good = StandardConfig::MuxPort {
            port: 0,
            passband: Some(PixelRange::new(6, PixelWidth::new(6))),
        };
        h.session
            .edit_config(2, vendor::encode(Vendor::VendorA, &good))
            .unwrap();
    }

    #[test]
    fn roadm_express_is_atomic() {
        let mut roadm = Roadm::new(WssKind::PixelWise, SpectrumGrid::new(32), 2);
        // Pre-occupy degree 1 so the second half of an express fails.
        roadm
            .add_passband(1, PixelRange::new(0, PixelWidth::new(8)))
            .unwrap();
        let h = spawn_device(
            descriptor(DeviceKind::Roadm, Vendor::VendorC),
            Hardware::Roadm(roadm),
        );
        let cfg = StandardConfig::RoadmExpress {
            from_degree: 0,
            to_degree: 1,
            passband: PixelRange::new(4, PixelWidth::new(6)),
        };
        assert!(h
            .session
            .edit_config(1, vendor::encode(Vendor::VendorC, &cfg))
            .is_err());
        // Degree 0 must have been rolled back.
        let st = h.session.get_state().unwrap();
        match st.hardware {
            Hardware::Roadm(r) => assert!(r.passbands(0).unwrap().is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn amplifier_gain_bounds() {
        let h = spawn_device(
            descriptor(DeviceKind::Amplifier, Vendor::VendorA),
            Hardware::Amplifier { gain_db: 16.0 },
        );
        assert!(h
            .session
            .edit_config(
                1,
                vendor::encode(
                    Vendor::VendorA,
                    &StandardConfig::AmplifierGain { gain_db: 99.0 }
                )
            )
            .is_err());
        h.session
            .edit_config(
                2,
                vendor::encode(
                    Vendor::VendorA,
                    &StandardConfig::AmplifierGain { gain_db: 21.0 },
                ),
            )
            .unwrap();
    }

    #[test]
    fn mismatched_config_kind_rejected() {
        let h = spawn_device(
            descriptor(DeviceKind::Amplifier, Vendor::VendorA),
            Hardware::Amplifier { gain_db: 16.0 },
        );
        let cfg = StandardConfig::MuxPort {
            port: 0,
            passband: None,
        };
        assert!(h
            .session
            .edit_config(1, vendor::encode(Vendor::VendorA, &cfg))
            .is_err());
    }
}
