//! Deterministic fault injection for the control plane (the chaos harness).
//!
//! Production controllers earn their resilience claims against injected
//! failure, not clean-room tests. [`FaultInjector`] interposes at the
//! NETCONF session boundary ([`crate::netconf::NetconfSession`]) and can,
//! per device and per request, drop a request on the floor, delay the
//! reply past [`crate::netconf::SESSION_TIMEOUT`], reject the first N
//! edit-configs, crash the device thread outright, or serve stale state —
//! all driven by a seeded [`ChaCha8Rng`] so every chaos run replays
//! exactly. Two companion pieces cover the other layers:
//! [`ClusterFaultSchedule`] scripts heartbeat loss and region partitions
//! against [`crate::ha::ControllerCluster`], and [`PhysicalFault`] maps
//! fiber cuts and amplifier failures through the `flexwan-physim` testbed
//! into the [`FailureScenario`]s the restoration path consumes.
//!
//! Faults are *verdicts*, not wall-clock sleeps: a "delayed" reply is
//! modeled as delivered-then-discarded (the device applies the config, the
//! controller times out), so chaos tests stay fast and fully
//! deterministic.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use flexwan_core::restore::FailureScenario;
use flexwan_physim::testbed::Testbed;
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_util::rng::ChaCha8Rng;

use crate::device::DeviceState;
use crate::ha::ControllerCluster;
use crate::model::DeviceId;

/// Fault rates and counters applied to one device's session.
///
/// All probabilities are per-request in `[0, 1]`; the default is the
/// all-zeros plan (no faults).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceFaults {
    /// Probability an edit-config or get-state request is silently dropped
    /// before it reaches the device (the controller times out; the config
    /// is **not** applied).
    pub drop_prob: f64,
    /// Probability the device applies an edit-config but its reply is
    /// delayed past [`crate::netconf::SESSION_TIMEOUT`] and discarded (the
    /// controller times out; the config **is** applied — the
    /// applied-but-unacknowledged drift every retry layer must survive).
    pub delay_reply_prob: f64,
    /// Reject this many edit-configs outright before behaving normally
    /// (models a device booting, or an operator lock).
    pub reject_first: u32,
    /// Probability a get-state reply is served from a stale snapshot of an
    /// earlier state read instead of the live device.
    pub stale_state_prob: f64,
    /// Crash the device thread on the edit-config attempt after this many
    /// attempts have been observed (one-shot; the thread exits and every
    /// later request fails until the controller restarts the device).
    pub crash_after: Option<u32>,
}

impl DeviceFaults {
    /// Whether this is the all-zeros (fault-free) plan.
    pub fn is_none(&self) -> bool {
        *self == DeviceFaults::default()
    }
}

/// Delivery faults applied to the churn **event stream** itself (the
/// transport between whatever emits demand/cut/repair/drift events and
/// the service loop consuming them). Same philosophy as [`DeviceFaults`]:
/// probabilities per event, all decisions from the injector's seeded RNG,
/// so a perturbed delivery sequence replays bit-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamFaults {
    /// Probability an event is dropped in flight (never delivered; the
    /// consumer must detect the sequence gap and re-fetch).
    pub drop_prob: f64,
    /// Probability an event is delivered twice back-to-back (at-least-once
    /// transports redeliver on ack loss).
    pub duplicate_prob: f64,
    /// Probability an event swaps places with its successor (delivery
    /// order ≠ emission order).
    pub reorder_prob: f64,
    /// Probability an already-delivered event is re-delivered again much
    /// later, arbitrarily stale.
    pub stale_prob: f64,
}

impl StreamFaults {
    /// Whether this is the all-zeros (fault-free) plan.
    pub fn is_none(&self) -> bool {
        *self == StreamFaults::default()
    }
}

/// A seeded, per-device fault plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// RNG seed: the same plan + the same request sequence replays the
    /// same faults.
    pub seed: u64,
    /// Faults applied to devices without a per-device override.
    pub default: DeviceFaults,
    /// Per-device overrides.
    pub per_device: HashMap<DeviceId, DeviceFaults>,
    /// Faults applied to the churn event stream
    /// ([`FaultInjector::perturb_stream`]).
    pub stream: StreamFaults,
}

impl FaultPlan {
    /// The empty plan: no faults on any device.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan applying `faults` to every device.
    pub fn uniform(seed: u64, faults: DeviceFaults) -> Self {
        FaultPlan {
            seed,
            default: faults,
            per_device: HashMap::new(),
            stream: StreamFaults::default(),
        }
    }

    /// Builder: override the faults for one device.
    pub fn device(mut self, id: DeviceId, faults: DeviceFaults) -> Self {
        self.per_device.insert(id, faults);
        self
    }

    /// Builder: apply `faults` to the churn event stream.
    pub fn with_stream(mut self, faults: StreamFaults) -> Self {
        self.stream = faults;
        self
    }

    /// The faults in effect for `id`.
    pub fn faults_for(&self, id: DeviceId) -> &DeviceFaults {
        self.per_device.get(&id).unwrap_or(&self.default)
    }
}

/// What the injector decided about one edit-config request.
#[derive(Debug, Clone, PartialEq)]
pub enum EditVerdict {
    /// Pass the request through untouched.
    Deliver,
    /// Drop the request: the device never sees it.
    Drop,
    /// Reject the request without delivering it.
    Reject,
    /// Deliver the request but discard the (late) reply.
    DelayReply,
    /// Crash the device thread.
    Crash,
}

/// What the injector decided about one get-state request.
#[derive(Debug, Clone)]
pub enum StateVerdict {
    /// Pass the request through untouched.
    Deliver,
    /// Drop the request: the controller times out.
    Drop,
    /// Serve this stale snapshot instead of reading the device.
    Stale(Box<DeviceState>),
}

/// Counters of every fault the injector actually fired.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Requests delivered untouched.
    pub delivered: u64,
    /// Requests dropped.
    pub drops: u64,
    /// Replies delayed past the session timeout (config applied).
    pub delayed_replies: u64,
    /// Edit-configs rejected by injection.
    pub rejects: u64,
    /// Device threads crashed.
    pub crashes: u64,
    /// Stale state snapshots served.
    pub stale_reads: u64,
    /// Stream events dropped in flight.
    pub events_dropped: u64,
    /// Stream events delivered twice back-to-back.
    pub events_duplicated: u64,
    /// Adjacent stream-event pairs swapped.
    pub events_reordered: u64,
    /// Stream events re-delivered arbitrarily late.
    pub events_stale: u64,
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    /// Edit-config attempts seen per device (drives `crash_after`).
    attempts: HashMap<DeviceId, u32>,
    /// Injected rejections issued per device (drives `reject_first`).
    rejected: HashMap<DeviceId, u32>,
    /// Devices whose thread we crashed and that have not been restarted.
    crashed_pending: HashSet<DeviceId>,
    /// Devices that already consumed their one-shot crash.
    crash_done: HashSet<DeviceId>,
    /// Last state snapshot seen per device (source of stale reads).
    snapshots: HashMap<DeviceId, DeviceState>,
    stats: FaultStats,
}

/// The seeded fault injector shared by every armed session.
///
/// Thread-safe (sessions live on the controller thread, but handles are
/// cloneable); all decisions come from one seeded RNG consumed in request
/// order, so a single-threaded controller replays bit-identically.
#[derive(Debug)]
pub struct FaultInjector {
    inner: Mutex<Inner>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(plan.seed);
        FaultInjector {
            inner: Mutex::new(Inner {
                plan,
                rng,
                attempts: HashMap::new(),
                rejected: HashMap::new(),
                crashed_pending: HashSet::new(),
                crash_done: HashSet::new(),
                snapshots: HashMap::new(),
                stats: FaultStats::default(),
            }),
        }
    }

    /// Decides the fate of one edit-config request to `dev`.
    pub fn on_edit_config(&self, dev: DeviceId) -> EditVerdict {
        let mut g = self.inner.lock().expect("injector poisoned");
        if g.crashed_pending.contains(&dev) {
            // The thread is already dead; let the send fail naturally.
            return EditVerdict::Deliver;
        }
        let faults = g.plan.faults_for(dev).clone();
        let attempt = {
            let a = g.attempts.entry(dev).or_insert(0);
            *a += 1;
            *a
        };
        if let Some(n) = faults.crash_after {
            if attempt > n && !g.crash_done.contains(&dev) {
                g.crashed_pending.insert(dev);
                g.crash_done.insert(dev);
                g.stats.crashes += 1;
                return EditVerdict::Crash;
            }
        }
        if g.rejected.get(&dev).copied().unwrap_or(0) < faults.reject_first {
            *g.rejected.entry(dev).or_insert(0) += 1;
            g.stats.rejects += 1;
            return EditVerdict::Reject;
        }
        if faults.drop_prob > 0.0 && g.rng.gen_f64() < faults.drop_prob {
            g.stats.drops += 1;
            return EditVerdict::Drop;
        }
        if faults.delay_reply_prob > 0.0 && g.rng.gen_f64() < faults.delay_reply_prob {
            g.stats.delayed_replies += 1;
            return EditVerdict::DelayReply;
        }
        g.stats.delivered += 1;
        EditVerdict::Deliver
    }

    /// Decides the fate of one get-state request to `dev`.
    pub fn on_get_state(&self, dev: DeviceId) -> StateVerdict {
        let mut g = self.inner.lock().expect("injector poisoned");
        if g.crashed_pending.contains(&dev) {
            return StateVerdict::Deliver;
        }
        let faults = g.plan.faults_for(dev).clone();
        if faults.drop_prob > 0.0 && g.rng.gen_f64() < faults.drop_prob {
            g.stats.drops += 1;
            return StateVerdict::Drop;
        }
        if faults.stale_state_prob > 0.0 {
            if let Some(snap) = g.snapshots.get(&dev).cloned() {
                if g.rng.gen_f64() < faults.stale_state_prob {
                    g.stats.stale_reads += 1;
                    return StateVerdict::Stale(Box::new(snap));
                }
            }
        }
        g.stats.delivered += 1;
        StateVerdict::Deliver
    }

    /// Applies the plan's [`StreamFaults`] to a canonical, in-order event
    /// stream, returning the perturbed delivery sequence the consumer
    /// actually sees. One pass, RNG consumed in event order, so the same
    /// plan + the same canonical stream perturbs bit-identically:
    ///
    /// 1. each event is dropped with `drop_prob`, else delivered — and
    ///    then duplicated back-to-back with `duplicate_prob` and/or
    ///    scheduled for a late stale re-delivery with `stale_prob`;
    /// 2. adjacent delivered pairs swap with `reorder_prob`;
    /// 3. stale re-deliveries are spliced in a few positions after their
    ///    original slot (clamped to the end of the stream).
    pub fn perturb_stream<T: Clone>(&self, events: &[T]) -> Vec<T> {
        let mut g = self.inner.lock().expect("injector poisoned");
        let faults = g.plan.stream.clone();
        let mut out: Vec<T> = Vec::with_capacity(events.len());
        let mut stale: Vec<(usize, T)> = Vec::new();
        for ev in events {
            if faults.drop_prob > 0.0 && g.rng.gen_f64() < faults.drop_prob {
                g.stats.events_dropped += 1;
                continue;
            }
            out.push(ev.clone());
            if faults.duplicate_prob > 0.0 && g.rng.gen_f64() < faults.duplicate_prob {
                g.stats.events_duplicated += 1;
                out.push(ev.clone());
            }
            if faults.stale_prob > 0.0 && g.rng.gen_f64() < faults.stale_prob {
                g.stats.events_stale += 1;
                let lag = g.rng.gen_range(2usize..8);
                stale.push((out.len() + lag, ev.clone()));
            }
        }
        if faults.reorder_prob > 0.0 && out.len() > 1 {
            let mut i = 0;
            while i + 1 < out.len() {
                if g.rng.gen_f64() < faults.reorder_prob {
                    out.swap(i, i + 1);
                    g.stats.events_reordered += 1;
                    i += 2; // a swapped pair is settled
                } else {
                    i += 1;
                }
            }
        }
        for (at, ev) in stale {
            let at = at.min(out.len());
            out.insert(at, ev);
        }
        out
    }

    /// Records a fresh state read (the pool stale reads are served from).
    pub fn record_state(&self, dev: DeviceId, state: DeviceState) {
        let mut g = self.inner.lock().expect("injector poisoned");
        g.snapshots.insert(dev, state);
    }

    /// Notes that the controller restarted `dev` (a crashed thread was
    /// replaced); the crash stays consumed — it is one-shot.
    pub fn device_restarted(&self, dev: DeviceId) {
        let mut g = self.inner.lock().expect("injector poisoned");
        g.crashed_pending.remove(&dev);
    }

    /// Lifts every fault: the plan becomes fault-free (stats are kept).
    /// Models the "faults clear" phase of a chaos scenario so permanent
    /// faults (`drop_prob = 1.0`, …) can end.
    pub fn lift(&self) {
        let mut g = self.inner.lock().expect("injector poisoned");
        g.plan.default = DeviceFaults::default();
        g.plan.per_device.clear();
    }

    /// Counters of the faults fired so far.
    pub fn stats(&self) -> FaultStats {
        self.inner.lock().expect("injector poisoned").stats.clone()
    }
}

// ---- Cluster-level faults (heartbeat loss, region partition) ----

#[derive(Debug, Clone)]
enum ClusterFault {
    /// One replica misses heartbeats in rounds `[from, until)`.
    Silence {
        replica: usize,
        from: usize,
        until: usize,
    },
    /// Every replica in a region is partitioned away in rounds
    /// `[from, until)`.
    Partition {
        region: String,
        from: usize,
        until: usize,
    },
}

/// A scripted schedule of cluster-level faults, indexed by heartbeat
/// round. Drive it with [`ControllerCluster::heartbeat_round_faulted`].
#[derive(Debug, Clone, Default)]
pub struct ClusterFaultSchedule {
    entries: Vec<ClusterFault>,
}

impl ClusterFaultSchedule {
    /// An empty (fault-free) schedule.
    pub fn new() -> Self {
        ClusterFaultSchedule::default()
    }

    /// Builder: replica `replica` loses heartbeats in rounds
    /// `[from, until)`.
    pub fn silence(mut self, replica: usize, from: usize, until: usize) -> Self {
        self.entries.push(ClusterFault::Silence {
            replica,
            from,
            until,
        });
        self
    }

    /// Builder: region `region` is partitioned away in rounds
    /// `[from, until)`.
    pub fn partition(mut self, region: &str, from: usize, until: usize) -> Self {
        self.entries.push(ClusterFault::Partition {
            region: region.to_string(),
            from,
            until,
        });
        self
    }

    /// Whether `replica` (in `region`) answers the heartbeat of `round`.
    pub fn responds(&self, round: usize, replica: usize, region: &str) -> bool {
        !self.entries.iter().any(|f| match f {
            ClusterFault::Silence {
                replica: r,
                from,
                until,
            } => *r == replica && (*from..*until).contains(&round),
            ClusterFault::Partition {
                region: reg,
                from,
                until,
            } => reg == region && (*from..*until).contains(&round),
        })
    }

    /// The replicas of `cluster` answering the heartbeat of `round`.
    pub fn responding(&self, round: usize, cluster: &ControllerCluster) -> Vec<usize> {
        cluster
            .replicas()
            .iter()
            .filter(|r| self.responds(round, r.id, &r.region))
            .map(|r| r.id)
            .collect()
    }
}

// ---- Physical-plant faults (fiber cut, amplifier failure) ----

/// A physical failure in the optical plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicalFault {
    /// The fiber is severed (backhoe).
    FiberCut(EdgeId),
    /// An inline amplifier on the fiber fails: the light must cross the
    /// whole fiber on launch power alone.
    AmplifierFailure(EdgeId),
}

impl PhysicalFault {
    /// The fiber the fault sits on.
    pub fn fiber(&self) -> EdgeId {
        match self {
            PhysicalFault::FiberCut(e) | PhysicalFault::AmplifierFailure(e) => *e,
        }
    }
}

/// Maps physical faults into the [`FailureScenario`] the restoration path
/// consumes. A cut always takes the fiber down; an amplifier failure takes
/// it down only if the fiber is longer than one amplifier span of
/// `testbed` (a single-span fiber has no inline EDFA to lose, so the
/// signal survives).
pub fn physical_scenario(
    id: usize,
    faults: &[PhysicalFault],
    g: &Graph,
    testbed: &Testbed,
) -> FailureScenario {
    let mut cuts: Vec<EdgeId> = Vec::new();
    for f in faults {
        let down = match f {
            PhysicalFault::FiberCut(_) => true,
            PhysicalFault::AmplifierFailure(e) => {
                let length_km = g
                    .edges()
                    .iter()
                    .find(|ed| ed.id == *e)
                    .map(|ed| f64::from(ed.length_km))
                    .unwrap_or(f64::INFINITY);
                length_km > testbed.span_km
            }
        };
        if down {
            cuts.push(f.fiber());
        }
    }
    cuts.sort();
    cuts.dedup();
    FailureScenario {
        id,
        cuts,
        probability: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_delivers() {
        let inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..100 {
            assert_eq!(inj.on_edit_config(DeviceId(0)), EditVerdict::Deliver);
            assert!(matches!(
                inj.on_get_state(DeviceId(0)),
                StateVerdict::Deliver
            ));
        }
        let s = inj.stats();
        assert_eq!(
            s.drops + s.delayed_replies + s.rejects + s.crashes + s.stale_reads,
            0
        );
    }

    #[test]
    fn same_seed_same_verdicts() {
        let plan = FaultPlan::uniform(
            7,
            DeviceFaults {
                drop_prob: 0.4,
                delay_reply_prob: 0.3,
                ..Default::default()
            },
        );
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for i in 0..200 {
            let dev = DeviceId(i % 5);
            assert_eq!(a.on_edit_config(dev), b.on_edit_config(dev));
        }
    }

    #[test]
    fn reject_first_is_per_device_and_finite() {
        let plan = FaultPlan::uniform(
            1,
            DeviceFaults {
                reject_first: 2,
                ..Default::default()
            },
        );
        let inj = FaultInjector::new(plan);
        for dev in [DeviceId(0), DeviceId(1)] {
            assert_eq!(inj.on_edit_config(dev), EditVerdict::Reject);
            assert_eq!(inj.on_edit_config(dev), EditVerdict::Reject);
            assert_eq!(inj.on_edit_config(dev), EditVerdict::Deliver);
        }
        assert_eq!(inj.stats().rejects, 4);
    }

    #[test]
    fn crash_fires_once_then_passes_through() {
        let plan = FaultPlan::none().device(
            DeviceId(3),
            DeviceFaults {
                crash_after: Some(1),
                ..Default::default()
            },
        );
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_edit_config(DeviceId(3)), EditVerdict::Deliver);
        assert_eq!(inj.on_edit_config(DeviceId(3)), EditVerdict::Crash);
        // Dead thread: verdicts pass through until the restart is noted…
        assert_eq!(inj.on_edit_config(DeviceId(3)), EditVerdict::Deliver);
        inj.device_restarted(DeviceId(3));
        // …and the crash never re-fires after the restart.
        for _ in 0..10 {
            assert_eq!(inj.on_edit_config(DeviceId(3)), EditVerdict::Deliver);
        }
        assert_eq!(inj.stats().crashes, 1);
    }

    #[test]
    fn lift_clears_all_faults() {
        let plan = FaultPlan::uniform(
            2,
            DeviceFaults {
                drop_prob: 1.0,
                ..Default::default()
            },
        );
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_edit_config(DeviceId(0)), EditVerdict::Drop);
        inj.lift();
        assert_eq!(inj.on_edit_config(DeviceId(0)), EditVerdict::Deliver);
        assert_eq!(inj.stats().drops, 1);
    }

    #[test]
    fn cluster_schedule_scripts_silence_and_partitions() {
        let sched = ClusterFaultSchedule::new()
            .silence(1, 2, 5)
            .partition("west", 4, 6);
        assert!(sched.responds(0, 1, "east"));
        assert!(!sched.responds(2, 1, "east"));
        assert!(!sched.responds(4, 0, "west"));
        assert!(sched.responds(6, 0, "west"));
    }

    #[test]
    fn amplifier_failure_spares_single_span_fiber() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let short = g.add_edge(a, b, 60); // one span: no inline EDFA
        let long = g.add_edge(b, c, 800); // many spans
        let tb = Testbed::default(); // 80 km spans
        let s = physical_scenario(
            0,
            &[
                PhysicalFault::AmplifierFailure(short),
                PhysicalFault::AmplifierFailure(long),
            ],
            &g,
            &tb,
        );
        assert!(
            !s.is_cut(short),
            "single-span fiber survives an amp failure"
        );
        assert!(s.is_cut(long));
        let s2 = physical_scenario(1, &[PhysicalFault::FiberCut(short)], &g, &tb);
        assert!(s2.is_cut(short), "a cut always takes the fiber down");
    }

    #[test]
    fn perturb_stream_without_faults_is_identity() {
        let inj = FaultInjector::new(FaultPlan::none());
        let events: Vec<u32> = (0..50).collect();
        assert_eq!(inj.perturb_stream(&events), events);
        let s = inj.stats();
        assert_eq!(
            s.events_dropped + s.events_duplicated + s.events_reordered + s.events_stale,
            0
        );
    }

    #[test]
    fn perturb_stream_is_deterministic_per_seed() {
        let plan = FaultPlan::none().with_stream(StreamFaults {
            drop_prob: 0.1,
            duplicate_prob: 0.1,
            reorder_prob: 0.1,
            stale_prob: 0.1,
        });
        let events: Vec<u32> = (0..200).collect();
        let a = FaultInjector::new(plan.clone()).perturb_stream(&events);
        let b = FaultInjector::new(plan).perturb_stream(&events);
        assert_eq!(a, b);
        assert_ne!(a, events, "faults at 10% must perturb 200 events");
    }

    #[test]
    fn perturb_stream_counts_each_fault_kind() {
        let plan = FaultPlan::none().with_stream(StreamFaults {
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            stale_prob: 0.2,
        });
        let inj = FaultInjector::new(plan);
        let events: Vec<u32> = (0..500).collect();
        let out = inj.perturb_stream(&events);
        let s = inj.stats();
        assert!(s.events_dropped > 0);
        assert!(s.events_duplicated > 0);
        assert!(s.events_reordered > 0);
        assert!(s.events_stale > 0);
        // Every delivered event is a copy of a canonical one; the count
        // balances drops against duplicates and stale re-deliveries.
        assert_eq!(
            out.len() as u64,
            events.len() as u64 - s.events_dropped + s.events_duplicated + s.events_stale
        );
    }
}
