//! The closed loop of §4.4: telemetry → fiber-cut detection → optical
//! restoration → device configuration.
//!
//! "Once an optical failure happens, the optical TopoMgr will notify the
//! optical restoration module to generate the optimal restoration plan."
//! The [`Orchestrator`] owns that loop: each telemetry tick it runs the
//! cut detector; on a new cut it computes the restoration plan (the §8
//! algorithm over the live plan) and pushes the revived wavelengths to
//! the device plane atomically; on fiber repair it retires the
//! restoration wavelengths again.

use std::collections::HashSet;

use flexwan_core::planning::{Plan, PlannerConfig};
use flexwan_core::restore::{restore, FailureScenario};
use flexwan_core::Wavelength;
use flexwan_obs::Obs;
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::ip::IpTopology;

use crate::controller::Controller;
use crate::datastream::{FiberCutDetector, TelemetryStore};

/// What the orchestrator did on one tick.
#[derive(Debug, Clone, PartialEq)]
pub enum TickOutcome {
    /// Telemetry healthy, nothing to do.
    Quiet,
    /// New cuts detected and restoration applied.
    Restored {
        /// The newly cut fibers.
        cuts: Vec<EdgeId>,
        /// Capacity lost and revived, Gbps.
        lost_gbps: u64,
        /// Capacity revived, Gbps.
        revived_gbps: u64,
        /// Device-plane rejections during apply (should be none).
        apply_rejections: usize,
    },
    /// Previously cut fibers recovered; restoration wavelengths retired.
    Repaired {
        /// The fibers that came back.
        fibers: Vec<EdgeId>,
        /// Restoration wavelengths retired (released on the device
        /// plane, spectrum and MUX ports returned).
        retired: usize,
        /// Wavelengths re-applied for fibers still cut — a partial
        /// repair retires everything and re-restores the remainder
        /// rather than leaving surviving cuts unprotected.
        re_restored: usize,
    },
}

/// The telemetry-driven restoration loop.
pub struct Orchestrator<'a> {
    optical: &'a Graph,
    ip: &'a IpTopology,
    cfg: PlannerConfig,
    plan: Plan,
    detector: FiberCutDetector,
    extra_spares: Vec<u32>,
    /// Fibers currently believed cut.
    active_cuts: HashSet<EdgeId>,
    /// Restoration wavelengths currently live.
    restoration: Vec<Wavelength>,
    scenario_counter: usize,
    obs: Option<Obs>,
}

impl<'a> Orchestrator<'a> {
    /// An orchestrator guarding `plan`.
    pub fn new(
        optical: &'a Graph,
        ip: &'a IpTopology,
        plan: Plan,
        cfg: PlannerConfig,
        extra_spares: Vec<u32>,
    ) -> Self {
        Orchestrator {
            optical,
            ip,
            cfg,
            plan,
            detector: FiberCutDetector::default(),
            extra_spares,
            active_cuts: HashSet::new(),
            restoration: Vec::new(),
            scenario_counter: 0,
            obs: None,
        }
    }

    /// Arms the orchestrator with an observability bundle: each tick
    /// records a span plus restoration/repair counters and the
    /// active-cut gauge.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The restoration wavelengths currently live.
    pub fn live_restoration(&self) -> &[Wavelength] {
        &self.restoration
    }

    /// Fibers currently believed cut.
    pub fn active_cuts(&self) -> &HashSet<EdgeId> {
        &self.active_cuts
    }

    /// Processes one telemetry tick: detect state changes and react.
    /// `controller` receives the resulting device configuration.
    pub fn tick(&mut self, store: &TelemetryStore, controller: &mut Controller) -> TickOutcome {
        let span = self.obs.as_ref().map(|o| o.span("orch.tick"));
        let start = self.obs.as_ref().map(|o| o.now_ns());
        let outcome = self.tick_inner(store, controller, span.as_ref());
        if let (Some(obs), Some(span), Some(start)) = (&self.obs, &span, start) {
            let reg = obs.registry();
            match &outcome {
                TickOutcome::Quiet => span.field("outcome", "quiet"),
                TickOutcome::Restored {
                    cuts,
                    lost_gbps,
                    revived_gbps,
                    apply_rejections,
                } => {
                    span.field("outcome", "restored");
                    span.field("cuts", cuts.len());
                    span.field("lost_gbps", *lost_gbps);
                    span.field("revived_gbps", *revived_gbps);
                    reg.counter("orchestrator_restorations_total").inc();
                    reg.counter("orchestrator_revived_gbps_total")
                        .add(*revived_gbps);
                    reg.counter("orchestrator_apply_rejections_total")
                        .add(*apply_rejections as u64);
                }
                TickOutcome::Repaired {
                    fibers,
                    retired,
                    re_restored,
                } => {
                    span.field("outcome", "repaired");
                    span.field("fibers", fibers.len());
                    span.field("retired", *retired);
                    span.field("re_restored", *re_restored);
                    reg.counter("orchestrator_repairs_total").inc();
                }
            }
            reg.gauge("orchestrator_active_cuts")
                .set(self.active_cuts.len() as f64);
            obs.observe_since("orchestrator_tick_seconds", start);
        }
        outcome
    }

    fn tick_inner(
        &mut self,
        store: &TelemetryStore,
        controller: &mut Controller,
        span: Option<&flexwan_obs::Span>,
    ) -> TickOutcome {
        let flagged: HashSet<EdgeId> = self.detector.scan(store).into_iter().collect();

        let mut repaired: Vec<EdgeId> = self.active_cuts.difference(&flagged).copied().collect();
        let mut new_cuts: Vec<EdgeId> = flagged.difference(&self.active_cuts).copied().collect();
        repaired.sort();
        new_cuts.sort();
        if repaired.is_empty() && new_cuts.is_empty() {
            return TickOutcome::Quiet;
        }

        // Repairs: release every live restoration wavelength through the
        // device plane (spectrum and MUX ports return to the pool; the
        // original plan's wavelengths resume on the repaired fibers). If
        // any cut survives — a partial repair, or a repair landing on the
        // same tick as a fresh cut — restoration for the surviving set is
        // recomputed below instead of leaving it unprotected.
        let mut retired = 0;
        if !repaired.is_empty() {
            for f in &repaired {
                self.active_cuts.remove(f);
            }
            for w in std::mem::take(&mut self.restoration) {
                // A failed release rolls back to fully-applied; dropping
                // it from the live set anyway matches the recompute below
                // (reconcile picks up any stragglers).
                let _ = controller.release_wavelength_atomic(&w);
                retired += 1;
            }
        }
        self.active_cuts.extend(new_cuts.iter().copied());

        if self.active_cuts.is_empty() {
            return TickOutcome::Repaired {
                fibers: repaired,
                retired,
                re_restored: 0,
            };
        }

        self.scenario_counter += 1;
        let mut cuts: Vec<EdgeId> = self.active_cuts.iter().copied().collect();
        cuts.sort();
        let scenario = FailureScenario {
            id: self.scenario_counter,
            cuts,
            probability: 1.0,
        };
        let plan_span = span.map(|s| s.child("orch.restore_plan"));
        let r = restore(
            &self.plan,
            self.optical,
            self.ip,
            &scenario,
            &self.extra_spares,
            &self.cfg,
        );
        if let Some(p) = &plan_span {
            p.field("restored", r.restored.len());
        }
        drop(plan_span);
        let mut apply_rejections = 0;
        for rw in &r.restored {
            if controller.apply_wavelength_atomic(&rw.wavelength).is_err() {
                apply_rejections += 1;
            } else {
                self.restoration.push(rw.wavelength.clone());
            }
        }
        if new_cuts.is_empty() {
            // Partial repair: cuts remain, restoration recomputed.
            return TickOutcome::Repaired {
                fibers: repaired,
                retired,
                re_restored: self.restoration.len(),
            };
        }
        TickOutcome::Restored {
            cuts: new_cuts,
            lost_gbps: r.affected_gbps,
            revived_gbps: r.restored_gbps,
            apply_rejections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datastream::TelemetrySim;
    use flexwan_core::planning::plan;
    use flexwan_core::Scheme;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_optical::WssKind;
    use flexwan_topo::graph::Graph;

    fn world() -> (Graph, IpTopology, PlannerConfig) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        (g, ip, cfg)
    }

    #[test]
    fn cut_restore_repair_cycle() {
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let primary = p.wavelengths[0].path.edges[0];
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);

        // Healthy ticks.
        for t in 0..5 {
            sim.tick(&mut store, t, &[]);
            assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
        }
        // The backhoe strikes.
        sim.tick(&mut store, 5, &[primary]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Restored {
                cuts,
                lost_gbps,
                revived_gbps,
                apply_rejections,
            } => {
                assert_eq!(cuts, vec![primary]);
                assert_eq!(lost_gbps, 300);
                assert_eq!(revived_gbps, 300, "FlexWAN revives fully (§3.3)");
                assert_eq!(apply_rejections, 0);
            }
            other => panic!("expected restoration, got {other:?}"),
        }
        assert_eq!(orch.live_restoration().len(), 1);
        assert!(!orch.live_restoration()[0].path.uses_edge(primary));

        // Sustained outage: no duplicate restoration.
        sim.tick(&mut store, 6, &[primary]);
        assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
        assert_eq!(orch.live_restoration().len(), 1);

        // Repair.
        sim.tick(&mut store, 7, &[]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Repaired {
                fibers,
                retired,
                re_restored,
            } => {
                assert_eq!(fibers, vec![primary]);
                assert_eq!(retired, 1);
                assert_eq!(re_restored, 0);
            }
            other => panic!("expected repair, got {other:?}"),
        }
        assert!(orch.active_cuts().is_empty());
        assert!(orch.live_restoration().is_empty());
    }

    #[test]
    fn cut_repair_cut_of_same_fiber_leaks_nothing() {
        // The satellite regression: churn the same fiber through many
        // cut → repair cycles. Every cycle must restore afresh (the
        // repair released the previous restoration's spectrum and MUX
        // ports back to the pool) — before the release path existed the
        // monotonic port counter exhausted the 64-port site MUX.
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let primary = p.wavelengths[0].path.edges[0];
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);
        let mut t = 0;
        sim.tick(&mut store, t, &[]);
        assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
        for cycle in 0..80 {
            t += 1;
            sim.tick(&mut store, t, &[primary]);
            match orch.tick(&store, &mut ctrl) {
                TickOutcome::Restored {
                    revived_gbps,
                    apply_rejections,
                    ..
                } => {
                    assert_eq!(revived_gbps, 300, "cycle {cycle}: revival degraded");
                    assert_eq!(apply_rejections, 0, "cycle {cycle}: device plane leaked");
                }
                other => panic!("cycle {cycle}: expected restoration, got {other:?}"),
            }
            assert_eq!(orch.live_restoration().len(), 1);
            t += 1;
            sim.tick(&mut store, t, &[]);
            match orch.tick(&store, &mut ctrl) {
                TickOutcome::Repaired {
                    retired,
                    re_restored,
                    ..
                } => {
                    assert_eq!(retired, 1, "cycle {cycle}");
                    assert_eq!(re_restored, 0, "cycle {cycle}");
                }
                other => panic!("cycle {cycle}: expected repair, got {other:?}"),
            }
            assert!(orch.active_cuts().is_empty(), "cycle {cycle}");
            assert!(orch.live_restoration().is_empty(), "cycle {cycle}");
        }
    }

    #[test]
    fn partial_repair_re_restores_surviving_cut() {
        // Two fibers cut; one comes back. The repair must not strand the
        // still-cut fiber without restoration (the old early return
        // cleared everything and forgot the survivor).
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let primary = p.wavelengths[0].path.edges[0];
        let spare = EdgeId(1); // carries no planned traffic
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);
        sim.tick(&mut store, 0, &[]);
        assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
        sim.tick(&mut store, 1, &[primary, spare]);
        match orch.tick(&store, &mut ctrl) {
            // Both the working fiber and the only detour are down:
            // nothing can be revived yet.
            TickOutcome::Restored { revived_gbps, .. } => assert_eq!(revived_gbps, 0),
            other => panic!("expected restoration, got {other:?}"),
        }
        assert!(orch.live_restoration().is_empty());
        // The spare repairs; primary stays cut — and its repair is what
        // makes the detour restorable again.
        sim.tick(&mut store, 2, &[primary]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Repaired {
                fibers,
                retired,
                re_restored,
            } => {
                assert_eq!(fibers, vec![spare]);
                assert_eq!(retired, 0, "nothing was live to retire");
                assert_eq!(re_restored, 1, "surviving cut must get restored");
            }
            other => panic!("expected partial repair, got {other:?}"),
        }
        assert_eq!(orch.active_cuts().len(), 1);
        assert!(orch.active_cuts().contains(&primary));
        assert_eq!(orch.live_restoration().len(), 1);
        assert!(!orch.live_restoration()[0].path.uses_edge(primary));
    }

    #[test]
    fn repair_and_new_cut_on_the_same_tick() {
        // The repaired fiber's restoration is released and the new cut is
        // restored in one tick — the old repair-first early return would
        // have skipped the new cut entirely until the next tick.
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let primary = p.wavelengths[0].path.edges[0];
        let spare = EdgeId(1);
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);
        sim.tick(&mut store, 0, &[]);
        assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
        sim.tick(&mut store, 1, &[spare]);
        assert!(matches!(
            orch.tick(&store, &mut ctrl),
            TickOutcome::Restored { .. }
        ));
        // spare repairs exactly as primary goes down.
        sim.tick(&mut store, 2, &[primary]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Restored {
                cuts, revived_gbps, ..
            } => {
                assert_eq!(cuts, vec![primary]);
                assert_eq!(revived_gbps, 300);
            }
            other => panic!("expected restoration, got {other:?}"),
        }
        assert_eq!(orch.active_cuts().len(), 1);
        assert!(orch.active_cuts().contains(&primary));
    }

    #[test]
    fn unaffected_cut_restores_nothing() {
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let unused = flexwan_topo::graph::EdgeId(1); // detour fiber, no traffic
        assert!(!p.wavelengths.iter().any(|w| w.path.uses_edge(unused)));
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);
        sim.tick(&mut store, 0, &[]);
        sim.tick(&mut store, 1, &[unused]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Restored {
                lost_gbps,
                revived_gbps,
                ..
            } => {
                assert_eq!(lost_gbps, 0);
                assert_eq!(revived_gbps, 0);
            }
            other => panic!("expected (empty) restoration, got {other:?}"),
        }
        assert!(orch.live_restoration().is_empty());
    }
}
