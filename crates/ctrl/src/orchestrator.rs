//! The closed loop of §4.4: telemetry → fiber-cut detection → optical
//! restoration → device configuration.
//!
//! "Once an optical failure happens, the optical TopoMgr will notify the
//! optical restoration module to generate the optimal restoration plan."
//! The [`Orchestrator`] owns that loop: each telemetry tick it runs the
//! cut detector; on a new cut it computes the restoration plan (the §8
//! algorithm over the live plan) and pushes the revived wavelengths to
//! the device plane atomically; on fiber repair it retires the
//! restoration wavelengths again.

use std::collections::HashSet;

use flexwan_core::planning::{Plan, PlannerConfig};
use flexwan_core::restore::{restore, FailureScenario};
use flexwan_core::Wavelength;
use flexwan_obs::Obs;
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::ip::IpTopology;

use crate::controller::Controller;
use crate::datastream::{FiberCutDetector, TelemetryStore};

/// What the orchestrator did on one tick.
#[derive(Debug, Clone, PartialEq)]
pub enum TickOutcome {
    /// Telemetry healthy, nothing to do.
    Quiet,
    /// New cuts detected and restoration applied.
    Restored {
        /// The newly cut fibers.
        cuts: Vec<EdgeId>,
        /// Capacity lost and revived, Gbps.
        lost_gbps: u64,
        /// Capacity revived, Gbps.
        revived_gbps: u64,
        /// Device-plane rejections during apply (should be none).
        apply_rejections: usize,
    },
    /// Previously cut fibers recovered; restoration wavelengths retired.
    Repaired {
        /// The fibers that came back.
        fibers: Vec<EdgeId>,
        /// Restoration wavelengths retired.
        retired: usize,
    },
}

/// The telemetry-driven restoration loop.
pub struct Orchestrator<'a> {
    optical: &'a Graph,
    ip: &'a IpTopology,
    cfg: PlannerConfig,
    plan: Plan,
    detector: FiberCutDetector,
    extra_spares: Vec<u32>,
    /// Fibers currently believed cut.
    active_cuts: HashSet<EdgeId>,
    /// Restoration wavelengths currently live.
    restoration: Vec<Wavelength>,
    scenario_counter: usize,
    obs: Option<Obs>,
}

impl<'a> Orchestrator<'a> {
    /// An orchestrator guarding `plan`.
    pub fn new(
        optical: &'a Graph,
        ip: &'a IpTopology,
        plan: Plan,
        cfg: PlannerConfig,
        extra_spares: Vec<u32>,
    ) -> Self {
        Orchestrator {
            optical,
            ip,
            cfg,
            plan,
            detector: FiberCutDetector::default(),
            extra_spares,
            active_cuts: HashSet::new(),
            restoration: Vec::new(),
            scenario_counter: 0,
            obs: None,
        }
    }

    /// Arms the orchestrator with an observability bundle: each tick
    /// records a span plus restoration/repair counters and the
    /// active-cut gauge.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The restoration wavelengths currently live.
    pub fn live_restoration(&self) -> &[Wavelength] {
        &self.restoration
    }

    /// Fibers currently believed cut.
    pub fn active_cuts(&self) -> &HashSet<EdgeId> {
        &self.active_cuts
    }

    /// Processes one telemetry tick: detect state changes and react.
    /// `controller` receives the resulting device configuration.
    pub fn tick(&mut self, store: &TelemetryStore, controller: &mut Controller) -> TickOutcome {
        let span = self.obs.as_ref().map(|o| o.span("orch.tick"));
        let start = self.obs.as_ref().map(|o| o.now_ns());
        let outcome = self.tick_inner(store, controller, span.as_ref());
        if let (Some(obs), Some(span), Some(start)) = (&self.obs, &span, start) {
            let reg = obs.registry();
            match &outcome {
                TickOutcome::Quiet => span.field("outcome", "quiet"),
                TickOutcome::Restored {
                    cuts,
                    lost_gbps,
                    revived_gbps,
                    apply_rejections,
                } => {
                    span.field("outcome", "restored");
                    span.field("cuts", cuts.len());
                    span.field("lost_gbps", *lost_gbps);
                    span.field("revived_gbps", *revived_gbps);
                    reg.counter("orchestrator_restorations_total").inc();
                    reg.counter("orchestrator_revived_gbps_total")
                        .add(*revived_gbps);
                    reg.counter("orchestrator_apply_rejections_total")
                        .add(*apply_rejections as u64);
                }
                TickOutcome::Repaired { fibers, retired } => {
                    span.field("outcome", "repaired");
                    span.field("fibers", fibers.len());
                    span.field("retired", *retired);
                    reg.counter("orchestrator_repairs_total").inc();
                }
            }
            reg.gauge("orchestrator_active_cuts")
                .set(self.active_cuts.len() as f64);
            obs.observe_since("orchestrator_tick_seconds", start);
        }
        outcome
    }

    fn tick_inner(
        &mut self,
        store: &TelemetryStore,
        controller: &mut Controller,
        span: Option<&flexwan_obs::Span>,
    ) -> TickOutcome {
        let flagged: HashSet<EdgeId> = self.detector.scan(store).into_iter().collect();

        // Repair first: fibers that were cut and are now clean.
        let repaired: Vec<EdgeId> = self.active_cuts.difference(&flagged).copied().collect();
        if !repaired.is_empty() {
            for f in &repaired {
                self.active_cuts.remove(f);
            }
            // Retire all restoration wavelengths; the original plan's
            // wavelengths resume on the repaired fibers. (Production
            // systems revert lazily; retiring eagerly keeps the invariant
            // "restoration exists iff cuts exist" simple and testable.)
            let retired = self.restoration.len();
            self.restoration.clear();
            return TickOutcome::Repaired {
                fibers: repaired,
                retired,
            };
        }

        // New cuts.
        let new_cuts: Vec<EdgeId> = flagged.difference(&self.active_cuts).copied().collect();
        if new_cuts.is_empty() {
            return TickOutcome::Quiet;
        }
        self.active_cuts.extend(new_cuts.iter().copied());
        self.scenario_counter += 1;
        let scenario = FailureScenario {
            id: self.scenario_counter,
            cuts: self.active_cuts.iter().copied().collect(),
            probability: 1.0,
        };
        let plan_span = span.map(|s| s.child("orch.restore_plan"));
        let r = restore(
            &self.plan,
            self.optical,
            self.ip,
            &scenario,
            &self.extra_spares,
            &self.cfg,
        );
        if let Some(p) = &plan_span {
            p.field("restored", r.restored.len());
        }
        drop(plan_span);
        let mut apply_rejections = 0;
        for rw in &r.restored {
            if controller.apply_wavelength_atomic(&rw.wavelength).is_err() {
                apply_rejections += 1;
            } else {
                self.restoration.push(rw.wavelength.clone());
            }
        }
        TickOutcome::Restored {
            cuts: new_cuts,
            lost_gbps: r.affected_gbps,
            revived_gbps: r.restored_gbps,
            apply_rejections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datastream::TelemetrySim;
    use flexwan_core::planning::plan;
    use flexwan_core::Scheme;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_optical::WssKind;
    use flexwan_topo::graph::Graph;

    fn world() -> (Graph, IpTopology, PlannerConfig) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        (g, ip, cfg)
    }

    #[test]
    fn cut_restore_repair_cycle() {
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let primary = p.wavelengths[0].path.edges[0];
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);

        // Healthy ticks.
        for t in 0..5 {
            sim.tick(&mut store, t, &[]);
            assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
        }
        // The backhoe strikes.
        sim.tick(&mut store, 5, &[primary]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Restored {
                cuts,
                lost_gbps,
                revived_gbps,
                apply_rejections,
            } => {
                assert_eq!(cuts, vec![primary]);
                assert_eq!(lost_gbps, 300);
                assert_eq!(revived_gbps, 300, "FlexWAN revives fully (§3.3)");
                assert_eq!(apply_rejections, 0);
            }
            other => panic!("expected restoration, got {other:?}"),
        }
        assert_eq!(orch.live_restoration().len(), 1);
        assert!(!orch.live_restoration()[0].path.uses_edge(primary));

        // Sustained outage: no duplicate restoration.
        sim.tick(&mut store, 6, &[primary]);
        assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
        assert_eq!(orch.live_restoration().len(), 1);

        // Repair.
        sim.tick(&mut store, 7, &[]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Repaired { fibers, retired } => {
                assert_eq!(fibers, vec![primary]);
                assert_eq!(retired, 1);
            }
            other => panic!("expected repair, got {other:?}"),
        }
        assert!(orch.active_cuts().is_empty());
        assert!(orch.live_restoration().is_empty());
    }

    #[test]
    fn unaffected_cut_restores_nothing() {
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let unused = flexwan_topo::graph::EdgeId(1); // detour fiber, no traffic
        assert!(!p.wavelengths.iter().any(|w| w.path.uses_edge(unused)));
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);
        sim.tick(&mut store, 0, &[]);
        sim.tick(&mut store, 1, &[unused]);
        match orch.tick(&store, &mut ctrl) {
            TickOutcome::Restored {
                lost_gbps,
                revived_gbps,
                ..
            } => {
                assert_eq!(lost_gbps, 0);
                assert_eq!(revived_gbps, 0);
            }
            other => panic!("expected (empty) restoration, got {other:?}"),
        }
        assert!(orch.live_restoration().is_empty());
    }
}
