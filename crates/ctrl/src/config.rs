//! Standard configuration documents (the "Yang file" of §4.4).
//!
//! The DevMgr "issues a Yang file containing detailed configuration
//! parameters to configure the device through the Netconf protocol". Our
//! stand-in keeps the semantics — structured, self-describing,
//! serializable configuration documents — encoded with serde/JSON instead
//! of YANG/XML (substitution recorded in DESIGN.md §1).

use serde::{Deserialize, Serialize};

use flexwan_optical::format::TransponderFormat;
use flexwan_optical::spectrum::PixelRange;

/// A standard (vendor-agnostic) configuration payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StandardConfig {
    /// Configure a transponder's line side: modulation format, FEC, baud
    /// and the spectrum its wavelength must occupy.
    Transponder {
        /// The operating point to program into FEC/DSP/EOM.
        format: TransponderFormat,
        /// The assigned spectrum.
        channel: PixelRange,
        /// Administratively enable/disable the line.
        enabled: bool,
    },
    /// Configure one MUX filter port's passband.
    MuxPort {
        /// The faceplate port.
        port: u16,
        /// The passband; `None` clears the port.
        passband: Option<PixelRange>,
    },
    /// Add an express passband between two ROADM degrees.
    RoadmExpress {
        /// Ingress degree.
        from_degree: u16,
        /// Egress degree.
        to_degree: u16,
        /// The passband to express.
        passband: PixelRange,
    },
    /// Remove a ROADM express passband.
    RoadmRelease {
        /// Ingress degree.
        from_degree: u16,
        /// Egress degree.
        to_degree: u16,
        /// The passband to remove.
        passband: PixelRange,
    },
    /// Set an amplifier's gain.
    AmplifierGain {
        /// Target gain, dB.
        gain_db: f64,
    },
}

/// The YANG-file stand-in: a named, versioned configuration document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigDocument {
    /// Monotonic revision stamped by the controller.
    pub revision: u64,
    /// The configuration payload.
    pub config: StandardConfig,
}

impl ConfigDocument {
    /// Serializes to the wire form (JSON standing in for YANG/XML).
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("config documents always serialize")
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::PixelWidth;

    fn sample() -> ConfigDocument {
        ConfigDocument {
            revision: 7,
            config: StandardConfig::Transponder {
                format: TransponderFormat::derive(
                    400,
                    PixelWidth::from_ghz(100.0).unwrap(),
                    1500,
                ),
                channel: PixelRange::new(16, PixelWidth::new(8)),
                enabled: true,
            },
        }
    }

    #[test]
    fn wire_round_trip() {
        let doc = sample();
        let wire = doc.to_wire();
        assert!(wire.contains("\"revision\":7"));
        let back = ConfigDocument::from_wire(&wire).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(ConfigDocument::from_wire("{not yang}").is_err());
    }

    #[test]
    fn all_variants_serialize() {
        let r = PixelRange::new(0, PixelWidth::new(6));
        for cfg in [
            StandardConfig::MuxPort { port: 3, passband: Some(r) },
            StandardConfig::MuxPort { port: 3, passband: None },
            StandardConfig::RoadmExpress { from_degree: 0, to_degree: 1, passband: r },
            StandardConfig::RoadmRelease { from_degree: 0, to_degree: 1, passband: r },
            StandardConfig::AmplifierGain { gain_db: 17.5 },
        ] {
            let doc = ConfigDocument { revision: 1, config: cfg };
            assert_eq!(ConfigDocument::from_wire(&doc.to_wire()).unwrap(), doc);
        }
    }
}
