//! Standard configuration documents (the "Yang file" of §4.4).
//!
//! The DevMgr "issues a Yang file containing detailed configuration
//! parameters to configure the device through the Netconf protocol". Our
//! stand-in keeps the semantics — structured, self-describing,
//! serializable configuration documents — encoded with serde/JSON instead
//! of YANG/XML (substitution recorded in DESIGN.md §1).

use flexwan_optical::format::TransponderFormat;
use flexwan_optical::spectrum::PixelRange;
use flexwan_util::json::{self, FromJson, ToJson, Value};

/// A standard (vendor-agnostic) configuration payload.
#[derive(Debug, Clone, PartialEq)]
pub enum StandardConfig {
    /// Configure a transponder's line side: modulation format, FEC, baud
    /// and the spectrum its wavelength must occupy.
    Transponder {
        /// The operating point to program into FEC/DSP/EOM.
        format: TransponderFormat,
        /// The assigned spectrum.
        channel: PixelRange,
        /// Administratively enable/disable the line.
        enabled: bool,
    },
    /// Configure one MUX filter port's passband.
    MuxPort {
        /// The faceplate port.
        port: u16,
        /// The passband; `None` clears the port.
        passband: Option<PixelRange>,
    },
    /// Add an express passband between two ROADM degrees.
    RoadmExpress {
        /// Ingress degree.
        from_degree: u16,
        /// Egress degree.
        to_degree: u16,
        /// The passband to express.
        passband: PixelRange,
    },
    /// Remove a ROADM express passband.
    RoadmRelease {
        /// Ingress degree.
        from_degree: u16,
        /// Egress degree.
        to_degree: u16,
        /// The passband to remove.
        passband: PixelRange,
    },
    /// Set an amplifier's gain.
    AmplifierGain {
        /// Target gain, dB.
        gain_db: f64,
    },
}

/// The YANG-file stand-in: a named, versioned configuration document.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigDocument {
    /// Monotonic revision stamped by the controller.
    pub revision: u64,
    /// The configuration payload.
    pub config: StandardConfig,
}

impl ConfigDocument {
    /// Serializes to the wire form (JSON standing in for YANG/XML).
    pub fn to_wire(&self) -> String {
        json::to_string(self)
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Result<Self, json::Error> {
        json::from_str(s)
    }
}

// ---- JSON wire encoding (externally tagged, as serde derived) ----

impl ToJson for StandardConfig {
    fn to_json(&self) -> Value {
        let (tag, body) = match self {
            StandardConfig::Transponder {
                format,
                channel,
                enabled,
            } => (
                "Transponder",
                Value::obj([
                    ("format", format.to_json()),
                    ("channel", channel.to_json()),
                    ("enabled", enabled.to_json()),
                ]),
            ),
            StandardConfig::MuxPort { port, passband } => (
                "MuxPort",
                Value::obj([("port", port.to_json()), ("passband", passband.to_json())]),
            ),
            StandardConfig::RoadmExpress {
                from_degree,
                to_degree,
                passband,
            } => (
                "RoadmExpress",
                Value::obj([
                    ("from_degree", from_degree.to_json()),
                    ("to_degree", to_degree.to_json()),
                    ("passband", passband.to_json()),
                ]),
            ),
            StandardConfig::RoadmRelease {
                from_degree,
                to_degree,
                passband,
            } => (
                "RoadmRelease",
                Value::obj([
                    ("from_degree", from_degree.to_json()),
                    ("to_degree", to_degree.to_json()),
                    ("passband", passband.to_json()),
                ]),
            ),
            StandardConfig::AmplifierGain { gain_db } => (
                "AmplifierGain",
                Value::obj([("gain_db", gain_db.to_json())]),
            ),
        };
        Value::obj([(tag, body)])
    }
}

impl FromJson for StandardConfig {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        if let Some(b) = v.get("Transponder") {
            return Ok(StandardConfig::Transponder {
                format: b.field("format")?,
                channel: b.field("channel")?,
                enabled: b.field("enabled")?,
            });
        }
        if let Some(b) = v.get("MuxPort") {
            return Ok(StandardConfig::MuxPort {
                port: b.field("port")?,
                passband: b.field("passband")?,
            });
        }
        if let Some(b) = v.get("RoadmExpress") {
            return Ok(StandardConfig::RoadmExpress {
                from_degree: b.field("from_degree")?,
                to_degree: b.field("to_degree")?,
                passband: b.field("passband")?,
            });
        }
        if let Some(b) = v.get("RoadmRelease") {
            return Ok(StandardConfig::RoadmRelease {
                from_degree: b.field("from_degree")?,
                to_degree: b.field("to_degree")?,
                passband: b.field("passband")?,
            });
        }
        if let Some(b) = v.get("AmplifierGain") {
            return Ok(StandardConfig::AmplifierGain {
                gain_db: b.field("gain_db")?,
            });
        }
        Err(json::Error::new("unknown standard-config variant"))
    }
}

impl ToJson for ConfigDocument {
    fn to_json(&self) -> Value {
        Value::obj([
            ("revision", self.revision.to_json()),
            ("config", self.config.to_json()),
        ])
    }
}

impl FromJson for ConfigDocument {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(ConfigDocument {
            revision: v.field("revision")?,
            config: v.field("config")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::PixelWidth;

    fn sample() -> ConfigDocument {
        ConfigDocument {
            revision: 7,
            config: StandardConfig::Transponder {
                format: TransponderFormat::derive(400, PixelWidth::new(8), 1500),
                channel: PixelRange::new(16, PixelWidth::new(8)),
                enabled: true,
            },
        }
    }

    #[test]
    fn wire_round_trip() {
        let doc = sample();
        let wire = doc.to_wire();
        assert!(wire.contains("\"revision\":7"));
        let back = ConfigDocument::from_wire(&wire).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(ConfigDocument::from_wire("{not yang}").is_err());
    }

    #[test]
    fn all_variants_serialize() {
        let r = PixelRange::new(0, PixelWidth::new(6));
        for cfg in [
            StandardConfig::MuxPort {
                port: 3,
                passband: Some(r),
            },
            StandardConfig::MuxPort {
                port: 3,
                passband: None,
            },
            StandardConfig::RoadmExpress {
                from_degree: 0,
                to_degree: 1,
                passband: r,
            },
            StandardConfig::RoadmRelease {
                from_degree: 0,
                to_degree: 1,
                passband: r,
            },
            StandardConfig::AmplifierGain { gain_db: 17.5 },
        ] {
            let doc = ConfigDocument {
                revision: 1,
                config: cfg,
            };
            assert_eq!(ConfigDocument::from_wire(&doc.to_wire()).unwrap(), doc);
        }
    }
}
