//! The standard device model (§4.3).
//!
//! "We utilize a standard device model for each type of device so that the
//! heterogeneous devices across vendors are uniformly abstracted into a
//! group of logic components. Then, the device model provides the mapping
//! of these abstracted logic components to specify the detailed workflow
//! between them." — [`StandardDeviceModel`] is that abstraction: per
//! device kind, the ordered logic components and the signal workflow
//! between them. Vendor adapters ([`crate::vendor`]) translate standard
//! configuration into native dialects, so the controller never speaks a
//! vendor-specific language.

use std::net::Ipv4Addr;

use flexwan_topo::graph::NodeId;

/// Controller-wide device identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

/// Equipment vendor. Vendor diversity is deliberate in production (§9:
/// "essential to prevent monopolies and mitigate concurrent optical
/// failures").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Vendor A: configures spectrum in GHz offsets.
    VendorA,
    /// Vendor B: configures spectrum in 12.5 GHz slice indices.
    VendorB,
    /// Vendor C: configures spectrum in MHz with its own field names.
    VendorC,
}

impl Vendor {
    /// All vendors.
    pub const ALL: [Vendor; 3] = [Vendor::VendorA, Vendor::VendorB, Vendor::VendorC];
}

/// Device category in the optical layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// An optical transponder (SVT/BVT/fixed).
    Transponder,
    /// An AWG multiplexer with a WSS filter stage.
    Mux,
    /// A reconfigurable optical add-drop multiplexer.
    Roadm,
    /// An inline EDFA amplifier.
    Amplifier,
}

/// A logic component inside a device, per the standard model (§4.2's
/// transponder internals, §4.2's OLS internals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicComponent {
    /// Forward-error-correction module (adjustable overhead in the SVT).
    FecModule,
    /// Digital signal processor (baud rate × modulation mesh).
    Dsp,
    /// Electro-optic modulator (channel spacing).
    Eom,
    /// A MUX filter port (one passband).
    FilterPort,
    /// A WSS switching module (pixel-wise or fixed-grid).
    WssModule,
    /// Gain block of an amplifier.
    GainBlock,
    /// The device's control unit (receives configuration parameters).
    ControlUnit,
}

/// The standard model of one device kind: its logic components in signal
/// order, i.e. the workflow mapping of §4.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandardDeviceModel {
    /// The device kind modeled.
    pub kind: DeviceKind,
    /// Components in signal-flow order (electrical → optical).
    pub workflow: Vec<LogicComponent>,
}

impl StandardDeviceModel {
    /// The standard model for `kind`.
    pub fn for_kind(kind: DeviceKind) -> StandardDeviceModel {
        use LogicComponent::*;
        let workflow = match kind {
            // Figure 7: control unit drives FEC → DSP → EOM.
            DeviceKind::Transponder => vec![ControlUnit, FecModule, Dsp, Eom],
            DeviceKind::Mux => vec![ControlUnit, FilterPort, WssModule],
            DeviceKind::Roadm => vec![ControlUnit, WssModule],
            DeviceKind::Amplifier => vec![ControlUnit, GainBlock],
        };
        StandardDeviceModel { kind, workflow }
    }

    /// Whether the model contains `component`.
    pub fn has(&self, component: LogicComponent) -> bool {
        self.workflow.contains(&component)
    }
}

/// A device registered with the controller: identity, vendor, kind, its
/// management IP (the controller "uses this IP address to locate the
/// optical device", §4.3) and the ROADM site it sits at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDescriptor {
    /// Controller-wide identifier.
    pub id: DeviceId,
    /// Equipment vendor.
    pub vendor: Vendor,
    /// Device category.
    pub kind: DeviceKind,
    /// Management-plane IPv4 address.
    pub mgmt_ip: Ipv4Addr,
    /// The optical site hosting the device.
    pub site: NodeId,
}

impl DeviceDescriptor {
    /// Allocates the conventional management address for device `id`:
    /// 10.x.y.z from the id (deterministic, collision-free for < 2²⁴
    /// devices).
    pub fn mgmt_ip_for(id: DeviceId) -> Ipv4Addr {
        let n = id.0;
        Ipv4Addr::new(10, (n >> 16) as u8, (n >> 8) as u8, n as u8)
    }
}

// ---- JSON wire encoding ----

use flexwan_util::json::{self, FromJson, ToJson, Value};

impl ToJson for DeviceId {
    fn to_json(&self) -> Value {
        // Newtype struct: encodes as the bare inner number.
        self.0.to_json()
    }
}

impl FromJson for DeviceId {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(DeviceId(u32::from_json(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transponder_workflow_matches_figure7() {
        let m = StandardDeviceModel::for_kind(DeviceKind::Transponder);
        assert_eq!(
            m.workflow,
            vec![
                LogicComponent::ControlUnit,
                LogicComponent::FecModule,
                LogicComponent::Dsp,
                LogicComponent::Eom
            ]
        );
        assert!(m.has(LogicComponent::Eom));
        assert!(!m.has(LogicComponent::FilterPort));
    }

    #[test]
    fn every_kind_has_control_unit_first() {
        for kind in [
            DeviceKind::Transponder,
            DeviceKind::Mux,
            DeviceKind::Roadm,
            DeviceKind::Amplifier,
        ] {
            let m = StandardDeviceModel::for_kind(kind);
            assert_eq!(m.workflow[0], LogicComponent::ControlUnit, "{kind:?}");
        }
    }

    #[test]
    fn mgmt_ips_unique() {
        let a = DeviceDescriptor::mgmt_ip_for(DeviceId(1));
        let b = DeviceDescriptor::mgmt_ip_for(DeviceId(256));
        let c = DeviceDescriptor::mgmt_ip_for(DeviceId(65536));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(c, Ipv4Addr::new(10, 1, 0, 0));
    }
}
