//! The always-on churn service: a deadline-budgeted event loop with a
//! graceful-degradation ladder over the standing incremental planning
//! model.
//!
//! The §4.4 loop of [`crate::orchestrator`] reacts to one telemetry tick
//! at a time. Production backbones churn continuously — demand resizes,
//! backhoes, splices, amplifier drift — and the controller must keep a
//! committed plan standing through all of it, inside a reaction deadline.
//! [`ChurnService`] is that loop run as a service:
//!
//! * **Event sourcing.** Every churn event lives in an append-only
//!   [`EventLog`] (the bus); deliveries are doorbells. The service
//!   applies canonical events strictly in sequence order — a duplicate
//!   or stale delivery is ignored, a gap is filled from the log — so the
//!   applied stream equals the canonical stream no matter how the
//!   transport drops, duplicates, reorders or delays
//!   (see [`crate::faults::FaultInjector::perturb_stream`]).
//! * **Classification.** Demand deltas mutate the standing
//!   [`PlanModel`]'s capacity rows in place; cuts and repairs run the §8
//!   restoration mutation (simultaneous cuts generate banned-path columns
//!   on demand instead of rebuilding); telemetry drift is monitored and
//!   escalates to a cut only past a threshold. A full rebuild happens
//!   only when generated columns bloat the model past a factor, or as
//!   self-healing after a solver error.
//! * **Degradation ladder.** Each tick runs under a budget. Level 0 is
//!   the warm incremental MIP; when the budget is blown or the solver
//!   fails, level 1 falls back to the greedy §8 heuristic over the
//!   maintained heuristic baseline; level 2 falls back to the
//!   pre-provisioned 1+1 protection copies with zero computation. Every
//!   ladder decision is journaled, so replaying the journal over the log
//!   reconstructs the live state bit-for-bit.

use std::collections::{BTreeMap, BTreeSet};

use flexwan_core::planning::{plan, ExactPlan, Plan, PlanModel, PlannerConfig};
use flexwan_core::protect::{plan_protected, ProtectedPlan};
use flexwan_core::restore::{restore, FailureScenario};
use flexwan_core::{Scheme, Wavelength};
use flexwan_obs::{Obs, LATENCY_SECONDS_BUCKETS};
use flexwan_solver::{record_solver_stats, SolveOptions};
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::ip::{IpLinkId, IpTopology};
use flexwan_util::json::{self, ToJson, Value};

/// One churn event entering the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A fiber went dark.
    FiberCut(EdgeId),
    /// A cut fiber was spliced and came back.
    FiberRepair(EdgeId),
    /// An IP link was resized to a new bandwidth-capacity demand.
    DemandDelta {
        /// The resized link.
        link: IpLinkId,
        /// Its new demand, Gbps.
        demand_gbps: u64,
    },
    /// Receive-power drift on a fiber (dB, signed). Monitored; the
    /// accumulated drift escalates to a cut past
    /// [`ServiceConfig::drift_cut_db`].
    TelemetryDrift {
        /// The drifting fiber.
        fiber: EdgeId,
        /// Power change since the last sample, dB.
        delta_db: f64,
    },
    /// Several fibers went dark at once (shared-risk event: a conduit
    /// cut, an amplifier-hut outage). Coalesces exactly like the same
    /// fibers cut as individual [`ChurnEvent::FiberCut`] events in the
    /// same batch — one multi-cut restoration, not one per fiber.
    SimultaneousCuts(Vec<EdgeId>),
}

/// A sequenced event as published by the [`EventLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeqEvent {
    /// Position in the canonical log (0-based, gap-free).
    pub seq: u64,
    /// The event.
    pub event: ChurnEvent,
}

/// The canonical, append-only churn event log. Deliveries to the service
/// may be perturbed; the log never is — it is the replay source of truth.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<ChurnEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event, returning it stamped with its sequence number.
    pub fn append(&mut self, event: ChurnEvent) -> SeqEvent {
        let seq = self.events.len() as u64;
        self.events.push(event.clone());
        SeqEvent { seq, event }
    }

    /// The event at `seq`.
    pub fn get(&self, seq: u64) -> Option<&ChurnEvent> {
        self.events.get(seq as usize)
    }

    /// Number of events logged.
    pub fn len(&self) -> u64 {
        self.events.len() as u64
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Degradation-ladder level 0: warm re-solve of the standing MIP.
pub const LADDER_WARM: u8 = 0;
/// Level 1: greedy §8 heuristic restoration over the heuristic baseline.
pub const LADDER_HEURISTIC: u8 = 1;
/// Level 2: pre-provisioned 1+1 protection, zero computation.
pub const LADDER_PROTECT: u8 = 2;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Per-tick reaction deadline, ns. Checked between ladder steps
    /// (a step in flight is never interrupted); a blown budget drops the
    /// remaining work down the ladder and starts the next tick one level
    /// degraded. `u64::MAX` disables the deadline.
    pub tick_budget_ns: u64,
    /// Options for every standing-model solve.
    pub solve: SolveOptions,
    /// Rebuild the standing model once on-demand restoration columns
    /// exceed this fraction of the base enumeration (compaction).
    pub rebuild_column_factor: f64,
    /// Accumulated telemetry drift (dB, absolute) at which a fiber is
    /// treated as cut.
    pub drift_cut_db: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            tick_budget_ns: u64::MAX,
            solve: SolveOptions::default(),
            rebuild_column_factor: 0.5,
            drift_cut_db: 20.0,
        }
    }
}

/// What one service tick did.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// Tick number (1-based).
    pub tick: u64,
    /// Canonical events applied this tick (including gap fills).
    pub applied: usize,
    /// Deliveries ignored as duplicate or stale.
    pub duplicates: usize,
    /// Ladder level the planning reaction ran at (`LADDER_WARM` when no
    /// planning re-solve was needed).
    pub demand_level: u8,
    /// Ladder level the restoration reaction ran at.
    pub restore_level: u8,
    /// Whether the tick overran its budget (the next tick starts
    /// degraded).
    pub deadline_blown: bool,
    /// Whether the standing model was rebuilt from scratch.
    pub rebuilt: bool,
    /// Capacity lost to the active cuts, Gbps.
    pub affected_gbps: u64,
    /// Capacity restored, Gbps.
    pub restored_gbps: u64,
    /// Banned-path columns generated on demand this tick.
    pub added_columns: usize,
    /// Reaction time, ns (0 without an observability clock).
    pub reaction_ns: u64,
}

/// One journaled ladder decision: enough to re-execute the tick
/// deterministically without a clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// Tick number.
    pub tick: u64,
    /// Canonical sequence watermark after the tick (`next_seq`).
    pub upto_seq: u64,
    /// Ladder level of the planning reaction.
    pub demand_level: u8,
    /// Ladder level of the restoration reaction.
    pub restore_level: u8,
    /// Whether the standing model was rebuilt.
    pub rebuilt: bool,
    /// Whether the tick overran its budget (the next tick starts one
    /// rung degraded — replay reproduces the backpressure from this
    /// bit, never from a clock).
    pub deadline_blown: bool,
}

/// Cumulative service counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Canonical events applied.
    pub events_applied: u64,
    /// Deliveries ignored as duplicate or stale.
    pub duplicates_ignored: u64,
    /// Events applied from the log to fill delivery gaps.
    pub gap_fills: u64,
    /// Warm model mutations (demand RHS changes + restoration mutations).
    pub warm_mutations: u64,
    /// Full standing-model rebuilds.
    pub rebuilds: u64,
    /// Ticks that overran their budget.
    pub deadline_blown: u64,
    /// Ticks whose restoration reaction landed on each ladder level.
    pub level_ticks: [u64; 3],
}

/// Canonical service state: everything the control decisions depend on,
/// in deterministic order. Two services whose canonical JSON matches
/// byte-for-byte are in the same state.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceState {
    /// Ticks processed.
    pub tick: u64,
    /// Next canonical sequence number to apply.
    pub next_seq: u64,
    /// Ladder level the next tick starts at.
    pub start_level: u8,
    /// Whether a planning re-solve is pending (deferred by a degraded
    /// tick).
    pub demand_dirty: bool,
    /// Whether the fallback plans are stale (deferred refresh).
    pub fallback_dirty: bool,
    /// Whether the service is currently riding on 1+1 protection.
    pub protection_active: bool,
    /// Per-link demand, Gbps, in link order.
    pub demands: Vec<u64>,
    /// Active cuts (sorted fiber ids), including drift-escalated ones.
    pub active_cuts: Vec<u32>,
    /// Accumulated drift per fiber, dB (sorted by fiber id).
    pub drift_db: Vec<(u32, f64)>,
    /// Committed planning objective.
    pub baseline_objective: f64,
    /// Committed planning wavelengths, canonical keys, sorted.
    pub baseline: Vec<String>,
    /// Live restoration wavelengths, canonical keys, sorted.
    pub restoration: Vec<String>,
}

impl ToJson for ServiceState {
    fn to_json(&self) -> Value {
        Value::obj([
            ("tick", self.tick.to_json()),
            ("next_seq", self.next_seq.to_json()),
            ("start_level", u64::from(self.start_level).to_json()),
            ("demand_dirty", self.demand_dirty.to_json()),
            ("fallback_dirty", self.fallback_dirty.to_json()),
            ("protection_active", self.protection_active.to_json()),
            ("demands", self.demands.to_json()),
            (
                "active_cuts",
                self.active_cuts
                    .iter()
                    .map(|&c| u64::from(c))
                    .collect::<Vec<_>>()
                    .to_json(),
            ),
            (
                "drift_db",
                Value::Array(
                    self.drift_db
                        .iter()
                        .map(|&(f, d)| {
                            Value::obj([("fiber", u64::from(f).to_json()), ("db", d.to_json())])
                        })
                        .collect(),
                ),
            ),
            ("baseline_objective", self.baseline_objective.to_json()),
            ("baseline", self.baseline.to_json()),
            ("restoration", self.restoration.to_json()),
        ])
    }
}

impl ServiceState {
    /// The canonical JSON encoding (byte-identical ⇔ same state).
    pub fn canonical_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

/// Canonical identity of a wavelength, independent of container order.
fn wl_key(w: &Wavelength) -> String {
    let edges: Vec<String> = w.path.edges.iter().map(|e| e.0.to_string()).collect();
    format!(
        "{}|{}|{}x{}|{}G",
        w.link.0,
        edges.join("-"),
        w.channel.start,
        w.channel.width.pixels(),
        w.format.data_rate_gbps
    )
}

/// Net effect of one tick's event batch, coalesced. Later events win:
/// two resizes of one link keep the last, a cut followed by its repair in
/// the same batch cancels out.
#[derive(Debug, Default)]
struct NetChange {
    demand: BTreeMap<IpLinkId, u64>,
    cuts_added: BTreeSet<EdgeId>,
    cuts_removed: BTreeSet<EdgeId>,
    drift: Vec<(EdgeId, f64)>,
}

/// The always-on churn controller.
pub struct ChurnService<'a> {
    optical: &'a Graph,
    ip: IpTopology,
    scheme: Scheme,
    cfg: PlannerConfig,
    svc: ServiceConfig,
    model: PlanModel,
    baseline: ExactPlan,
    /// Greedy baseline the level-1 heuristic restores over.
    heuristic_plan: Plan,
    /// Pre-provisioned 1+1 fallback (level 2).
    protected: ProtectedPlan,
    active_cuts: BTreeSet<EdgeId>,
    drift_db: BTreeMap<EdgeId, f64>,
    live_restoration: Vec<Wavelength>,
    demand_dirty: bool,
    fallback_dirty: bool,
    protection_active: bool,
    next_seq: u64,
    tick: u64,
    start_level: u8,
    base_columns: usize,
    generated_columns: usize,
    scenario_counter: usize,
    journal: Vec<TickRecord>,
    stats: ServiceStats,
    obs: Option<Obs>,
}

impl<'a> ChurnService<'a> {
    /// Builds the standing model over `ip` and commits the initial plan.
    /// Returns `None` when the initial instance is infeasible.
    pub fn new(
        optical: &'a Graph,
        ip: &IpTopology,
        scheme: Scheme,
        cfg: PlannerConfig,
        svc: ServiceConfig,
    ) -> Option<Self> {
        let mut model = PlanModel::build_restorable(scheme, optical, ip, &cfg);
        let baseline = model.solve(&svc.solve)?;
        let heuristic_plan = plan(scheme, optical, ip, &cfg);
        let protected = plan_protected(scheme, optical, ip, &cfg);
        let base_columns = model.space().gammas().len();
        Some(ChurnService {
            optical,
            ip: ip.clone(),
            scheme,
            cfg,
            svc,
            model,
            baseline,
            heuristic_plan,
            protected,
            active_cuts: BTreeSet::new(),
            drift_db: BTreeMap::new(),
            live_restoration: Vec::new(),
            demand_dirty: false,
            fallback_dirty: false,
            protection_active: false,
            next_seq: 0,
            tick: 0,
            start_level: LADDER_WARM,
            base_columns,
            generated_columns: 0,
            scenario_counter: 0,
            journal: Vec::new(),
            stats: ServiceStats::default(),
            obs: None,
        })
    }

    /// Arms the service with an observability bundle: reaction-time
    /// histograms, ladder-level counters and solver warm/cold counters
    /// are published, and the bundle's clock drives the deadline budget.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Adjusts the per-tick deadline budget at runtime (operators tune
    /// this as the backbone grows; tests use it to force and then lift
    /// degradation).
    pub fn set_tick_budget_ns(&mut self, ns: u64) {
        self.svc.tick_budget_ns = ns;
    }

    /// Replaces the solve options used for every standing-model solve
    /// (`max_nodes = 0` wedges the solver — the ladder test hook).
    pub fn set_solve_options(&mut self, opts: SolveOptions) {
        self.svc.solve = opts;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The journaled ladder decisions, in tick order.
    pub fn journal(&self) -> &[TickRecord] {
        &self.journal
    }

    /// The committed planning baseline.
    pub fn baseline(&self) -> &ExactPlan {
        &self.baseline
    }

    /// The restoration wavelengths currently live.
    pub fn live_restoration(&self) -> &[Wavelength] {
        &self.live_restoration
    }

    /// Fibers currently believed cut (including drift escalations).
    pub fn active_cuts(&self) -> &BTreeSet<EdgeId> {
        &self.active_cuts
    }

    /// The canonical state snapshot.
    pub fn state(&self) -> ServiceState {
        let mut baseline: Vec<String> = self.baseline.wavelengths.iter().map(wl_key).collect();
        baseline.sort();
        let mut restoration: Vec<String> = self.live_restoration.iter().map(wl_key).collect();
        restoration.sort();
        ServiceState {
            tick: self.tick,
            next_seq: self.next_seq,
            start_level: self.start_level,
            demand_dirty: self.demand_dirty,
            fallback_dirty: self.fallback_dirty,
            protection_active: self.protection_active,
            demands: self.ip.links().iter().map(|l| l.demand_gbps).collect(),
            active_cuts: self.active_cuts.iter().map(|e| e.0).collect(),
            drift_db: self.drift_db.iter().map(|(e, &d)| (e.0, d)).collect(),
            baseline_objective: self.baseline.objective,
            baseline,
            restoration,
        }
    }

    /// Delivers one (possibly perturbed) batch. The batch is a doorbell:
    /// canonical events are applied from `log` strictly in order up to
    /// the highest delivered sequence number, so drops inside the batch
    /// are filled and duplicates are ignored. Returns what the tick did.
    pub fn deliver(&mut self, log: &EventLog, batch: &[SeqEvent]) -> TickReport {
        let target = batch
            .iter()
            .map(|e| e.seq + 1)
            .max()
            .unwrap_or(self.next_seq);
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut duplicates = 0usize;
        for e in batch {
            if e.seq < self.next_seq || !seen.insert(e.seq) {
                duplicates += 1;
            }
        }
        self.advance(log, target, duplicates, &seen, None)
    }

    /// Applies every canonical event not yet applied (the tail a lossy
    /// transport may never re-signal). Call at end of stream.
    pub fn flush(&mut self, log: &EventLog) -> TickReport {
        let all: BTreeSet<u64> = (self.next_seq..log.len()).collect();
        self.advance(log, log.len(), 0, &all, None)
    }

    /// Core tick: apply canonical events `next_seq..target`, coalesce,
    /// react under the deadline budget (or under `forced`, during
    /// journal replay).
    fn advance(
        &mut self,
        log: &EventLog,
        target: u64,
        duplicates: usize,
        delivered: &BTreeSet<u64>,
        forced: Option<&TickRecord>,
    ) -> TickReport {
        self.tick += 1;
        let start = self.obs.as_ref().map(|o| o.now_ns());
        let span = self.obs.as_ref().map(|o| o.span("service.tick"));

        // 1. Canonical ingest: strictly in order, gaps filled from the
        // log. The applied stream is independent of delivery order.
        let mut net = NetChange::default();
        let mut applied = 0usize;
        while self.next_seq < target {
            let seq = self.next_seq;
            let ev = log.get(seq).expect("target beyond log").clone();
            if !delivered.contains(&seq) {
                self.stats.gap_fills += 1;
            }
            self.coalesce(&mut net, ev);
            self.next_seq += 1;
            applied += 1;
        }
        self.stats.events_applied += applied as u64;
        self.stats.duplicates_ignored += duplicates as u64;

        // 2. Commit cheap state: demands, cut set, drift accumulation
        // (drift past the threshold escalates to a cut; a repair clears
        // the fiber's accumulated drift — new fiber, new baseline).
        let mut demand_changed = false;
        for (&link, &gbps) in &net.demand {
            if self.ip.link(link).demand_gbps != gbps {
                self.ip.set_demand(link, gbps);
                self.model.change_demand(link, gbps);
                self.stats.warm_mutations += 1;
                demand_changed = true;
            }
        }
        for (fiber, delta) in &net.drift {
            let d = self.drift_db.entry(*fiber).or_insert(0.0);
            *d += *delta;
            if d.abs() >= self.svc.drift_cut_db {
                net.cuts_added.insert(*fiber);
            }
        }
        let cuts_before = self.active_cuts.clone();
        for f in &net.cuts_removed {
            self.active_cuts.remove(f);
            self.drift_db.remove(f);
        }
        self.active_cuts.extend(net.cuts_added.iter().copied());
        let cuts_changed = self.active_cuts != cuts_before;
        if demand_changed {
            self.demand_dirty = true;
            self.fallback_dirty = true;
        }

        // 3. React under the ladder. During replay `forced` pins the
        // journaled decisions; live, the budget decides.
        let (mut demand_level, mut restore_level, mut rebuilt) = match forced {
            Some(rec) => (rec.demand_level, rec.restore_level, rec.rebuilt),
            None => (self.start_level, self.start_level, false),
        };
        let mut affected = 0u64;
        let mut restored = 0u64;
        let mut added_columns = 0usize;

        // 3a. Planning re-solve (demand churn). Deferred — not dropped —
        // when the tick starts degraded. A journaled rebuild always
        // replays, even when the journaled tick then degraded.
        if forced.is_some() && rebuilt {
            self.rebuild();
        }
        if self.demand_dirty {
            if forced.is_none() {
                demand_level = self.escalate(demand_level, start);
                if demand_level == LADDER_WARM && self.should_rebuild() {
                    rebuilt = true;
                    self.rebuild();
                }
            }
            if demand_level == LADDER_WARM {
                match self.solve_planning() {
                    Some(p) => {
                        self.baseline = p;
                        self.demand_dirty = false;
                    }
                    None if forced.is_none() && !rebuilt => {
                        // Solver error / infeasible: self-heal with one
                        // rebuild, then degrade (the heuristic baseline
                        // absorbs the demand change on a later tick).
                        rebuilt = true;
                        self.rebuild();
                        if let Some(p) = self.solve_planning() {
                            self.baseline = p;
                            self.demand_dirty = false;
                        } else {
                            demand_level = LADDER_HEURISTIC;
                        }
                    }
                    None => demand_level = LADDER_HEURISTIC,
                }
            }
        } else if forced.is_none() {
            demand_level = LADDER_WARM;
        }

        // 3b. Fallback refresh: the lower rungs must track demand churn
        // or they go stale. Heuristic-fast; skipped only by a fully
        // degraded tick (and caught up on the next healthier one). The
        // condition reads only `demand_level`, which is journaled — so
        // replay refreshes on exactly the same ticks live did.
        if self.fallback_dirty && demand_level < LADDER_PROTECT {
            self.heuristic_plan = plan(self.scheme, self.optical, &self.ip, &self.cfg);
            self.protected = plan_protected(self.scheme, self.optical, &self.ip, &self.cfg);
            self.fallback_dirty = false;
        }

        // 3c. Restoration reaction: whenever the cut set changed, or a
        // degraded tick left restoration behind baseline (demand_dirty
        // cleared at level 0 re-derives restoration against the new
        // optimum too).
        let need_restore = cuts_changed || (!self.active_cuts.is_empty() && applied > 0);
        if need_restore {
            if self.active_cuts.is_empty() {
                // All repaired: restoration retires, baseline resumes.
                self.live_restoration.clear();
                self.protection_active = false;
            } else {
                if forced.is_none() {
                    restore_level = self.escalate(restore_level, start);
                }
                self.scenario_counter += 1;
                let scenario = FailureScenario {
                    id: self.scenario_counter,
                    cuts: self.active_cuts.iter().copied().collect(),
                    probability: 1.0,
                };
                if restore_level == LADDER_WARM {
                    match self.solve_restoration(&scenario) {
                        Some(r) => {
                            affected = r.affected_gbps;
                            restored = r.restored_gbps;
                            added_columns = r.added_columns;
                            self.live_restoration = r.wavelengths;
                            self.protection_active = false;
                        }
                        None => {
                            // Solver failure mid-incident: drop a rung.
                            restore_level = LADDER_HEURISTIC;
                        }
                    }
                }
                if restore_level == LADDER_HEURISTIC && forced.is_none() {
                    restore_level = self.escalate(restore_level, start);
                }
                if restore_level == LADDER_HEURISTIC {
                    let r = restore(
                        &self.heuristic_plan,
                        self.optical,
                        &self.ip,
                        &scenario,
                        &vec![0u32; self.ip.num_links()],
                        &self.cfg,
                    );
                    affected = r.affected_gbps;
                    restored = r.restored_gbps;
                    self.live_restoration =
                        r.restored.into_iter().map(|rw| rw.wavelength).collect();
                    self.protection_active = false;
                } else if restore_level == LADDER_PROTECT {
                    // Zero computation: the 1+1 protection copies are
                    // already lit; capacity is whatever they carry.
                    self.live_restoration.clear();
                    self.protection_active = true;
                    if let Some(obs) = &self.obs {
                        let cap = self.protected.capability_under(&self.ip, &scenario);
                        obs.registry().gauge("churn_protection_capability").set(cap);
                    }
                }
            }
        }

        // 4. Deadline accounting + journal + metrics. Replay takes the
        // blown bit from the journal instead of a clock.
        let elapsed = start
            .map(|s| {
                self.obs
                    .as_ref()
                    .map_or(0, |o| o.now_ns().saturating_sub(s))
            })
            .unwrap_or(0);
        let deadline_blown = match forced {
            Some(rec) => rec.deadline_blown,
            None => elapsed > self.svc.tick_budget_ns,
        };
        if deadline_blown {
            self.stats.deadline_blown += 1;
            // Backpressure: the next tick starts one rung down.
            self.start_level = (demand_level.max(restore_level) + 1).min(LADDER_PROTECT);
        } else {
            self.start_level = LADDER_WARM;
        }
        self.stats.level_ticks[restore_level as usize] += 1;
        if rebuilt {
            self.stats.rebuilds += 1;
        }
        self.journal.push(TickRecord {
            tick: self.tick,
            upto_seq: self.next_seq,
            demand_level,
            restore_level,
            rebuilt,
            deadline_blown,
        });
        if let Some(obs) = &self.obs {
            let reg = obs.registry();
            reg.counter("churn_events_applied_total")
                .add(applied as u64);
            reg.counter("churn_duplicates_total").add(duplicates as u64);
            let level = restore_level.to_string();
            reg.counter_with("churn_ticks_total", &[("level", &level)])
                .inc();
            reg.gauge("churn_ladder_level")
                .set(f64::from(demand_level.max(restore_level)));
            if deadline_blown {
                reg.counter("churn_deadline_blown_total").inc();
            }
            if rebuilt {
                reg.counter("service_rebuilds_total").inc();
            }
            reg.histogram("churn_reaction_seconds", LATENCY_SECONDS_BUCKETS)
                .observe(elapsed as f64 / 1e9);
            if let Some(s) = &span {
                s.field("applied", applied);
                s.field("restore_level", u64::from(restore_level));
                s.field("restored_gbps", restored);
            }
        }
        TickReport {
            tick: self.tick,
            applied,
            duplicates,
            demand_level,
            restore_level,
            deadline_blown,
            rebuilt,
            affected_gbps: affected,
            restored_gbps: restored,
            added_columns,
            reaction_ns: elapsed,
        }
    }

    /// Budget check between ladder steps: elapsed past the budget drops
    /// one rung (never interrupting a step in flight).
    fn escalate(&self, level: u8, start: Option<u64>) -> u8 {
        let (Some(obs), Some(start)) = (&self.obs, start) else {
            return level;
        };
        if obs.now_ns().saturating_sub(start) > self.svc.tick_budget_ns {
            (level + 1).min(LADDER_PROTECT)
        } else {
            level
        }
    }

    /// Whether generated columns bloated the model past the compaction
    /// threshold.
    fn should_rebuild(&self) -> bool {
        self.generated_columns as f64 > self.svc.rebuild_column_factor * self.base_columns as f64
    }

    /// Rebuilds the standing model from scratch over the current
    /// topology and demands (compaction / self-heal).
    fn rebuild(&mut self) {
        self.model = PlanModel::build_restorable(self.scheme, self.optical, &self.ip, &self.cfg);
        self.base_columns = self.model.space().gammas().len();
        self.generated_columns = 0;
        self.demand_dirty = true;
    }

    fn solve_planning(&mut self) -> Option<ExactPlan> {
        let p = self.model.solve(&self.svc.solve)?;
        if let Some(obs) = &self.obs {
            record_solver_stats(obs.registry(), &p.stats);
        }
        self.stats.warm_mutations += 1;
        Some(p)
    }

    fn solve_restoration(
        &mut self,
        scenario: &FailureScenario,
    ) -> Option<flexwan_core::planning::MutatedRestoration> {
        let r = self
            .model
            .restore_after_cut(self.optical, scenario, &[], &self.svc.solve)?;
        self.generated_columns += r.added_columns;
        if let Some(obs) = &self.obs {
            record_solver_stats(obs.registry(), &r.stats);
        }
        self.stats.warm_mutations += 1;
        Some(r)
    }

    fn coalesce(&self, net: &mut NetChange, ev: ChurnEvent) {
        match ev {
            ChurnEvent::FiberCut(f) => {
                net.cuts_removed.remove(&f);
                net.cuts_added.insert(f);
            }
            ChurnEvent::FiberRepair(f) => {
                net.cuts_added.remove(&f);
                net.cuts_removed.insert(f);
            }
            ChurnEvent::DemandDelta { link, demand_gbps } => {
                net.demand.insert(link, demand_gbps);
            }
            ChurnEvent::TelemetryDrift { fiber, delta_db } => {
                net.drift.push((fiber, delta_db));
            }
            ChurnEvent::SimultaneousCuts(fibers) => {
                for f in fibers {
                    net.cuts_removed.remove(&f);
                    net.cuts_added.insert(f);
                }
            }
        }
    }

    /// Reconstructs a service by rolling the journal forward over the
    /// canonical log: each journaled tick re-executes at its recorded
    /// ladder levels (no clock, no budget measurement). The result is
    /// bit-for-bit the live service's state.
    pub fn replay(
        optical: &'a Graph,
        ip: &IpTopology,
        scheme: Scheme,
        cfg: PlannerConfig,
        svc: ServiceConfig,
        log: &EventLog,
        journal: &[TickRecord],
    ) -> Option<Self> {
        let mut s = ChurnService::new(optical, ip, scheme, cfg, svc)?;
        for rec in journal {
            let delivered: BTreeSet<u64> = (s.next_seq..rec.upto_seq).collect();
            s.advance(log, rec.upto_seq, 0, &delivered, Some(rec));
        }
        Some(s)
    }

    /// The SLO summary (reaction-time quantiles and ladder distribution)
    /// as pretty JSON. Requires an armed observability bundle for the
    /// quantiles; without one they are reported as 0.
    pub fn slo_json(&self) -> String {
        let (p50, p99) = self
            .obs
            .as_ref()
            .map(|o| {
                let h = o
                    .registry()
                    .histogram("churn_reaction_seconds", LATENCY_SECONDS_BUCKETS);
                (h.quantile(0.5), h.quantile(0.99))
            })
            .unwrap_or((0.0, 0.0));
        let v = Value::obj([
            ("reaction_p50_seconds", p50.to_json()),
            ("reaction_p99_seconds", p99.to_json()),
            ("ticks_level0", self.stats.level_ticks[0].to_json()),
            ("ticks_level1", self.stats.level_ticks[1].to_json()),
            ("ticks_level2", self.stats.level_ticks[2].to_json()),
            ("deadline_blown", self.stats.deadline_blown.to_json()),
            ("rebuilds", self.stats.rebuilds.to_json()),
        ]);
        json::to_string_pretty(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::SpectrumGrid;

    fn world() -> (Graph, IpTopology, PlannerConfig) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(64),
            k_paths: 2,
            ..Default::default()
        };
        (g, ip, cfg)
    }

    #[test]
    fn quiet_stream_is_stable() {
        let (g, ip, cfg) = world();
        let mut svc =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log = EventLog::new();
        let before = svc.state();
        let ev = log.append(ChurnEvent::TelemetryDrift {
            fiber: EdgeId(0),
            delta_db: -0.5,
        });
        let rep = svc.deliver(&log, &[ev]);
        assert_eq!(rep.applied, 1);
        assert_eq!(rep.restore_level, LADDER_WARM);
        let after = svc.state();
        assert_eq!(after.baseline, before.baseline);
        assert!(after.restoration.is_empty());
    }

    #[test]
    fn cut_then_repair_round_trips() {
        let (g, ip, cfg) = world();
        let mut svc =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log = EventLog::new();
        let cut_edge = EdgeId(0); // a-b: carries the planned wavelength
        let ev = log.append(ChurnEvent::FiberCut(cut_edge));
        let rep = svc.deliver(&log, &[ev]);
        assert_eq!(rep.restored_gbps, rep.affected_gbps);
        assert!(rep.restored_gbps > 0);
        assert!(!svc.live_restoration().is_empty());
        let ev = log.append(ChurnEvent::FiberRepair(cut_edge));
        let rep = svc.deliver(&log, &[ev]);
        assert_eq!(rep.restored_gbps, 0);
        assert!(svc.live_restoration().is_empty());
        assert!(svc.active_cuts().is_empty());
    }

    #[test]
    fn demand_delta_warm_resolves() {
        let (g, ip, cfg) = world();
        let mut svc = ChurnService::new(
            &g,
            &ip,
            Scheme::FlexWan,
            cfg.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        let mut log = EventLog::new();
        let ev = log.append(ChurnEvent::DemandDelta {
            link: IpLinkId(0),
            demand_gbps: 500,
        });
        let rep = svc.deliver(&log, &[ev]);
        assert_eq!(rep.demand_level, LADDER_WARM);
        let carried: u64 = svc
            .baseline()
            .wavelengths
            .iter()
            .map(|w| u64::from(w.format.data_rate_gbps))
            .sum();
        assert!(carried >= 500, "carried {carried}");
        // Matches a from-scratch build at the new demand, bit-for-bit.
        let mut ip2 = ip.clone();
        ip2.set_demand(IpLinkId(0), 500);
        let fresh = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip2, &cfg)
            .solve(&SolveOptions::default())
            .unwrap();
        assert_eq!(
            svc.baseline().objective.to_bits(),
            fresh.objective.to_bits()
        );
    }

    #[test]
    fn perturbed_delivery_converges_to_canonical() {
        let (g, ip, cfg) = world();
        let mut live = ChurnService::new(
            &g,
            &ip,
            Scheme::FlexWan,
            cfg.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        let mut clean =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log = EventLog::new();
        let e0 = log.append(ChurnEvent::FiberCut(EdgeId(0)));
        let e1 = log.append(ChurnEvent::DemandDelta {
            link: IpLinkId(0),
            demand_gbps: 400,
        });
        let e2 = log.append(ChurnEvent::FiberRepair(EdgeId(0)));
        // Clean service sees the canonical order in one batch each.
        for ev in [e0.clone(), e1.clone(), e2.clone()] {
            clean.deliver(&log, &[ev]);
        }
        // Live service sees chaos: e1 delivered first (gap-fills e0),
        // e0 again (stale), e2 twice.
        live.deliver(&log, std::slice::from_ref(&e1));
        live.deliver(&log, std::slice::from_ref(&e0));
        live.deliver(&log, &[e2.clone(), e2.clone()]);
        assert!(live.stats().gap_fills > 0);
        assert!(live.stats().duplicates_ignored > 0);
        let a = live.state();
        let b = clean.state();
        // Tick counts differ (different batching); the controlled state
        // must not.
        assert_eq!(a.demands, b.demands);
        assert_eq!(a.active_cuts, b.active_cuts);
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.restoration, b.restoration);
        assert_eq!(a.next_seq, b.next_seq);
    }

    #[test]
    fn drift_escalates_to_cut_past_threshold() {
        let (g, ip, cfg) = world();
        let mut svc =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log = EventLog::new();
        for _ in 0..3 {
            let ev = log.append(ChurnEvent::TelemetryDrift {
                fiber: EdgeId(0),
                delta_db: -6.0,
            });
            let rep = svc.deliver(&log, &[ev]);
            assert_eq!(rep.restored_gbps, 0, "below threshold: monitor only");
        }
        // Cumulative −24 dB ≥ 20 dB: the fiber is treated as cut.
        let ev = log.append(ChurnEvent::TelemetryDrift {
            fiber: EdgeId(0),
            delta_db: -6.0,
        });
        let rep = svc.deliver(&log, &[ev]);
        assert!(rep.restored_gbps > 0, "drift escalated to a cut");
        assert!(svc.active_cuts().contains(&EdgeId(0)));
    }

    #[test]
    fn replay_matches_live_bit_for_bit() {
        let (g, ip, cfg) = world();
        let svc_cfg = ServiceConfig::default();
        let mut live =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg.clone(), svc_cfg.clone()).unwrap();
        let mut log = EventLog::new();
        let events = [
            ChurnEvent::FiberCut(EdgeId(0)),
            ChurnEvent::DemandDelta {
                link: IpLinkId(0),
                demand_gbps: 500,
            },
            ChurnEvent::FiberCut(EdgeId(1)),
            ChurnEvent::FiberRepair(EdgeId(0)),
            ChurnEvent::TelemetryDrift {
                fiber: EdgeId(2),
                delta_db: -3.0,
            },
            ChurnEvent::FiberRepair(EdgeId(1)),
        ];
        for e in events {
            let ev = log.append(e);
            live.deliver(&log, &[ev]);
        }
        let replayed =
            ChurnService::replay(&g, &ip, Scheme::FlexWan, cfg, svc_cfg, &log, live.journal())
                .unwrap();
        assert_eq!(live.state(), replayed.state());
        assert_eq!(
            live.state().canonical_json(),
            replayed.state().canonical_json()
        );
    }

    #[test]
    fn solver_failure_degrades_to_heuristic() {
        let (g, ip, cfg) = world();
        let mut svc_cfg = ServiceConfig::default();
        let mut svc = ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, svc_cfg.clone()).unwrap();
        // Wedge the MIP: no branch & bound nodes allowed → no incumbent.
        svc_cfg.solve.max_nodes = 0;
        svc.svc = svc_cfg;
        let mut log = EventLog::new();
        let ev = log.append(ChurnEvent::FiberCut(EdgeId(0)));
        let rep = svc.deliver(&log, &[ev]);
        assert_eq!(rep.restore_level, LADDER_HEURISTIC);
        assert!(
            rep.restored_gbps > 0,
            "heuristic rung still revives capacity"
        );
        assert_eq!(svc.stats().level_ticks[LADDER_HEURISTIC as usize], 1);
    }

    #[test]
    fn flush_applies_dropped_tail() {
        let (g, ip, cfg) = world();
        let mut svc =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log = EventLog::new();
        log.append(ChurnEvent::FiberCut(EdgeId(0)));
        log.append(ChurnEvent::DemandDelta {
            link: IpLinkId(0),
            demand_gbps: 400,
        });
        // Both deliveries dropped; flush catches the service up.
        let rep = svc.flush(&log);
        assert_eq!(rep.applied, 2);
        assert_eq!(svc.state().demands, vec![400]);
        assert!(svc.active_cuts().contains(&EdgeId(0)));
        assert!(!svc.live_restoration().is_empty());
    }

    #[test]
    fn simultaneous_cuts_match_individual_cuts_in_one_batch() {
        let (g, ip, cfg) = world();
        let mut multi = ChurnService::new(
            &g,
            &ip,
            Scheme::FlexWan,
            cfg.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        let mut log_multi = EventLog::new();
        let ev = log_multi.append(ChurnEvent::SimultaneousCuts(vec![EdgeId(0), EdgeId(2)]));
        let rep_multi = multi.deliver(&log_multi, &[ev]);

        let mut single =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log_single = EventLog::new();
        let e0 = log_single.append(ChurnEvent::FiberCut(EdgeId(0)));
        let e1 = log_single.append(ChurnEvent::FiberCut(EdgeId(2)));
        let rep_single = single.deliver(&log_single, &[e0, e1]);

        assert_eq!(multi.active_cuts(), single.active_cuts());
        assert_eq!(rep_multi.restored_gbps, rep_single.restored_gbps);
        assert_eq!(rep_multi.restore_level, rep_single.restore_level);
        // Same state modulo the log position (one event vs two).
        assert_eq!(multi.live_restoration(), single.live_restoration());
        assert_eq!(multi.state().demands, single.state().demands);
    }

    #[test]
    fn same_tick_cut_and_repair_cancel() {
        let (g, ip, cfg) = world();
        let mut svc =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log = EventLog::new();
        let e0 = log.append(ChurnEvent::FiberCut(EdgeId(0)));
        let e1 = log.append(ChurnEvent::FiberRepair(EdgeId(0)));
        let rep = svc.deliver(&log, &[e0, e1]);
        assert_eq!(rep.applied, 2);
        assert!(svc.active_cuts().is_empty());
        assert!(svc.live_restoration().is_empty());
    }

    #[test]
    fn ignores_events_for_unknown_targets_gracefully() {
        // A drift event for the highest fiber id and a demand event for
        // the only link: the service stays healthy (no panics on edges
        // that carry nothing).
        let (g, ip, cfg) = world();
        let mut svc =
            ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
        let mut log = EventLog::new();
        let ev = log.append(ChurnEvent::FiberCut(EdgeId(2))); // carries nothing
        let rep = svc.deliver(&log, &[ev]);
        assert_eq!(rep.affected_gbps, 0);
        assert_eq!(rep.restored_gbps, 0);
    }
}
