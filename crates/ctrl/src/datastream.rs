//! The data-stream module (§4.4): one-second-granularity optical telemetry
//! and real-time fiber-cut detection.
//!
//! "The transmitted and received power of two terminal devices at each end
//! of a fiber cable could be used to identify the status of the fiber
//! cable" — [`TelemetryStore`] keeps a bounded window of per-fiber receive
//! power; [`FiberCutDetector`] flags fibers whose power fell off a cliff.

use std::collections::HashMap;

use flexwan_obs::Obs;
use flexwan_topo::graph::{EdgeId, Graph};

/// One telemetry sample: receive power measured at a fiber's far end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// The fiber measured.
    pub fiber: EdgeId,
    /// Collection tick (1 s granularity).
    pub tick: u64,
    /// Received power, dBm.
    pub rx_power_dbm: f64,
}

/// Bounded in-memory time-series store (the Kalfa-system stand-in).
#[derive(Debug, Clone)]
pub struct TelemetryStore {
    window: usize,
    series: HashMap<EdgeId, Vec<(u64, f64)>>,
    max_tick: u64,
    stale_dropped: u64,
    obs: Option<Obs>,
}

impl TelemetryStore {
    /// A store keeping the last `window` samples per fiber.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "detection needs at least two samples");
        TelemetryStore {
            window,
            series: HashMap::new(),
            max_tick: 0,
            stale_dropped: 0,
            obs: None,
        }
    }

    /// Arms the store with an observability bundle: ingested samples are
    /// counted and the per-sample stream lag (ticks behind the newest
    /// sample seen) is published as a gauge.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Ingests one sample. The transport re-delivers, reorders, and delays
    /// (see `FaultInjector::perturb_stream`), so the store is the point of
    /// idempotence: a sample at or before the fiber's newest retained tick
    /// is a duplicate or stale re-delivery and is dropped (counted, never
    /// asserted on) rather than corrupting the time series the cut
    /// detector differentiates.
    pub fn ingest(&mut self, s: TelemetrySample) {
        self.max_tick = self.max_tick.max(s.tick);
        if let Some(obs) = &self.obs {
            let reg = obs.registry();
            reg.counter("telemetry_samples_total").inc();
            reg.gauge("telemetry_stream_lag_ticks")
                .set((self.max_tick - s.tick) as f64);
        }
        let v = self.series.entry(s.fiber).or_default();
        if v.last().is_some_and(|&(t, _)| s.tick <= t) {
            self.stale_dropped += 1;
            if let Some(obs) = &self.obs {
                obs.registry()
                    .counter("telemetry_stale_dropped_total")
                    .inc();
            }
            return;
        }
        v.push((s.tick, s.rx_power_dbm));
        if v.len() > self.window {
            v.remove(0);
        }
    }

    /// How many duplicate/out-of-order samples were dropped at ingest.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// The most recent (tick, power) for `fiber`.
    pub fn latest(&self, fiber: EdgeId) -> Option<(u64, f64)> {
        self.series.get(&fiber).and_then(|v| v.last().copied())
    }

    /// The sample immediately before the latest.
    pub fn previous(&self, fiber: EdgeId) -> Option<(u64, f64)> {
        self.series
            .get(&fiber)
            .and_then(|v| v.len().checked_sub(2).map(|i| v[i]))
    }

    /// Fibers with any data.
    pub fn fibers(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.series.keys().copied()
    }
}

/// Threshold-rule fiber-cut detector.
#[derive(Debug, Clone)]
pub struct FiberCutDetector {
    /// A drop of at least this many dB between consecutive samples flags a
    /// cut.
    pub drop_threshold_db: f64,
    /// Any power below this floor flags a cut regardless of history (a
    /// fiber cut leaves only receiver noise).
    pub floor_dbm: f64,
}

impl Default for FiberCutDetector {
    fn default() -> Self {
        FiberCutDetector {
            drop_threshold_db: 20.0,
            floor_dbm: -40.0,
        }
    }
}

impl FiberCutDetector {
    /// Whether `fiber` currently looks cut.
    pub fn is_cut(&self, store: &TelemetryStore, fiber: EdgeId) -> bool {
        let Some((_, now)) = store.latest(fiber) else {
            return false;
        };
        if now < self.floor_dbm {
            return true;
        }
        match store.previous(fiber) {
            Some((_, before)) => before - now >= self.drop_threshold_db,
            None => false,
        }
    }

    /// All fibers currently flagged.
    pub fn scan(&self, store: &TelemetryStore) -> Vec<EdgeId> {
        let mut cut: Vec<EdgeId> = store.fibers().filter(|&f| self.is_cut(store, f)).collect();
        cut.sort();
        cut
    }
}

/// Deterministic telemetry generator for a fiber plant: healthy fibers
/// report launch power minus span-engineered net loss (≈ −3 dBm at the
/// receive amplifier) with a small tick-dependent ripple; cut fibers
/// report receiver noise floor.
#[derive(Debug, Clone)]
pub struct TelemetrySim<'a> {
    optical: &'a Graph,
}

impl<'a> TelemetrySim<'a> {
    /// A simulator over the fiber plant.
    pub fn new(optical: &'a Graph) -> Self {
        TelemetrySim { optical }
    }

    /// Healthy receive power for `fiber` at `tick` (deterministic ±0.3 dB
    /// ripple from polarization/temperature drift).
    pub fn healthy_power(&self, fiber: EdgeId, tick: u64) -> f64 {
        let ripple =
            0.3 * (((tick.wrapping_mul(2654435761) ^ u64::from(fiber.0)) % 7) as f64 / 3.0 - 1.0);
        -3.0 + ripple
    }

    /// Emits one tick of samples into `store`; fibers in `cuts` report the
    /// noise floor.
    pub fn tick(&self, store: &mut TelemetryStore, tick: u64, cuts: &[EdgeId]) {
        for e in self.optical.edges() {
            let power = if cuts.contains(&e.id) {
                -60.0
            } else {
                self.healthy_power(e.id, tick)
            };
            store.ingest(TelemetrySample {
                fiber: e.id,
                tick,
                rx_power_dbm: power,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plant() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 300);
        g.add_edge(b, c, 400);
        g
    }

    #[test]
    fn healthy_plant_raises_no_alarms() {
        let g = plant();
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(60);
        for t in 0..30 {
            sim.tick(&mut store, t, &[]);
        }
        assert!(FiberCutDetector::default().scan(&store).is_empty());
    }

    #[test]
    fn cut_detected_on_the_tick_it_happens() {
        let g = plant();
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(60);
        let det = FiberCutDetector::default();
        for t in 0..10 {
            sim.tick(&mut store, t, &[]);
        }
        assert!(det.scan(&store).is_empty());
        sim.tick(&mut store, 10, &[EdgeId(1)]);
        assert_eq!(det.scan(&store), vec![EdgeId(1)]);
        assert!(!det.is_cut(&store, EdgeId(0)));
    }

    #[test]
    fn ripple_does_not_false_positive() {
        let g = plant();
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(10);
        let det = FiberCutDetector::default();
        for t in 0..500 {
            sim.tick(&mut store, t, &[]);
            assert!(det.scan(&store).is_empty(), "false positive at tick {t}");
        }
    }

    #[test]
    fn window_is_bounded() {
        let g = plant();
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(5);
        for t in 0..100 {
            sim.tick(&mut store, t, &[]);
        }
        assert_eq!(store.latest(EdgeId(0)).unwrap().0, 99);
        // Oldest retained tick is 95 (window 5).
        assert_eq!(store.previous(EdgeId(0)).unwrap().0, 98);
    }

    #[test]
    fn cut_stays_flagged_via_floor() {
        // After the drop tick, power stays at the floor: the floor rule
        // keeps the fiber flagged (detection is stateless but sustained).
        let g = plant();
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(60);
        let det = FiberCutDetector::default();
        sim.tick(&mut store, 0, &[]);
        for t in 1..5 {
            sim.tick(&mut store, t, &[EdgeId(0)]);
            assert!(det.is_cut(&store, EdgeId(0)), "tick {t}");
        }
    }

    #[test]
    fn stale_and_duplicate_samples_are_dropped_not_asserted() {
        let mut store = TelemetryStore::new(10);
        let sample = |tick, power| TelemetrySample {
            fiber: EdgeId(0),
            tick,
            rx_power_dbm: power,
        };
        store.ingest(sample(5, -3.0));
        store.ingest(sample(6, -3.0));
        store.ingest(sample(6, -60.0)); // duplicate tick, conflicting value
        store.ingest(sample(2, -60.0)); // stale re-delivery
        assert_eq!(store.stale_dropped(), 2);
        assert_eq!(store.latest(EdgeId(0)), Some((6, -3.0)));
        assert_eq!(store.previous(EdgeId(0)), Some((5, -3.0)));
        assert!(!FiberCutDetector::default().is_cut(&store, EdgeId(0)));
    }

    #[test]
    fn recovery_clears_flag() {
        let g = plant();
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(60);
        let det = FiberCutDetector::default();
        sim.tick(&mut store, 0, &[]);
        sim.tick(&mut store, 1, &[EdgeId(0)]);
        assert!(det.is_cut(&store, EdgeId(0)));
        sim.tick(&mut store, 2, &[]);
        assert!(!det.is_cut(&store, EdgeId(0)), "repaired fiber must clear");
    }
}
