//! Centralized, vendor-agnostic optical controller (§4.3–§4.4).
//!
//! * [`model`] — the standard device model abstracting heterogeneous
//!   vendor hardware into logic components;
//! * [`config`] — standard configuration documents (the YANG-file
//!   stand-in; see DESIGN.md §1);
//! * [`vendor`] — lossless adapters to three distinct vendor dialects;
//! * [`netconf`] — the edit-config/get-state session layer;
//! * [`device`] — simulated device actors (one thread each) that validate
//!   configuration against their hardware models;
//! * [`controller`] — global manager + DevMgr: pushes a plan to the
//!   device plane and audits end-to-end channel consistency;
//! * [`issues`] — the spectrum-issue finders and the uncoordinated
//!   multi-vendor counterfactual (Figure 5);
//! * [`datastream`] — 1 s telemetry and real-time fiber-cut detection;
//! * [`orchestrator`] — the closed telemetry→detection→restoration→
//!   configuration loop;
//! * [`transaction`] — atomic multi-device configuration with rollback;
//! * [`recovery`] — zero-touch misconnection recovery and the OLS
//!   evolution cost model (§9);
//! * [`ha`] — geo-replicated controller failover (§4.4 fault tolerance);
//! * [`faults`] — the deterministic fault-injection harness (session,
//!   cluster, physical-plant, and event-stream faults) driving the
//!   chaos tests;
//! * [`service`] — the always-on churn service: a deadline-budgeted
//!   event loop with a graceful-degradation ladder over the standing
//!   incremental planning model (DESIGN.md §10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controller;
pub mod datastream;
pub mod device;
pub mod faults;
pub mod ha;
pub mod issues;
pub mod journal;
pub mod model;
pub mod netconf;
pub mod orchestrator;
pub mod recovery;
pub mod service;
pub mod transaction;
pub mod vendor;

pub use config::{ConfigDocument, StandardConfig};
pub use controller::{
    ApplyReport, BreakerState, Controller, ConvergeReport, CtrlStats, DevMgr, RetryPolicy,
};
pub use datastream::{FiberCutDetector, TelemetrySim, TelemetryStore};
pub use device::{config_in_effect, spawn_device, DeviceHandle, DeviceState, Hardware};
pub use faults::{
    physical_scenario, ClusterFaultSchedule, DeviceFaults, FaultInjector, FaultPlan, FaultStats,
    PhysicalFault,
};
pub use ha::{ControllerCluster, Replica};
pub use issues::{find_conflicts, find_inconsistencies, SpectrumIssue};
pub use journal::{ConfigJournal, JournalEntry};
pub use model::{DeviceDescriptor, DeviceId, DeviceKind, Vendor};
pub use netconf::{NetconfSession, SessionError};
pub use orchestrator::{Orchestrator, TickOutcome};
pub use recovery::{recover_misconnection, recover_misconnection_observed, RecoveryOutcome};
pub use service::{
    ChurnEvent, ChurnService, EventLog, SeqEvent, ServiceConfig, ServiceState, ServiceStats,
    TickRecord, TickReport, LADDER_HEURISTIC, LADDER_PROTECT, LADDER_WARM,
};
pub use transaction::{Transaction, TxError};
