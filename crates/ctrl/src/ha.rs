//! Controller fault tolerance (§4.4, §9 "system reliability").
//!
//! The controller "is deployed in the cloud with multiple copies …
//! deployed in multiple geo-disjoint areas". [`ControllerCluster`] models
//! that: N replicas, a primary elected as the lowest-id healthy replica,
//! heartbeat-driven failover, and operation replication so a promoted
//! backup carries the full configuration history.

/// A geo-disjoint controller replica.
#[derive(Debug, Clone)]
pub struct Replica {
    /// Replica index (election order).
    pub id: usize,
    /// Deployment region label.
    pub region: String,
    healthy: bool,
    /// Replicated operation log (configuration revisions).
    log: Vec<u64>,
    missed_heartbeats: u32,
}

/// Heartbeats a replica may miss before it is declared failed.
pub const HEARTBEAT_TOLERANCE: u32 = 3;

/// A replicated controller cluster.
#[derive(Debug, Clone)]
pub struct ControllerCluster {
    replicas: Vec<Replica>,
    next_revision: u64,
}

/// Cluster errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Every replica is down — the control plane is lost.
    NoHealthyReplica,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no healthy controller replica")
    }
}

impl std::error::Error for ClusterError {}

impl ControllerCluster {
    /// A cluster with one replica per region.
    pub fn new(regions: &[&str]) -> Self {
        assert!(!regions.is_empty());
        let replicas = regions
            .iter()
            .enumerate()
            .map(|(id, r)| Replica {
                id,
                region: (*r).to_string(),
                healthy: true,
                log: Vec::new(),
                missed_heartbeats: 0,
            })
            .collect();
        ControllerCluster {
            replicas,
            next_revision: 0,
        }
    }

    /// The current primary: the lowest-id healthy replica.
    pub fn primary(&self) -> Result<usize, ClusterError> {
        self.replicas
            .iter()
            .find(|r| r.healthy)
            .map(|r| r.id)
            .ok_or(ClusterError::NoHealthyReplica)
    }

    /// Submits a configuration operation: stamped by the primary,
    /// replicated to every healthy replica. Returns (primary id, revision).
    pub fn submit(&mut self) -> Result<(usize, u64), ClusterError> {
        let primary = self.primary()?;
        self.next_revision += 1;
        let rev = self.next_revision;
        for r in &mut self.replicas {
            if r.healthy {
                r.log.push(rev);
            }
        }
        Ok((primary, rev))
    }

    /// Records a heartbeat round: replicas in `responding` answered.
    /// Replicas missing [`HEARTBEAT_TOLERANCE`] consecutive rounds are
    /// marked failed; a responding replica that was failed rejoins (after
    /// catching up the log from the primary).
    pub fn heartbeat_round(&mut self, responding: &[usize]) {
        let full_log: Vec<u64> = self
            .replicas
            .iter()
            .filter(|r| r.healthy)
            .map(|r| r.log.clone())
            .max_by_key(Vec::len)
            .unwrap_or_default();
        for r in &mut self.replicas {
            if responding.contains(&r.id) {
                if !r.healthy {
                    // Rejoin: catch up from the longest healthy log.
                    r.log = full_log.clone();
                    r.healthy = true;
                }
                r.missed_heartbeats = 0;
            } else {
                r.missed_heartbeats += 1;
                if r.missed_heartbeats >= HEARTBEAT_TOLERANCE {
                    r.healthy = false;
                }
            }
        }
    }

    /// Runs the heartbeat of `round` under a scripted fault schedule
    /// ([`crate::faults::ClusterFaultSchedule`]): replicas silenced or
    /// partitioned in that round simply fail to respond.
    pub fn heartbeat_round_faulted(
        &mut self,
        round: usize,
        faults: &crate::faults::ClusterFaultSchedule,
    ) {
        let responding = faults.responding(round, self);
        self.heartbeat_round(&responding);
    }

    /// The replicas (for inspection).
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }
}

impl Replica {
    /// Whether the replica is currently healthy.
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// The replicated log length.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ControllerCluster {
        ControllerCluster::new(&["east", "west", "north"])
    }

    #[test]
    fn primary_is_lowest_healthy() {
        let mut c = cluster();
        assert_eq!(c.primary(), Ok(0));
        // Replica 0 stops answering.
        for _ in 0..HEARTBEAT_TOLERANCE {
            c.heartbeat_round(&[1, 2]);
        }
        assert_eq!(c.primary(), Ok(1));
    }

    #[test]
    fn operations_survive_failover() {
        let mut c = cluster();
        for _ in 0..5 {
            c.submit().unwrap();
        }
        for _ in 0..HEARTBEAT_TOLERANCE {
            c.heartbeat_round(&[1, 2]);
        }
        // New primary continues at the next revision with full history.
        let (primary, rev) = c.submit().unwrap();
        assert_eq!(primary, 1);
        assert_eq!(rev, 6);
        assert_eq!(c.replicas()[1].log_len(), 6);
    }

    #[test]
    fn tolerates_transient_misses() {
        let mut c = cluster();
        c.heartbeat_round(&[1, 2]);
        c.heartbeat_round(&[0, 1, 2]); // replica 0 came back in time
        assert_eq!(c.primary(), Ok(0));
    }

    #[test]
    fn rejoin_catches_up_log() {
        let mut c = cluster();
        for _ in 0..HEARTBEAT_TOLERANCE {
            c.heartbeat_round(&[1, 2]);
        }
        for _ in 0..4 {
            c.submit().unwrap();
        }
        assert_eq!(c.replicas()[0].log_len(), 0);
        c.heartbeat_round(&[0, 1, 2]); // replica 0 rejoins
        assert_eq!(c.replicas()[0].log_len(), 4, "rejoined replica caught up");
        assert_eq!(c.primary(), Ok(0));
    }

    #[test]
    fn total_outage_is_an_error() {
        let mut c = cluster();
        for _ in 0..HEARTBEAT_TOLERANCE {
            c.heartbeat_round(&[]);
        }
        assert_eq!(c.primary(), Err(ClusterError::NoHealthyReplica));
        assert!(c.submit().is_err());
    }
}
