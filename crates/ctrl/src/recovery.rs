//! Zero-touch misconnection recovery and smooth backbone evolution (§9).
//!
//! * **Misconnection**: a transponder physically wired to the wrong MUX
//!   filter port. On a legacy AWG/fixed-grid MUX each port passes one
//!   factory-bound grid slot, so the wavelength is clipped until a field
//!   tech re-cables it. On FlexWAN's spectrum-sliced MUX "the passband of
//!   each filter port … supports all spectrum frequencies": the controller
//!   simply retunes the mis-wired port — zero touch.
//! * **Evolution**: moving the fleet from 50 GHz-class to 75 GHz-class
//!   wavelengths requires replacing every fixed-grid OLS unit, but only a
//!   reconfiguration on a pixel-wise OLS.

use flexwan_obs::Obs;
use flexwan_optical::spectrum::{PixelRange, PixelWidth};
use flexwan_optical::WssKind;

/// Outcome of a misconnection-recovery attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// The controller retuned the mis-wired port; traffic flows.
    ZeroTouch {
        /// The port that was reconfigured.
        reconfigured_port: u16,
    },
    /// Software cannot fix it; an on-site manual operation is required.
    ManualIntervention {
        /// Why software recovery is impossible.
        reason: String,
    },
}

/// Attempts to recover from a misconnection: the transponder emitting
/// `channel` was wired to `actual_port` instead of its intended port.
///
/// On a fixed-grid MUX, port `p` is factory-bound to grid slot `p` (the
/// AWG's physical wavelength ladder); recovery succeeds only in the lucky
/// case where the channel happens to be exactly that slot. On a
/// pixel-wise MUX any port can be retuned to any passband.
pub fn recover_misconnection(
    wss: WssKind,
    actual_port: u16,
    channel: PixelRange,
) -> RecoveryOutcome {
    match wss {
        WssKind::PixelWise => RecoveryOutcome::ZeroTouch {
            reconfigured_port: actual_port,
        },
        WssKind::FixedGrid { spacing } => {
            let slot_start = u32::from(actual_port) * u32::from(spacing.pixels());
            if channel.start == slot_start && channel.width == spacing {
                RecoveryOutcome::ZeroTouch {
                    reconfigured_port: actual_port,
                }
            } else {
                RecoveryOutcome::ManualIntervention {
                    reason: format!(
                        "fixed-grid port {actual_port} is factory-bound to slot starting at pixel {slot_start}; channel {channel} requires re-cabling on site"
                    ),
                }
            }
        }
    }
}

/// [`recover_misconnection`] with the outcome recorded into `obs`:
/// zero-touch retunes and truck rolls are counted separately (per WSS
/// kind), quantifying the §9 operational claim.
pub fn recover_misconnection_observed(
    obs: &Obs,
    wss: WssKind,
    actual_port: u16,
    channel: PixelRange,
) -> RecoveryOutcome {
    let outcome = recover_misconnection(wss, actual_port, channel);
    let kind = match wss {
        WssKind::PixelWise => "pixel_wise",
        WssKind::FixedGrid { .. } => "fixed_grid",
    };
    let metric = match outcome {
        RecoveryOutcome::ZeroTouch { .. } => "recovery_zero_touch_total",
        RecoveryOutcome::ManualIntervention { .. } => "recovery_manual_total",
    };
    obs.registry().counter_with(metric, &[("wss", kind)]).inc();
    outcome
}

/// Whether an OLS with `wss` equipment can carry a wavelength of
/// `spacing` *without hardware replacement* (the §9 evolution question).
pub fn supports_spacing(wss: WssKind, spacing: PixelWidth) -> bool {
    match wss {
        WssKind::PixelWise => true,
        WssKind::FixedGrid { spacing: grid } => spacing == grid,
    }
}

/// The equipment-replacement bill for evolving an OLS of `num_devices`
/// fixed-grid units to carry `new_spacing` wavelengths: everything must be
/// swapped on a rigid grid, nothing on a pixel-wise OLS.
pub fn evolution_replacements(wss: WssKind, new_spacing: PixelWidth, num_devices: usize) -> usize {
    if supports_spacing(wss, new_spacing) {
        0
    } else {
        num_devices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(n: u16) -> PixelWidth {
        PixelWidth::new(n)
    }

    #[test]
    fn pixel_wise_recovery_is_always_zero_touch() {
        for (start, width) in [(0u32, 6u16), (3, 7), (17, 10)] {
            let out =
                recover_misconnection(WssKind::PixelWise, 9, PixelRange::new(start, px(width)));
            assert_eq!(
                out,
                RecoveryOutcome::ZeroTouch {
                    reconfigured_port: 9
                }
            );
        }
    }

    #[test]
    fn fixed_grid_misconnection_needs_truck_roll() {
        let wss = WssKind::FixedGrid { spacing: px(6) };
        // Channel sits in slot 2 but got wired to port 5.
        let out = recover_misconnection(wss, 5, PixelRange::new(12, px(6)));
        assert!(matches!(out, RecoveryOutcome::ManualIntervention { .. }));
        // Lucky case: wired to the port whose slot it occupies.
        let out = recover_misconnection(wss, 2, PixelRange::new(12, px(6)));
        assert!(matches!(out, RecoveryOutcome::ZeroTouch { .. }));
    }

    #[test]
    fn observed_recovery_counts_outcomes_per_wss_kind() {
        let obs = Obs::default();
        let ch = PixelRange::new(12, px(6));
        recover_misconnection_observed(&obs, WssKind::PixelWise, 9, ch);
        recover_misconnection_observed(&obs, WssKind::FixedGrid { spacing: px(6) }, 5, ch);
        let prom = obs.metrics_prometheus();
        assert!(
            prom.contains("recovery_zero_touch_total{wss=\"pixel_wise\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("recovery_manual_total{wss=\"fixed_grid\"} 1"),
            "{prom}"
        );
    }

    #[test]
    fn evolution_cost() {
        // Moving to 75 GHz channels: the 50 GHz fleet is fully replaced…
        let legacy = WssKind::FixedGrid { spacing: px(4) };
        assert_eq!(evolution_replacements(legacy, px(6), 120), 120);
        // …a 75 GHz fleet keeps working for 75 GHz only…
        let rigid75 = WssKind::FixedGrid { spacing: px(6) };
        assert_eq!(evolution_replacements(rigid75, px(6), 120), 0);
        assert_eq!(evolution_replacements(rigid75, px(8), 120), 120);
        // …and the spectrum-sliced OLS never needs replacement.
        assert_eq!(evolution_replacements(WssKind::PixelWise, px(12), 120), 0);
    }
}
