//! Thread-safe metrics: counters, gauges and fixed-bucket histograms.
//!
//! A [`Registry`] hands out cheap atomic handles keyed by metric name plus
//! an optional label set (the Prometheus data model, minus the server).
//! Handles are lock-free on the hot path — the registry lock is only taken
//! at get-or-create time and when snapshotting. A [`Snapshot`] renders as
//! canonical JSON ([`Snapshot::to_json`]) and Prometheus text exposition
//! format ([`Snapshot::to_prometheus`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flexwan_util::json::{Num, Value};

/// Histogram bucket upper bounds for operation latencies in seconds,
/// spanning 1 µs – 10 s (the controller's retry backoffs live at the low
/// end, convergence loops at the high end).
pub const LATENCY_SECONDS_BUCKETS: &[f64] =
    &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0];

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        assert!(valid_name(name), "invalid metric name `{name}`");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name `{k}`");
        }
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a float that can move both ways (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram state: fixed finite upper bounds plus an implicit
/// `+Inf` bucket, a running sum and a count.
#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    /// One slot per finite bound, plus the overflow (`+Inf`) slot last.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle with quantile estimation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let idx = core.bounds.partition_point(|&b| b < v);
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Bucket-resolution quantile estimate (`0.0 < q <= 1.0`): the upper
    /// bound of the first bucket whose cumulative count reaches
    /// `q × count`. Observations above the last finite bound report that
    /// bound. `0.0` with no observations.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let core = &self.0;
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, slot) in core.buckets.iter().enumerate() {
            cum += slot.load(Ordering::Relaxed);
            if cum >= rank {
                return core
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or(*core.bounds.last().unwrap());
            }
        }
        *core.bounds.last().unwrap()
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A thread-safe metrics registry.
///
/// The registry is cheap to share (`Arc<Registry>`); handles returned by
/// [`Registry::counter`], [`Registry::gauge`] and [`Registry::histogram`]
/// stay valid for the registry's lifetime and update lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get-or-create the counter `name` with `labels`.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Get-or-create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get-or-create the gauge `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Get-or-create the unlabeled histogram `name` with the given finite
    /// ascending bucket upper `bounds` (an `+Inf` bucket is implicit).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// Get-or-create the histogram `name` with `labels`.
    ///
    /// Panics if the name is registered with different bounds or kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => {
                assert_eq!(
                    h.0.bounds, bounds,
                    "histogram `{name}` re-registered with different buckets"
                );
                h.clone()
            }
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every metric, for export.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().unwrap();
        let mut series = Vec::with_capacity(m.len());
        for (key, metric) in m.iter() {
            let value = match metric {
                Metric::Counter(c) => SeriesValue::Counter(c.get()),
                Metric::Gauge(g) => SeriesValue::Gauge(g.get()),
                Metric::Histogram(h) => SeriesValue::Histogram {
                    bounds: h.0.bounds.clone(),
                    buckets: h.bucket_counts(),
                    sum: h.sum(),
                    count: h.count(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                },
            };
            series.push(Series {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value,
            });
        }
        Snapshot { series }
    }
}

/// One exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(f64),
    /// A histogram reading.
    Histogram {
        /// Finite bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket (non-cumulative) counts; last slot is `+Inf`.
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
        /// Bucket-resolution 50th percentile.
        p50: f64,
        /// Bucket-resolution 95th percentile.
        p95: f64,
        /// Bucket-resolution 99th percentile.
        p99: f64,
    },
}

/// One named, labeled series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SeriesValue,
}

/// A point-in-time copy of a [`Registry`], ordered by name then labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The exported series.
    pub series: Vec<Series>,
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn labels_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Formats a float the way the Prometheus exposition format expects.
fn prom_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:?}")
    }
}

impl Snapshot {
    /// The JSON form: one object per series under `"metrics"`, in
    /// registry (name, labels) order. Canonical — byte-identical for
    /// identical registry contents.
    pub fn to_json(&self) -> Value {
        let mut out = Vec::new();
        for s in &self.series {
            let labels = Value::obj(
                s.labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(v.as_str()))),
            );
            let mut fields: Vec<(String, Value)> = vec![
                ("name".into(), Value::from(s.name.as_str())),
                ("labels".into(), labels),
            ];
            match &s.value {
                SeriesValue::Counter(v) => {
                    fields.push(("kind".into(), Value::from("counter")));
                    fields.push(("value".into(), Value::Number(Num::U(*v))));
                }
                SeriesValue::Gauge(v) => {
                    fields.push(("kind".into(), Value::from("gauge")));
                    fields.push(("value".into(), Value::from(*v)));
                }
                SeriesValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                    p50,
                    p95,
                    p99,
                } => {
                    fields.push(("kind".into(), Value::from("histogram")));
                    fields.push((
                        "bounds".into(),
                        Value::Array(bounds.iter().map(|&b| Value::from(b)).collect()),
                    ));
                    fields.push((
                        "buckets".into(),
                        Value::Array(buckets.iter().map(|&b| Value::Number(Num::U(b))).collect()),
                    ));
                    fields.push(("sum".into(), Value::from(*sum)));
                    fields.push(("count".into(), Value::Number(Num::U(*count))));
                    fields.push(("p50".into(), Value::from(*p50)));
                    fields.push(("p95".into(), Value::from(*p95)));
                    fields.push(("p99".into(), Value::from(*p99)));
                }
            }
            out.push(Value::obj(fields));
        }
        Value::obj([("metrics", Value::Array(out))])
    }

    /// The Prometheus text exposition format: `# TYPE` per metric name,
    /// cumulative `_bucket`/`_sum`/`_count` for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.series {
            let kind = match &s.value {
                SeriesValue::Counter(_) => "counter",
                SeriesValue::Gauge(_) => "gauge",
                SeriesValue::Histogram { .. } => "histogram",
            };
            if last_name != Some(s.name.as_str()) {
                out.push_str(&format!("# TYPE {} {kind}\n", s.name));
                last_name = Some(s.name.as_str());
            }
            let suffix = labels_suffix(&s.labels);
            match &s.value {
                SeriesValue::Counter(v) => out.push_str(&format!("{}{suffix} {v}\n", s.name)),
                SeriesValue::Gauge(v) => {
                    out.push_str(&format!("{}{suffix} {}\n", s.name, prom_f64(*v)))
                }
                SeriesValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                    ..
                } => {
                    let mut cum = 0u64;
                    for (i, &b) in buckets.iter().enumerate() {
                        cum += b;
                        let le = match bounds.get(i) {
                            Some(bound) => prom_f64(*bound),
                            None => "+Inf".to_string(),
                        };
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_string(), le));
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            s.name,
                            labels_suffix(&labels)
                        ));
                    }
                    out.push_str(&format!("{}_sum{suffix} {}\n", s.name, prom_f64(*sum)));
                    out.push_str(&format!("{}_count{suffix} {count}\n", s.name));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same underlying counter.
        assert_eq!(r.counter("requests_total").get(), 5);
        let g = r.gauge("queue_depth");
        g.set(3.0);
        g.add(-1.5);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        r.counter_with("sends_total", &[("device", "0")]).add(2);
        r.counter_with("sends_total", &[("device", "1")]).add(3);
        assert_eq!(r.counter_with("sends_total", &[("device", "0")]).get(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.series.len(), 2);
    }

    #[test]
    fn histogram_quantiles_and_buckets() {
        let r = Registry::new();
        let h = r.histogram("latency", &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(
            h.quantile(0.95),
            100.0,
            "overflow reports last finite bound"
        );
        assert_eq!(h.quantile(0.2), 1.0);
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let r = Registry::new();
        r.counter_with("edit_total", &[("device", "3")]).add(7);
        r.gauge("lag").set(2.5);
        let h = r.histogram("seconds", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(5.0);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE edit_total counter"));
        assert!(text.contains("edit_total{device=\"3\"} 7"));
        assert!(text.contains("lag 2.5"));
        assert!(text.contains("seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("seconds_count 2"));
    }

    #[test]
    fn json_export_is_canonical() {
        let r = Registry::new();
        r.counter("b_total").inc();
        r.counter("a_total").add(2);
        let a = flexwan_util::json::to_string(&r.snapshot().to_json());
        let b = flexwan_util::json::to_string(&r.snapshot().to_json());
        assert_eq!(a, b);
        // Ordered by name: a_total before b_total.
        assert!(a.find("a_total").unwrap() < a.find("b_total").unwrap());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = Arc::new(Registry::new());
        let c = r.counter("hits_total");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
