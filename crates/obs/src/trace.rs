//! Span-based tracing: named, nested, timed spans with structured fields.
//!
//! A [`Tracer`] records finished spans into a bounded in-memory ring (the
//! oldest spans drop first, with a drop counter — no unbounded growth
//! inside a long-lived controller). Spans nest explicitly through
//! [`Span::child`], so parentage never depends on thread-local state and a
//! multi-threaded run records the same tree as a single-threaded one.
//! Timestamps come from the tracer's injected [`Clock`], which is what
//! lets chaos tests assert on recorded spans deterministically.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use flexwan_util::json::Value;

use crate::clock::Clock;

/// A finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (assigned at start, in start order).
    pub id: u64,
    /// Parent span id, if nested.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start timestamp (clock ns).
    pub start_ns: u64,
    /// End timestamp (clock ns).
    pub end_ns: u64,
    /// Structured `key=value` fields, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug)]
struct ActiveSpan {
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    fields: Vec<(String, Value)>,
}

#[derive(Debug, Default)]
struct TracerInner {
    active: BTreeMap<u64, ActiveSpan>,
    ring: VecDeque<SpanRecord>,
    next_id: u64,
    dropped: u64,
}

/// The span recorder. Share as `Arc<Tracer>`; spans are started from the
/// owning [`crate::Obs`] (roots) or from another span ([`Span::child`]).
#[derive(Debug)]
pub struct Tracer {
    clock: Arc<dyn Clock>,
    capacity: usize,
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// A tracer keeping at most `capacity` finished spans.
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> Tracer {
        assert!(capacity >= 1, "span ring needs capacity");
        Tracer {
            clock,
            capacity,
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// Starts a root span. Prefer [`Span::child`] for nesting.
    pub fn root(self: &Arc<Self>, name: impl Into<String>) -> Span {
        self.start(name.into(), None)
    }

    fn start(self: &Arc<Self>, name: String, parent: Option<u64>) -> Span {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.active.insert(
            id,
            ActiveSpan {
                parent,
                name,
                start_ns: now,
                fields: Vec::new(),
            },
        );
        Span {
            tracer: Arc::clone(self),
            id,
        }
    }

    fn add_field(&self, id: u64, key: String, value: Value) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(span) = inner.active.get_mut(&id) {
            span.fields.push((key, value));
        }
    }

    fn end(&self, id: u64) {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock().unwrap();
        let Some(active) = inner.active.remove(&id) else {
            return;
        };
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(SpanRecord {
            id,
            parent: active.parent,
            name: active.name,
            start_ns: active.start_ns,
            end_ns: now,
            fields: active.fields,
        });
    }

    /// The finished spans currently retained, oldest first.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Finished spans evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// The retained spans as JSON (`{"spans": [...], "dropped": n}`).
    pub fn to_json(&self) -> Value {
        let spans: Vec<Value> = self
            .finished()
            .iter()
            .map(|s| {
                Value::obj([
                    ("id", Value::from(s.id)),
                    ("parent", s.parent.map(Value::from).unwrap_or(Value::Null)),
                    ("name", Value::from(s.name.as_str())),
                    ("start_ns", Value::from(s.start_ns)),
                    ("end_ns", Value::from(s.end_ns)),
                    (
                        "fields",
                        Value::obj(s.fields.iter().map(|(k, v)| (k.clone(), v.clone()))),
                    ),
                ])
            })
            .collect();
        Value::obj([
            ("spans", Value::Array(spans)),
            ("dropped", Value::from(self.dropped())),
        ])
    }

    /// Renders the retained spans as an indented tree: children are nested
    /// under their parent (spans whose parent was evicted or never ended
    /// render as roots), siblings ordered by start time then id.
    pub fn render_tree(&self) -> String {
        let spans = self.finished();
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &spans {
            let parent = s.parent.filter(|p| ids.contains(p));
            children.entry(parent).or_default().push(s);
        }
        for list in children.values_mut() {
            list.sort_by_key(|s| (s.start_ns, s.id));
        }
        let mut out = String::new();
        let mut stack: Vec<(&SpanRecord, usize)> = Vec::new();
        for root in children.get(&None).into_iter().flatten().rev() {
            stack.push((root, 0));
        }
        while let Some((s, depth)) = stack.pop() {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&s.name);
            out.push_str(&format!(" ({})", format_ns(s.duration_ns())));
            for (k, v) in &s.fields {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for child in children.get(&Some(s.id)).into_iter().flatten().rev() {
                stack.push((child, depth + 1));
            }
        }
        out
    }
}

/// Human-readable duration with deterministic formatting.
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// A live span handle. Ends (and records) when dropped or on
/// [`Span::end`]. Fields added after the span ends are ignored.
#[derive(Debug)]
pub struct Span {
    tracer: Arc<Tracer>,
    id: u64,
}

impl Span {
    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Starts a child span.
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.tracer.start(name.into(), Some(self.id))
    }

    /// Attaches a structured `key=value` field.
    pub fn field(&self, key: impl Into<String>, value: impl Into<Value>) {
        self.tracer.add_field(self.id, key.into(), value.into());
    }

    /// Ends the span now (otherwise it ends on drop).
    pub fn end(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tracer.end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn tracer(cap: usize) -> (Arc<Tracer>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Arc::new(Tracer::new(cap, clock.clone())), clock)
    }

    #[test]
    fn spans_nest_and_time() {
        let (t, clock) = tracer(16);
        let root = t.root("plan");
        clock.advance_micros(5);
        {
            let child = root.child("spectrum");
            child.field("fiber", 3u32);
            clock.advance_micros(2);
            child.end();
        }
        clock.advance_micros(1);
        root.field("wavelengths", 7u32);
        root.end();
        let spans = t.finished();
        assert_eq!(spans.len(), 2);
        // Children finish first.
        assert_eq!(spans[0].name, "spectrum");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[0].duration_ns(), 2_000);
        assert_eq!(spans[1].name, "plan");
        assert_eq!(spans[1].duration_ns(), 8_000);
        assert_eq!(spans[1].fields[0].0, "wavelengths");
    }

    #[test]
    fn tree_renders_nested() {
        let (t, _clock) = tracer(16);
        let root = t.root("tick");
        let a = root.child("detect");
        a.end();
        let b = root.child("restore");
        b.field("cuts", 1u32);
        b.end();
        root.end();
        let tree = t.render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("tick"));
        assert!(lines[1].starts_with("  detect"));
        assert!(lines[2].starts_with("  restore"));
        assert!(lines[2].contains("cuts=1"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let (t, _clock) = tracer(2);
        for i in 0..5 {
            let s = t.root(format!("s{i}"));
            s.end();
        }
        let spans = t.finished();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "s3");
        assert_eq!(spans[1].name, "s4");
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn orphaned_children_render_as_roots() {
        let (t, _clock) = tracer(1);
        let root = t.root("parent");
        let child = root.child("child");
        child.end();
        root.end(); // evicts "child" from the ring of capacity 1
        let tree = t.render_tree();
        assert_eq!(tree.lines().count(), 1);
        assert!(tree.starts_with("parent"));
    }

    #[test]
    fn json_shape() {
        let (t, _clock) = tracer(8);
        let s = t.root("x");
        s.field("k", "v");
        s.end();
        let v = t.to_json();
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("x"));
        assert_eq!(
            spans[0].get("fields").unwrap().get("k").unwrap().as_str(),
            Some("v")
        );
    }
}
