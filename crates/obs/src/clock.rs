//! Injectable time sources.
//!
//! Everything in `flexwan-obs` reads time through the [`Clock`] trait so
//! that tests (and the chaos determinism suite in particular) can swap the
//! wall clock for a [`ManualClock`] and assert on recorded spans and
//! timing histograms without wall-clock flakiness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source measured in nanoseconds since the clock's own
/// epoch (its construction, for the wall clock).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since the clock's epoch. Must be monotonic.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock ([`Instant`]-backed).
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to: time is an atomic counter that
/// tests advance explicitly, making every recorded timestamp and duration
/// reproducible run to run and across thread counts.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_micros(&self, micros: u64) {
        self.advance_ns(micros * 1_000);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(7);
        c.advance_micros(2);
        assert_eq!(c.now_ns(), 2_007);
    }
}
