//! Zero-dependency observability for the FlexWAN reproduction.
//!
//! The paper's operational story (§4.4's one-second telemetry streams, §8's
//! restoration latency budget) depends on knowing where time and failures
//! go inside the controller and the optimizers. This crate is the
//! substrate: a thread-safe [`metrics`] registry (counters, gauges,
//! fixed-bucket histograms with p50/p95/p99) and a span-based [`trace`]
//! recorder (named spans with start/stop timing, explicit parent nesting
//! and structured fields, kept in a bounded ring), exporting as canonical
//! JSON and Prometheus text format — built from `std` alone, like
//! everything else in this offline workspace.
//!
//! Time is injectable ([`clock`]): production uses the monotonic
//! [`WallClock`], the chaos determinism suite a [`ManualClock`], so tests
//! can assert on recorded spans and timing histograms exactly.
//!
//! The [`Obs`] bundle (clock + registry + tracer) is what instrumented
//! components take; it is `Clone` and cheap to share across the
//! controller, solver bridge, planner and physical-layer simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod trace;

use std::sync::Arc;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{
    Counter, Gauge, Histogram, Registry, Series, SeriesValue, Snapshot, LATENCY_SECONDS_BUCKETS,
};
pub use trace::{Span, SpanRecord, Tracer};

/// Default bounded span-ring capacity of [`Obs::new`].
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// The observability bundle: one clock, one metrics registry, one span
/// tracer. Cloning shares all three.
#[derive(Debug, Clone)]
pub struct Obs {
    clock: Arc<dyn Clock>,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
}

impl Obs {
    /// A wall-clock bundle with the default span capacity.
    pub fn new() -> Obs {
        Obs::with_clock(Arc::new(WallClock::new()))
    }

    /// A bundle over an injected clock (e.g. [`ManualClock`] in tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Obs {
        Obs::with_clock_and_capacity(clock, DEFAULT_SPAN_CAPACITY)
    }

    /// A bundle over an injected clock with an explicit span-ring size.
    pub fn with_clock_and_capacity(clock: Arc<dyn Clock>, span_capacity: usize) -> Obs {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::new(span_capacity, clock.clone()));
        Obs {
            clock,
            registry,
            tracer,
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current clock reading, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Starts a root span.
    pub fn span(&self, name: impl Into<String>) -> Span {
        self.tracer.root(name)
    }

    /// Records `now − start_ns` (seconds) into the latency histogram
    /// `name` (buckets: [`LATENCY_SECONDS_BUCKETS`]).
    pub fn observe_since(&self, name: &str, start_ns: u64) {
        let dt = self.clock.now_ns().saturating_sub(start_ns) as f64 / 1e9;
        self.registry
            .histogram(name, LATENCY_SECONDS_BUCKETS)
            .observe(dt);
    }

    /// The metrics snapshot as pretty JSON text.
    pub fn metrics_json(&self) -> String {
        flexwan_util::json::to_string_pretty(&self.registry.snapshot().to_json())
    }

    /// The metrics snapshot in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        self.registry.snapshot().to_prometheus()
    }

    /// The retained spans rendered as an indented tree.
    pub fn span_tree(&self) -> String {
        self.tracer.render_tree()
    }

    /// Records one deterministic-pool run (`flexwan_util::pool`) under
    /// the operation label `op`: worker/item/chunk gauges plus a
    /// per-operation run counter. Utilization is `threads` vs the items
    /// available — a sweep whose `pool_threads` sticks at 1 is telling
    /// you its work items are too few or too lumpy to parallelize.
    pub fn record_pool(&self, op: &str, stats: &flexwan_util::pool::PoolStats) {
        let labels = [("op", op)];
        self.registry.counter_with("pool_runs_total", &labels).inc();
        self.registry
            .gauge_with("pool_threads", &labels)
            .set(stats.threads as f64);
        self.registry
            .gauge_with("pool_items", &labels)
            .set(stats.items as f64);
        self.registry
            .gauge_with("pool_chunks", &labels)
            .set(stats.chunks as f64);
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shares_state_across_clones() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(clock.clone());
        let obs2 = obs.clone();
        obs.registry().counter("x_total").inc();
        assert_eq!(obs2.registry().counter("x_total").get(), 1);
        let start = obs.now_ns();
        clock.advance_micros(1500);
        obs2.observe_since("op_seconds", start);
        let h = obs
            .registry()
            .histogram("op_seconds", LATENCY_SECONDS_BUCKETS);
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 1.5e-3).abs() < 1e-12);
    }

    #[test]
    fn pool_stats_surface_as_labeled_metrics() {
        let obs = Obs::with_clock(Arc::new(ManualClock::new()));
        let items: Vec<u32> = (0..16).collect();
        let (out, stats) = flexwan_util::pool::par_map_indexed(&items, 2, |_, &x| x * 2);
        assert_eq!(out[15], 30);
        obs.record_pool("sweep.scales", &stats);
        let prom = obs.metrics_prometheus();
        assert!(
            prom.contains("pool_runs_total{op=\"sweep.scales\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("pool_threads{op=\"sweep.scales\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("pool_items{op=\"sweep.scales\"} 16"),
            "{prom}"
        );
    }

    #[test]
    fn span_tree_and_exports_come_from_one_bundle() {
        let obs = Obs::with_clock(Arc::new(ManualClock::new()));
        let s = obs.span("root");
        s.child("leaf").end();
        s.end();
        assert!(obs.span_tree().contains("  leaf"));
        assert!(obs.metrics_json().contains("metrics"));
        obs.registry().counter("c_total").inc();
        assert!(obs.metrics_prometheus().contains("c_total 1"));
    }
}
