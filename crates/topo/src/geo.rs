//! Geographic helpers for building topologies from city coordinates.

/// Mean Earth radius, km.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Ratio of deployed fiber length to great-circle distance. Long-haul
/// fiber follows highways/railways, so real routes are 20–40 % longer than
/// geodesics; 1.3 is the customary planning factor.
pub const FIBER_DETOUR_FACTOR: f64 = 1.3;

/// Great-circle (haversine) distance between two (lat, lon) points, km.
pub fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Deployed fiber length between two coordinates: great-circle distance
/// times the detour factor, rounded to whole km and at least 1 km.
pub fn fiber_km(a: (f64, f64), b: (f64, f64)) -> u32 {
    ((haversine_km(a, b) * FIBER_DETOUR_FACTOR).round() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BEIJING: (f64, f64) = (39.90, 116.40);
    const SHANGHAI: (f64, f64) = (31.23, 121.47);
    const GUANGZHOU: (f64, f64) = (23.13, 113.26);

    #[test]
    fn beijing_shanghai_distance() {
        // Known great-circle distance ≈ 1070 km.
        let d = haversine_km(BEIJING, SHANGHAI);
        assert!((1000.0..1150.0).contains(&d), "got {d}");
    }

    #[test]
    fn beijing_guangzhou_distance() {
        // ≈ 1890 km great-circle.
        let d = haversine_km(BEIJING, GUANGZHOU);
        assert!((1800.0..1980.0).contains(&d), "got {d}");
    }

    #[test]
    fn symmetric_and_zero_on_identity() {
        let d1 = haversine_km(BEIJING, SHANGHAI);
        let d2 = haversine_km(SHANGHAI, BEIJING);
        assert!((d1 - d2).abs() < 1e-9);
        assert!(haversine_km(BEIJING, BEIJING) < 1e-9);
    }

    #[test]
    fn fiber_km_applies_detour() {
        let f = fiber_km(BEIJING, SHANGHAI);
        let d = haversine_km(BEIJING, SHANGHAI);
        assert_eq!(f, (d * 1.3).round() as u32);
    }
}
