//! Memoized candidate-route enumeration.
//!
//! Candidate routes depend only on the optical graph, the endpoints, `k`
//! and the banned-fiber set — **not** on the scheme being planned or the
//! demand scale. The evaluation sweeps (3 schemes × N scales × the
//! conduit-cut scenario set) therefore re-ran Yen's algorithm on
//! identical inputs dozens of times. A [`RouteCache`] computes each
//! distinct `(src, dst, k, banned)` query once and hands out shared
//! [`Arc`]s afterwards.
//!
//! The cache is thread-safe and deterministic: `k_shortest_routes` is a
//! pure function of the key, so whichever thread computes a missing entry
//! first, every reader sees the same routes. Under a concurrent miss the
//! same key may be computed twice; the first insertion wins and the
//! duplicate is dropped — wasted work, never wrong answers.
//!
//! One cache serves **one** graph: the key does not identify the graph,
//! so callers must not share a cache across different topologies (or
//! across mutations of one topology). The planners hold the cache only
//! for the duration of a sweep over a fixed backbone.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::graph::{EdgeId, Graph, NodeId};
use crate::ksp::DijkstraScratch;
use crate::route::{k_shortest_routes_scratch, Route};

/// A route query identity: endpoints, depth, and the banned fibers in
/// canonical (sorted) order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    src: NodeId,
    dst: NodeId,
    k: usize,
    banned: Vec<EdgeId>,
}

/// Thread-safe memoization of [`k_shortest_routes`] for one graph.
///
/// [`k_shortest_routes`]: crate::route::k_shortest_routes
#[derive(Debug, Default)]
pub struct RouteCache {
    map: Mutex<HashMap<Key, Arc<Vec<Route>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RouteCache {
    /// An empty cache.
    pub fn new() -> RouteCache {
        RouteCache::default()
    }

    /// The `k` shortest node-distinct routes from `src` to `dst` avoiding
    /// `banned`, computed on first use and shared afterwards. Identical
    /// to calling [`k_shortest_routes`] directly, minus the recompute.
    ///
    /// [`k_shortest_routes`]: crate::route::k_shortest_routes
    pub fn routes(
        &self,
        graph: &Graph,
        src: NodeId,
        dst: NodeId,
        k: usize,
        banned: &HashSet<EdgeId>,
    ) -> Arc<Vec<Route>> {
        let mut sorted: Vec<EdgeId> = banned.iter().copied().collect();
        sorted.sort_unstable();
        let key = Key {
            src,
            dst,
            k,
            banned: sorted,
        };
        if let Some(found) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Compute outside the lock: a slow Yen run must not serialize
        // every other thread's hits. Concurrent misses on the same key
        // duplicate the (deterministic) work; the first insert wins.
        let computed = Arc::new(k_shortest_routes_scratch(
            graph,
            src,
            dst,
            k,
            banned,
            &mut DijkstraScratch::new(),
        ));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().unwrap();
        Arc::clone(map.entry(key).or_insert(computed))
    }

    /// Queries answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that ran Yen's algorithm (including concurrent duplicates
    /// whose result was then discarded in favour of the first insert).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct keys currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and zeroes the hit/miss counters — required
    /// before reusing a cache after the underlying graph changed.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::k_shortest_routes;

    /// a ==2 fibers== b ==2 fibers== c, plus a direct long a–c fiber.
    fn plant() -> (Graph, [NodeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 50); // e0
        g.add_edge(a, b, 52); // e1
        g.add_edge(b, c, 60); // e2
        g.add_edge(b, c, 62); // e3
        g.add_edge(a, c, 400); // e4
        (g, [a, b, c])
    }

    #[test]
    fn cached_equals_direct_and_counts_hits() {
        let (g, [a, _, c]) = plant();
        let cache = RouteCache::new();
        let none = HashSet::new();
        let first = cache.routes(&g, a, c, 5, &none);
        assert_eq!(*first, k_shortest_routes(&g, a, c, 5, &none));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.routes(&g, a, c, 5, &none);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the entry");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_banned_sets_are_distinct_entries() {
        // The poisoning hazard: a cut-fiber query must never return the
        // uncut route set (or vice versa).
        let (g, [a, _, c]) = plant();
        let cache = RouteCache::new();
        let none = HashSet::new();
        let uncut = cache.routes(&g, a, c, 5, &none);
        let cut: HashSet<_> = [EdgeId(0), EdgeId(1)].into_iter().collect();
        let after = cache.routes(&g, a, c, 5, &cut);
        assert_eq!(cache.misses(), 2, "different ban sets must both miss");
        assert_ne!(*uncut, *after);
        for route in after.iter() {
            assert!(!route.may_use(EdgeId(0)) && !route.may_use(EdgeId(1)));
        }
        assert_eq!(*after, k_shortest_routes(&g, a, c, 5, &cut));
        // Re-querying the uncut set still returns the uncut entry.
        assert_eq!(*cache.routes(&g, a, c, 5, &none), *uncut);
    }

    #[test]
    fn ban_set_key_is_order_canonical() {
        let (g, [a, _, c]) = plant();
        let cache = RouteCache::new();
        // HashSet iteration order differs between these two constructions;
        // the sorted key must collapse them onto one entry.
        let fwd: HashSet<_> = [EdgeId(0), EdgeId(2)].into_iter().collect();
        let rev: HashSet<_> = [EdgeId(2), EdgeId(0)].into_iter().collect();
        let x = cache.routes(&g, a, c, 5, &fwd);
        let y = cache.routes(&g, a, c, 5, &rev);
        assert!(Arc::ptr_eq(&x, &y));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_k_and_endpoints_are_distinct_entries() {
        let (g, [a, b, c]) = plant();
        let cache = RouteCache::new();
        let none = HashSet::new();
        let _ = cache.routes(&g, a, c, 1, &none);
        let _ = cache.routes(&g, a, c, 5, &none);
        let _ = cache.routes(&g, a, b, 5, &none);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn concurrent_readers_agree() {
        let (g, [a, _, c]) = plant();
        let cache = RouteCache::new();
        let none = HashSet::new();
        let expected = k_shortest_routes(&g, a, c, 5, &none);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (cache, g, none, expected) = (&cache, &g, &none, &expected);
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(*cache.routes(g, a, c, 5, none), *expected);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }

    #[test]
    fn clear_resets_everything() {
        let (g, [a, _, c]) = plant();
        let cache = RouteCache::new();
        let none = HashSet::new();
        let _ = cache.routes(&g, a, c, 5, &none);
        let _ = cache.routes(&g, a, c, 5, &none);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
