//! IP-link demand generators.
//!
//! The paper takes IP-link demands as operator-provided inputs (§4.4). For
//! the CERNET evaluation it generates the IP topology and demands "using
//! distributions in \[49\]" (ARROW). ARROW's public description gives a WAN
//! whose IP links connect nearby POP pairs more often than far ones, with
//! heavy-tailed capacities in 100 Gbps multiples; [`arrow_ip_topology`]
//! reproduces that: node pairs drawn with probability ∝ 1/(1+hops)², and
//! demands log-uniform over 200 G–1.6 T rounded to 100 G.

use flexwan_util::rng::ChaCha8Rng;

use crate::graph::{Graph, NodeId};
use crate::ip::IpTopology;
use crate::ksp::shortest_path;

/// Configuration of the ARROW-style demand generator.
#[derive(Debug, Clone)]
pub struct ArrowDemandConfig {
    /// Number of IP links to generate.
    pub ip_links: usize,
    /// RNG seed.
    pub seed: u64,
    /// Minimum demand, Gbps (rounded to 100 G).
    pub min_gbps: u64,
    /// Maximum demand, Gbps (rounded to 100 G).
    pub max_gbps: u64,
}

impl Default for ArrowDemandConfig {
    fn default() -> Self {
        ArrowDemandConfig {
            ip_links: 150,
            seed: 11,
            min_gbps: 200,
            max_gbps: 1600,
        }
    }
}

/// Hop count of the shortest path between two nodes, if connected.
fn hop_distance(g: &Graph, a: NodeId, b: NodeId) -> Option<usize> {
    shortest_path(g, a, b, &Default::default()).map(|p| p.num_hops())
}

/// Generates an ARROW-style IP topology over the optical graph `g`.
///
/// Deterministic given the config. Pairs are sampled with locality bias
/// (probability weight `1/(1+hops)²`) and demands log-uniformly between the
/// configured bounds, rounded to 100 Gbps.
pub fn arrow_ip_topology(g: &Graph, cfg: &ArrowDemandConfig) -> IpTopology {
    assert!(g.num_nodes() >= 2, "need at least two nodes");
    assert!(cfg.min_gbps >= 100 && cfg.max_gbps >= cfg.min_gbps);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Precompute pair weights once (the graph is small: tens of nodes).
    let n = g.num_nodes();
    let mut pairs: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (NodeId(i as u32), NodeId(j as u32));
            if let Some(h) = hop_distance(g, a, b) {
                let w = 1.0 / ((1 + h) as f64).powi(2);
                pairs.push((a, b, w));
            }
        }
    }
    assert!(
        !pairs.is_empty(),
        "graph must be connected enough to form pairs"
    );
    let total_w: f64 = pairs.iter().map(|p| p.2).sum();

    let mut ip = IpTopology::new();
    for _ in 0..cfg.ip_links {
        // Weighted pair draw.
        let mut t = rng.gen_f64() * total_w;
        let mut chosen = pairs.len() - 1;
        for (idx, p) in pairs.iter().enumerate() {
            if t < p.2 {
                chosen = idx;
                break;
            }
            t -= p.2;
        }
        let (a, b, _) = pairs[chosen];
        // Log-uniform demand rounded to 100 G.
        let lo = (cfg.min_gbps as f64).ln();
        let hi = (cfg.max_gbps as f64).ln();
        let d = (rng.gen_f64() * (hi - lo) + lo).exp();
        let demand = ((d / 100.0).round().max(1.0) as u64) * 100;
        ip.add_link(a, b, demand.clamp(cfg.min_gbps, cfg.max_gbps));
    }
    ip
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 100);
        }
        g
    }

    #[test]
    fn deterministic() {
        let g = line_graph(8);
        let cfg = ArrowDemandConfig::default();
        assert_eq!(arrow_ip_topology(&g, &cfg), arrow_ip_topology(&g, &cfg));
    }

    #[test]
    fn demands_in_bounds_and_rounded() {
        let g = line_graph(10);
        let cfg = ArrowDemandConfig {
            ip_links: 200,
            ..Default::default()
        };
        let ip = arrow_ip_topology(&g, &cfg);
        assert_eq!(ip.num_links(), 200);
        for l in ip.links() {
            assert_eq!(l.demand_gbps % 100, 0);
            assert!((cfg.min_gbps..=cfg.max_gbps).contains(&l.demand_gbps));
        }
    }

    #[test]
    fn locality_bias_favours_near_pairs() {
        let g = line_graph(12);
        let cfg = ArrowDemandConfig {
            ip_links: 600,
            seed: 3,
            ..Default::default()
        };
        let ip = arrow_ip_topology(&g, &cfg);
        let near = ip
            .links()
            .iter()
            .filter(|l| (l.src.0 as i64 - l.dst.0 as i64).abs() <= 2)
            .count();
        let far = ip.num_links() - near;
        assert!(
            near > far,
            "expected locality bias: {near} near vs {far} far links"
        );
    }
}
