//! Routes: node-distinct paths with per-hop parallel-fiber choice.
//!
//! Production conduits carry several fiber pairs between the same two
//! sites. Treating each pair as an independent KSP edge makes Yen's
//! algorithm enumerate permutations of pairs along one physical route
//! before it ever finds a second route. A [`Route`] collapses the
//! parallels: it fixes the node sequence and records, per hop, *all*
//! usable parallel fibers — the spectrum assigner then picks any free
//! pair per hop.

use std::collections::{HashMap, HashSet};

use crate::graph::{EdgeId, Graph, NodeId};
use crate::ksp::{k_shortest_paths_scratch, DijkstraScratch};
use crate::path::Path;

/// A node-distinct route with the parallel-fiber alternatives per hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// For each hop, the usable parallel fibers (ascending length, then
    /// id — deterministic).
    pub hops: Vec<Vec<EdgeId>>,
    /// Conservative route length: per hop, the *longest* usable parallel
    /// (safe for the optical-reach constraint whatever pair is chosen).
    pub length_km: u32,
}

impl Route {
    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("routes are non-empty")
    }

    /// Materializes a [`Path`] from one chosen fiber per hop.
    pub fn realize(&self, graph: &Graph, chosen: &[EdgeId]) -> Path {
        assert_eq!(chosen.len(), self.hops.len(), "one fiber per hop");
        Path::new(graph, self.nodes.clone(), chosen.to_vec())
    }

    /// Whether any hop can use fiber `e`.
    pub fn may_use(&self, e: EdgeId) -> bool {
        self.hops.iter().any(|h| h.contains(&e))
    }
}

/// The `k` shortest node-distinct routes from `src` to `dst`, avoiding
/// `banned` fibers. Parallel fibers between the same node pair are
/// collapsed into hop alternatives; route length (for ordering and for
/// the reach constraint) uses the longest usable parallel per hop.
pub fn k_shortest_routes(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    banned: &HashSet<EdgeId>,
) -> Vec<Route> {
    k_shortest_routes_scratch(graph, src, dst, k, banned, &mut DijkstraScratch::new())
}

/// [`k_shortest_routes`] over caller-owned Dijkstra scratch memory —
/// callers that enumerate routes for many endpoint pairs on one graph
/// (the planner's per-link loop, the route cache's miss path) reuse one
/// arena instead of reallocating per call.
pub fn k_shortest_routes_scratch(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    banned: &HashSet<EdgeId>,
    scratch: &mut DijkstraScratch,
) -> Vec<Route> {
    // Collapsed graph: one edge per unordered node pair, weight = max
    // usable parallel length (so route ordering matches the conservative
    // route length).
    let mut groups: HashMap<(NodeId, NodeId), Vec<EdgeId>> = HashMap::new();
    for e in graph.edges() {
        if banned.contains(&e.id) {
            continue;
        }
        let key = if e.a <= e.b { (e.a, e.b) } else { (e.b, e.a) };
        groups.entry(key).or_default().push(e.id);
    }
    let mut collapsed = Graph::new();
    for n in graph.nodes() {
        collapsed.add_node(n.name.clone());
    }
    // Map collapsed edge id → parallel group (sorted), in insertion order.
    let mut group_of: Vec<Vec<EdgeId>> = Vec::new();
    let mut keys: Vec<(NodeId, NodeId)> = groups.keys().copied().collect();
    keys.sort();
    for key in keys {
        let mut members = groups.remove(&key).expect("key from map");
        members.sort_by_key(|&e| (graph.edge(e).length_km, e));
        let max_len = members
            .iter()
            .map(|&e| graph.edge(e).length_km)
            .max()
            .expect("non-empty group");
        collapsed.add_edge(key.0, key.1, max_len);
        group_of.push(members);
    }

    k_shortest_paths_scratch(&collapsed, src, dst, k, &HashSet::new(), scratch)
        .into_iter()
        .map(|p| Route {
            length_km: p.length_km,
            hops: p
                .edges
                .iter()
                .map(|e| group_of[e.0 as usize].clone())
                .collect(),
            nodes: p.nodes,
        })
        .collect()
}

/// Groups fibers into conduits: parallel fibers between the same node
/// pair share a physical conduit, so a backhoe severs them together.
/// Returns the conduit members, deterministically ordered.
pub fn conduits(graph: &Graph) -> Vec<Vec<EdgeId>> {
    let mut groups: HashMap<(NodeId, NodeId), Vec<EdgeId>> = HashMap::new();
    for e in graph.edges() {
        let key = if e.a <= e.b { (e.a, e.b) } else { (e.b, e.a) };
        groups.entry(key).or_default().push(e.id);
    }
    let mut keys: Vec<(NodeId, NodeId)> = groups.keys().copied().collect();
    keys.sort();
    keys.into_iter()
        .map(|k| {
            let mut v = groups.remove(&k).expect("key from map");
            v.sort();
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a ==2 fibers== b ==2 fibers== c, plus a direct long a–c fiber.
    fn plant() -> (Graph, [NodeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 50); // e0
        g.add_edge(a, b, 52); // e1
        g.add_edge(b, c, 60); // e2
        g.add_edge(b, c, 62); // e3
        g.add_edge(a, c, 400); // e4
        (g, [a, b, c])
    }

    #[test]
    fn routes_are_node_distinct() {
        let (g, [a, _, c]) = plant();
        let routes = k_shortest_routes(&g, a, c, 5, &HashSet::new());
        // Exactly two node-distinct routes: a-b-c and a-c.
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].nodes.len(), 3);
        assert_eq!(routes[0].length_km, 52 + 62, "max parallel lengths");
        assert_eq!(routes[0].hops[0], vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(routes[1].nodes, vec![a, c]);
        assert_eq!(routes[1].length_km, 400);
    }

    #[test]
    fn banned_fibers_shrink_hops() {
        let (g, [a, _, c]) = plant();
        let banned: HashSet<_> = [EdgeId(0)].into_iter().collect();
        let routes = k_shortest_routes(&g, a, c, 5, &banned);
        assert_eq!(routes[0].hops[0], vec![EdgeId(1)]);
        // Banning the whole first conduit removes the route.
        let banned: HashSet<_> = [EdgeId(0), EdgeId(1)].into_iter().collect();
        let routes = k_shortest_routes(&g, a, c, 5, &banned);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].nodes, vec![a, c]);
    }

    #[test]
    fn realize_builds_concrete_path() {
        let (g, [a, _, c]) = plant();
        let routes = k_shortest_routes(&g, a, c, 1, &HashSet::new());
        let p = routes[0].realize(&g, &[EdgeId(1), EdgeId(2)]);
        assert_eq!(p.length_km, 52 + 60);
        assert_eq!(p.destination(), c);
    }

    #[test]
    fn conduit_grouping() {
        let (g, _) = plant();
        let cs = conduits(&g);
        assert_eq!(cs.len(), 3);
        assert!(cs.contains(&vec![EdgeId(0), EdgeId(1)]));
        assert!(cs.contains(&vec![EdgeId(2), EdgeId(3)]));
        assert!(cs.contains(&vec![EdgeId(4)]));
    }

    #[test]
    fn may_use() {
        let (g, [a, _, c]) = plant();
        let routes = k_shortest_routes(&g, a, c, 1, &HashSet::new());
        assert!(routes[0].may_use(EdgeId(0)));
        assert!(routes[0].may_use(EdgeId(3)));
        assert!(!routes[0].may_use(EdgeId(4)));
    }
}
