//! Optical paths: the sequence of fibers a wavelength traverses.

use crate::graph::{EdgeId, Graph, NodeId};

/// A loopless path through the optical topology.
///
/// `nodes` has one more element than `edges`; `edges[i]` connects `nodes[i]`
/// to `nodes[i+1]`. `length_km` is the sum of fiber lengths — the
/// `|P_{e,k}|` of the paper's optical-reach constraint (2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed edges, in order.
    pub edges: Vec<EdgeId>,
    /// Total physical length, km.
    pub length_km: u32,
}

impl Path {
    /// Builds a path from its node/edge sequence, validating consistency
    /// against `graph` and computing the length.
    pub fn new(graph: &Graph, nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Self {
        assert_eq!(nodes.len(), edges.len() + 1, "path shape mismatch");
        let mut length: u32 = 0;
        for (i, &e) in edges.iter().enumerate() {
            let edge = graph.edge(e);
            assert!(
                (edge.a == nodes[i] && edge.b == nodes[i + 1])
                    || (edge.b == nodes[i] && edge.a == nodes[i + 1]),
                "edge {e:?} does not connect consecutive path nodes"
            );
            length += edge.length_km;
        }
        Path {
            nodes,
            edges,
            length_km: length,
        }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path has at least one node")
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Number of fiber hops.
    pub fn num_hops(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path traverses fiber `e` — the `π^{e,k}_φ` indicator of
    /// Algorithm 1.
    pub fn uses_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Whether the path revisits any node (should never hold for KSP
    /// output; checked in tests and property tests).
    pub fn has_loop(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.nodes.iter().any(|n| !seen.insert(*n))
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hops: Vec<String> = self.nodes.iter().map(|n| n.0.to_string()).collect();
        write!(f, "{} ({} km)", hops.join("→"), self.length_km)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_construction_and_accessors() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let ab = g.add_edge(a, b, 100);
        let bc = g.add_edge(b, c, 250);
        let p = Path::new(&g, vec![a, b, c], vec![ab, bc]);
        assert_eq!(p.length_km, 350);
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), c);
        assert_eq!(p.num_hops(), 2);
        assert!(p.uses_edge(ab));
        assert!(!p.has_loop());
        assert_eq!(p.to_string(), "0→1→2 (350 km)");
    }

    #[test]
    #[should_panic(expected = "does not connect")]
    fn rejects_disconnected_sequence() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let ab = g.add_edge(a, b, 100);
        let _bc = g.add_edge(b, c, 250);
        // Claims ab connects a→c.
        let _ = Path::new(&g, vec![a, c], vec![ab]);
    }

    #[test]
    fn loop_detection() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let ab = g.add_edge(a, b, 100);
        let ba = g.add_edge(a, b, 120);
        let p = Path::new(&g, vec![a, b, a], vec![ab, ba]);
        assert!(p.has_loop());
    }
}
