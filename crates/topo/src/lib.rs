//! Topology substrate for the FlexWAN reproduction.
//!
//! Provides the inputs of the paper's Algorithm 1: the IP topology
//! `G(V, E)` with per-link bandwidth demands `c_e`, the optical topology
//! `G_o(V_o, E_o)` of ROADM sites and fibers, and the K-shortest-path
//! machinery producing the candidate optical paths `P_{e,k}`.
//!
//! Two evaluation topologies are built in:
//! * [`tbackbone`] — a deterministic synthetic stand-in for the
//!   confidential production T-backbone, fit to the paper's published
//!   path-length distribution (Figure 2(a));
//! * [`cernet`] — the public CERNET backbone with geographically derived
//!   fiber lengths and ARROW-style demands (§7.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cernet;
pub mod demand;
pub mod geo;
pub mod graph;
pub mod ip;
pub mod ksp;
pub mod nsfnet;
pub mod path;
pub mod route;
pub mod tbackbone;

pub use cache::RouteCache;
pub use demand::{arrow_ip_topology, ArrowDemandConfig};
pub use graph::{Edge, EdgeId, Graph, Node, NodeId};
pub use ip::{IpLink, IpLinkId, IpTopology};
pub use ksp::{k_shortest_paths, shortest_path, DijkstraScratch};
pub use path::Path;
pub use route::{conduits, k_shortest_routes, Route};
pub use tbackbone::{t_backbone, Backbone, TBackboneConfig};
