//! Synthetic "T-backbone": a production-like optical backbone whose
//! optical-path-length distribution matches the paper's Figure 2(a).
//!
//! The real T-backbone (Tencent's production WAN) is confidential; the paper
//! reports only its *shape*: hundreds of optical paths over thousands of IP
//! links, with ≈50 % of optical paths shorter than 200 km and a tail beyond
//! 2000 km. That shape is what drives every relative result in §7–§8, so we
//! generate a deterministic topology fit to it:
//!
//! * metro **regions** — dense clusters of nearby sites (25–90 km fibers),
//!   joined in a ring plus chords; intra-region IP links dominate the
//!   demand set and produce the short-path mass;
//! * a **long-haul mesh** joining region hubs (350–1100 km fibers),
//!   producing the medium/long tail;
//! * IP links drawn with a locality mix (intra-region / adjacent-region /
//!   far) and demands in 100 Gbps multiples, skewed so that short links
//!   carry more capacity (large metro flows), matching Figure 13(a)'s
//!   capacity-weighted CDF.

use flexwan_util::rng::ChaCha8Rng;

use crate::graph::{Graph, NodeId};
use crate::ip::IpTopology;

/// Configuration of the synthetic T-backbone generator.
#[derive(Debug, Clone)]
pub struct TBackboneConfig {
    /// Number of metro regions.
    pub regions: usize,
    /// ROADM sites per region.
    pub nodes_per_region: usize,
    /// Number of IP links to generate.
    pub ip_links: usize,
    /// RNG seed (the generator is fully deterministic given the seed).
    pub seed: u64,
    /// Fiber pairs per metro span (metro conduits carry several pairs).
    pub metro_fiber_pairs: usize,
    /// Fiber pairs per long-haul route.
    pub longhaul_fiber_pairs: usize,
}

impl Default for TBackboneConfig {
    fn default() -> Self {
        // 8 regions × 5 sites = 40 ROADMs; 280 IP links ⇒ "hundreds of
        // optical paths" at K=3 candidate paths each, matching §3.1's
        // description at our evaluation scale.
        TBackboneConfig {
            regions: 8,
            nodes_per_region: 5,
            ip_links: 140,
            seed: 35,
            metro_fiber_pairs: 4,
            longhaul_fiber_pairs: 3,
        }
    }
}

/// A generated backbone: the optical fiber plant plus the IP-link demand
/// set riding on it.
#[derive(Debug, Clone)]
pub struct Backbone {
    /// Optical topology (ROADM sites and fibers).
    pub optical: Graph,
    /// IP topology (links with demands).
    pub ip: IpTopology,
}

/// Generates the synthetic T-backbone.
pub fn t_backbone(cfg: &TBackboneConfig) -> Backbone {
    assert!(cfg.regions >= 2 && cfg.nodes_per_region >= 2 && cfg.ip_links >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();

    // Region hubs are node index 0 of each region.
    let mut region_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.regions);
    for r in 0..cfg.regions {
        let mut nodes = Vec::with_capacity(cfg.nodes_per_region);
        for i in 0..cfg.nodes_per_region {
            nodes.push(g.add_node(format!("r{r}n{i}")));
        }
        // Metro ring: 25–90 km spans, two fiber pairs per span (metro
        // conduits carry multiple pairs; the metro mileage is where the
        // demand concentrates).
        for i in 0..cfg.nodes_per_region {
            let j = (i + 1) % cfg.nodes_per_region;
            if cfg.nodes_per_region == 2 && i == 1 {
                break; // avoid duplicating the single ring edge
            }
            let len = rng.gen_range(25u32..=90);
            for pair in 0..cfg.metro_fiber_pairs {
                g.add_edge(nodes[i], nodes[j], len + 2 * pair as u32);
            }
        }
        // One chord for intra-region diversity (restoration needs ≥2
        // disjoint paths).
        if cfg.nodes_per_region >= 4 {
            let len = rng.gen_range(40u32..=120);
            for pair in 0..cfg.metro_fiber_pairs {
                g.add_edge(
                    nodes[0],
                    nodes[cfg.nodes_per_region / 2],
                    len + 2 * pair as u32,
                );
            }
        }
        region_nodes.push(nodes);
    }

    // Long-haul ring over region hubs plus cross-country chords.
    for r in 0..cfg.regions {
        let next = (r + 1) % cfg.regions;
        if cfg.regions == 2 && r == 1 {
            break;
        }
        let len = rng.gen_range(350u32..=800);
        for pair in 0..cfg.longhaul_fiber_pairs {
            g.add_edge(
                region_nodes[r][0],
                region_nodes[next][0],
                len + 5 * pair as u32,
            );
        }
    }
    if cfg.regions >= 4 {
        for r in (0..cfg.regions).step_by(2) {
            let far = (r + cfg.regions / 2) % cfg.regions;
            if far != r {
                let len = rng.gen_range(700u32..=1100);
                for pair in 0..cfg.longhaul_fiber_pairs {
                    g.add_edge(
                        region_nodes[r][0],
                        region_nodes[far][0],
                        len + 5 * pair as u32,
                    );
                }
            }
        }
    }

    // Secondary egress per region: second metro node links to the next
    // region's hub, so regions stay connected under any single hub-adjacent
    // fiber cut.
    if cfg.nodes_per_region >= 2 {
        for r in 0..cfg.regions {
            let next = (r + 1) % cfg.regions;
            if cfg.regions == 2 && r == 1 {
                break;
            }
            let len = rng.gen_range(400u32..=900);
            for pair in 0..cfg.longhaul_fiber_pairs {
                g.add_edge(
                    region_nodes[r][1],
                    region_nodes[next][0],
                    len + 5 * pair as u32,
                );
            }
        }
    }

    // IP links: locality mix tuned to Figure 2(a)'s path-length CDF.
    //   58 % intra-region (1–2 metro hops, mostly < 200 km),
    //   27 % adjacent-region (one long-haul hop + metro tails),
    //   15 % far (several long-haul hops, the > 1500 km tail).
    let mut ip = IpTopology::new();
    for _ in 0..cfg.ip_links {
        let roll: f64 = rng.gen_f64();
        let (src, dst) = if roll < 0.58 {
            let r = rng.gen_range(0..cfg.regions);
            let i = rng.gen_range(0..cfg.nodes_per_region);
            let mut j = rng.gen_range(0..cfg.nodes_per_region);
            while j == i {
                j = rng.gen_range(0..cfg.nodes_per_region);
            }
            (region_nodes[r][i], region_nodes[r][j])
        } else if roll < 0.85 {
            let r = rng.gen_range(0..cfg.regions);
            let next = (r + 1) % cfg.regions;
            let i = rng.gen_range(0..cfg.nodes_per_region);
            let j = rng.gen_range(0..cfg.nodes_per_region);
            (region_nodes[r][i], region_nodes[next][j])
        } else {
            let r = rng.gen_range(0..cfg.regions);
            // With < 4 regions every other region is adjacent; fall back to
            // "any different region" so the draw always terminates.
            let mut s = rng.gen_range(0..cfg.regions);
            if cfg.regions >= 4 {
                while s == r || s == (r + 1) % cfg.regions || r == (s + 1) % cfg.regions {
                    s = rng.gen_range(0..cfg.regions);
                }
            } else {
                while s == r {
                    s = rng.gen_range(0..cfg.regions);
                }
            }
            let i = rng.gen_range(0..cfg.nodes_per_region);
            let j = rng.gen_range(0..cfg.nodes_per_region);
            (region_nodes[r][i], region_nodes[s][j])
        };
        // Demands in 100 G multiples. Metro links are fat (large
        // inter-DC flows): 0.8–2 Tbps; long-haul links 300–800 G.
        // Calibrated jointly with the fiber plant so the fixed 100G-WAN
        // baseline saturates near 3× the present-day demand (Figure 12's
        // 3×/5×/8× ladder) while per-link demands are in the multi-Tbps
        // regime where the paper's §7 savings arise.
        let demand = if roll < 0.58 {
            100 * rng.gen_range(8..=20) as u64
        } else {
            100 * rng.gen_range(3..=8) as u64
        };
        ip.add_link(src, dst, demand);
    }

    Backbone { optical: g, ip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ksp::shortest_path;
    use std::collections::HashSet;

    #[test]
    fn default_shape() {
        let b = t_backbone(&TBackboneConfig::default());
        assert_eq!(b.optical.num_nodes(), 40);
        assert_eq!(b.ip.num_links(), 140);
        assert!(b.optical.is_connected(&HashSet::new()));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = t_backbone(&TBackboneConfig::default());
        let b = t_backbone(&TBackboneConfig::default());
        assert_eq!(a.optical, b.optical);
        assert_eq!(a.ip, b.ip);
        let c = t_backbone(&TBackboneConfig {
            seed: 8,
            ..Default::default()
        });
        assert_ne!(a.optical, c.optical);
    }

    #[test]
    fn survives_any_single_fiber_cut() {
        // §8 needs restoration paths to exist for every 1-failure scenario.
        let b = t_backbone(&TBackboneConfig::default());
        for e in b.optical.edges() {
            let banned: HashSet<_> = [e.id].into_iter().collect();
            assert!(
                b.optical.is_connected(&banned),
                "cutting fiber {:?} disconnects the backbone",
                e.id
            );
        }
    }

    #[test]
    fn path_length_distribution_matches_fig2a() {
        // Figure 2(a): ≈50 % of optical paths are < 200 km, with a tail
        // beyond 2000 km. Allow generous tolerance — the claim is the
        // *shape*, not exact percentages.
        let b = t_backbone(&TBackboneConfig::default());
        let none = HashSet::new();
        let lengths: Vec<u32> =
            b.ip.links()
                .iter()
                .map(|l| {
                    shortest_path(&b.optical, l.src, l.dst, &none)
                        .expect("connected")
                        .length_km
                })
                .collect();
        let n = lengths.len() as f64;
        let short = lengths.iter().filter(|&&d| d < 200).count() as f64 / n;
        let long = lengths.iter().filter(|&&d| d > 1200).count() as f64 / n;
        assert!(
            (0.38..=0.62).contains(&short),
            "fraction of paths < 200 km is {short:.2}, expected ≈0.5"
        );
        assert!(long > 0.02, "long-path tail missing: {long:.2}");
        assert!(lengths.iter().any(|&d| d > 1500), "no >1500 km paths");
    }

    #[test]
    fn demands_are_100g_multiples() {
        let b = t_backbone(&TBackboneConfig::default());
        for l in b.ip.links() {
            assert_eq!(l.demand_gbps % 100, 0);
            assert!(l.demand_gbps >= 300 && l.demand_gbps <= 2000);
        }
    }

    #[test]
    fn small_configs_work() {
        let b = t_backbone(&TBackboneConfig {
            regions: 2,
            nodes_per_region: 2,
            ip_links: 4,
            seed: 1,
            metro_fiber_pairs: 1,
            longhaul_fiber_pairs: 1,
        });
        assert!(b.optical.is_connected(&HashSet::new()));
        assert_eq!(b.ip.num_links(), 4);
    }
}
