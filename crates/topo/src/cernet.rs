//! The CERNET backbone topology (§7.2).
//!
//! The paper's second evaluation topology is CERNET — the China Education
//! and Research Network — "released in \[4\]", used as the optical topology
//! of a point-to-point backbone. We embed the public CERNET backbone node
//! set (provincial-capital POPs) with fiber lengths derived from
//! great-circle distances between the cities times the standard 1.3 routing
//! detour factor (see [`crate::geo`]). Its median path is much longer than
//! the T-backbone's, reproducing Figure 13(a)'s contrast.

use crate::demand::{arrow_ip_topology, ArrowDemandConfig};
use crate::geo::fiber_km;
use crate::graph::Graph;
use crate::tbackbone::Backbone;

/// CERNET POP cities with (latitude, longitude).
pub const CERNET_CITIES: &[(&str, f64, f64)] = &[
    ("Beijing", 39.90, 116.40),
    ("Tianjin", 39.13, 117.20),
    ("Shijiazhuang", 38.04, 114.51),
    ("Taiyuan", 37.87, 112.55),
    ("Hohhot", 40.84, 111.75),
    ("Shenyang", 41.80, 123.43),
    ("Dalian", 38.91, 121.61),
    ("Changchun", 43.88, 125.32),
    ("Harbin", 45.80, 126.53),
    ("Jinan", 36.65, 117.12),
    ("Qingdao", 36.07, 120.38),
    ("Zhengzhou", 34.75, 113.63),
    ("Shanghai", 31.23, 121.47),
    ("Nanjing", 32.06, 118.80),
    ("Hangzhou", 30.27, 120.15),
    ("Hefei", 31.82, 117.23),
    ("Fuzhou", 26.07, 119.30),
    ("Xiamen", 24.48, 118.09),
    ("Nanchang", 28.68, 115.86),
    ("Wuhan", 30.59, 114.31),
    ("Changsha", 28.23, 112.94),
    ("Guangzhou", 23.13, 113.26),
    ("Shenzhen", 22.54, 114.06),
    ("Nanning", 22.82, 108.32),
    ("Haikou", 20.04, 110.34),
    ("Guiyang", 26.65, 106.63),
    ("Kunming", 25.04, 102.72),
    ("Chengdu", 30.57, 104.07),
    ("Chongqing", 29.56, 106.55),
    ("Xian", 34.34, 108.94),
    ("Lanzhou", 36.06, 103.83),
    ("Xining", 36.62, 101.78),
    ("Yinchuan", 38.49, 106.23),
    ("Urumqi", 43.83, 87.62),
    ("Lhasa", 29.65, 91.14),
];

/// CERNET backbone adjacencies (city-name pairs). Beijing is the national
/// hub; Shanghai, Guangzhou, Wuhan, Nanjing, Xi'an, Chengdu and Shenyang
/// are regional hubs, mirroring the published backbone structure.
pub const CERNET_EDGES: &[(&str, &str)] = &[
    // North / around Beijing
    ("Beijing", "Tianjin"),
    ("Beijing", "Shijiazhuang"),
    ("Beijing", "Taiyuan"),
    ("Beijing", "Hohhot"),
    ("Beijing", "Jinan"),
    ("Beijing", "Zhengzhou"),
    ("Beijing", "Shenyang"),
    ("Beijing", "Shanghai"),
    ("Beijing", "Wuhan"),
    ("Beijing", "Xian"),
    // Northeast chain
    ("Shenyang", "Changchun"),
    ("Changchun", "Harbin"),
    ("Shenyang", "Dalian"),
    ("Tianjin", "Dalian"),
    // East
    ("Jinan", "Qingdao"),
    ("Jinan", "Nanjing"),
    ("Shanghai", "Nanjing"),
    ("Shanghai", "Hangzhou"),
    ("Nanjing", "Hefei"),
    ("Hangzhou", "Nanchang"),
    ("Shanghai", "Wuhan"),
    // Southeast
    ("Nanchang", "Fuzhou"),
    ("Fuzhou", "Xiamen"),
    ("Xiamen", "Guangzhou"),
    // South
    ("Guangzhou", "Shenzhen"),
    ("Guangzhou", "Changsha"),
    ("Guangzhou", "Nanning"),
    ("Nanning", "Haikou"),
    ("Guangzhou", "Wuhan"),
    // Center
    ("Wuhan", "Changsha"),
    ("Wuhan", "Nanchang"),
    ("Wuhan", "Zhengzhou"),
    ("Wuhan", "Chongqing"),
    ("Hefei", "Wuhan"),
    // Southwest
    ("Chongqing", "Chengdu"),
    ("Chongqing", "Guiyang"),
    ("Guiyang", "Kunming"),
    ("Chengdu", "Kunming"),
    ("Chengdu", "Lhasa"),
    ("Chengdu", "Xian"),
    // Northwest
    ("Xian", "Zhengzhou"),
    ("Xian", "Lanzhou"),
    ("Lanzhou", "Xining"),
    ("Lanzhou", "Yinchuan"),
    ("Lanzhou", "Urumqi"),
];

/// Builds the CERNET optical topology.
pub fn cernet_optical() -> Graph {
    let mut g = Graph::new();
    for (name, _, _) in CERNET_CITIES {
        g.add_node(*name);
    }
    let coord = |name: &str| -> (f64, f64) {
        CERNET_CITIES
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, la, lo)| (la, lo))
            .unwrap_or_else(|| panic!("unknown CERNET city {name}"))
    };
    for (a, b) in CERNET_EDGES {
        let na = g.node_by_name(a).expect("city registered");
        let nb = g.node_by_name(b).expect("city registered");
        g.add_edge(na, nb, fiber_km(coord(a), coord(b)));
    }
    g
}

/// Builds the CERNET backbone with an ARROW-style IP topology and demands,
/// as the paper does ("use distributions in \[49\] to generate the IP
/// topology and bandwidth capacity").
pub fn cernet(cfg: &ArrowDemandConfig) -> Backbone {
    let optical = cernet_optical();
    let ip = arrow_ip_topology(&optical, cfg);
    Backbone { optical, ip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ksp::shortest_path;
    use std::collections::HashSet;

    #[test]
    fn topology_is_connected_and_sized() {
        let g = cernet_optical();
        assert_eq!(g.num_nodes(), 35);
        assert_eq!(g.num_edges(), CERNET_EDGES.len());
        assert!(g.is_connected(&HashSet::new()));
    }

    #[test]
    fn fiber_lengths_are_geographic() {
        let g = cernet_optical();
        let bj = g.node_by_name("Beijing").unwrap();
        let sh = g.node_by_name("Shanghai").unwrap();
        let edge = g
            .edges()
            .iter()
            .find(|e| (e.a == bj && e.b == sh) || (e.a == sh && e.b == bj))
            .unwrap();
        // ≈1070 km geodesic × 1.3 ≈ 1390 km of fiber.
        assert!(
            (1300..1500).contains(&edge.length_km),
            "got {}",
            edge.length_km
        );
    }

    #[test]
    fn longest_shortest_path_spans_the_country() {
        let g = cernet_optical();
        let harbin = g.node_by_name("Harbin").unwrap();
        let urumqi = g.node_by_name("Urumqi").unwrap();
        let p = shortest_path(&g, harbin, urumqi, &HashSet::new()).unwrap();
        assert!(p.length_km > 3500, "Harbin–Urumqi is {} km", p.length_km);
    }

    #[test]
    fn median_path_longer_than_tbackbone() {
        // Figure 13(a): CERNET's median optical path is much longer than
        // T-backbone's.
        use crate::tbackbone::{t_backbone, TBackboneConfig};
        let none = HashSet::new();
        let median = |b: &crate::tbackbone::Backbone| -> u32 {
            let mut l: Vec<u32> =
                b.ip.links()
                    .iter()
                    .map(|x| {
                        shortest_path(&b.optical, x.src, x.dst, &none)
                            .unwrap()
                            .length_km
                    })
                    .collect();
            l.sort_unstable();
            l[l.len() / 2]
        };
        let cer = cernet(&ArrowDemandConfig::default());
        let tb = t_backbone(&TBackboneConfig::default());
        assert!(
            median(&cer) > 2 * median(&tb),
            "cernet median {} vs t-backbone {}",
            median(&cer),
            median(&tb)
        );
    }
}
