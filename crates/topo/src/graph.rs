//! Undirected weighted multigraph used for both the IP and optical layers.
//!
//! Nodes are ROADM sites (optical layer) or routers (IP layer); edges are
//! fibers with a physical length in km. The graph is append-only — failures
//! are modeled by passing a set of banned edges to the path algorithms
//! rather than by mutating the topology, which keeps failure-scenario
//! evaluation cheap and side-effect free.

use std::collections::HashSet;

/// Identifier of a node (ROADM site / router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge (fiber segment between adjacent sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

/// A node with a human-readable site name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// Site name (city / POP).
    pub name: String,
}

/// An undirected fiber edge with a physical length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The edge's identifier.
    pub id: EdgeId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Physical fiber length, km.
    pub length_km: u32,
}

impl Edge {
    /// The endpoint opposite `n`; panics if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            assert_eq!(
                n, self.b,
                "node {n:?} is not an endpoint of edge {:?}",
                self.id
            );
            self.a
        }
    }
}

/// An undirected weighted multigraph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node named `name`, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.into(),
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `a` and `b` with the given length.
    /// Parallel edges (common in real backbones: multiple fiber pairs along
    /// one conduit) are allowed; self-loops are not.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, length_km: u32) -> EdgeId {
        assert!(a != b, "self-loop fibers are not meaningful");
        assert!((a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len());
        assert!(length_km > 0, "fiber length must be positive");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            a,
            b,
            length_km,
        });
        self.adjacency[a.0 as usize].push(id);
        self.adjacency[b.0 as usize].push(id);
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The node with id `n`.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.0 as usize]
    }

    /// The edge with id `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0 as usize]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Edges incident to `n`.
    pub fn incident_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.adjacency[n.0 as usize]
    }

    /// Neighbor nodes of `n` with the connecting edge, skipping `banned`
    /// edges.
    pub fn neighbors<'a>(
        &'a self,
        n: NodeId,
        banned: &'a HashSet<EdgeId>,
    ) -> impl Iterator<Item = (EdgeId, NodeId)> + 'a {
        self.adjacency[n.0 as usize]
            .iter()
            .filter(move |e| !banned.contains(e))
            .map(move |&e| (e, self.edge(e).other(n)))
    }

    /// Whether the graph is connected when `banned` edges are removed
    /// (single-component check by BFS from node 0).
    pub fn is_connected(&self, banned: &HashSet<EdgeId>) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for (_, m) in self.neighbors(n, banned) {
                if !seen[m.0 as usize] {
                    seen[m.0 as usize] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Total fiber kilometers in the graph.
    pub fn total_fiber_km(&self) -> u64 {
        self.edges.iter().map(|e| u64::from(e.length_km)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let ab = g.add_edge(a, b, 100);
        let bc = g.add_edge(b, c, 200);
        let ca = g.add_edge(c, a, 300);
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn build_and_lookup() {
        let (g, [a, b, _c], [ab, ..]) = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.node_by_name("b"), Some(b));
        assert_eq!(g.node_by_name("zzz"), None);
        assert_eq!(g.edge(ab).other(a), b);
        assert_eq!(g.edge(ab).other(b), a);
        assert_eq!(g.total_fiber_km(), 600);
    }

    #[test]
    fn neighbors_respect_banned() {
        let (g, [a, ..], [ab, _, ca]) = triangle();
        let none = HashSet::new();
        assert_eq!(g.neighbors(a, &none).count(), 2);
        let banned: HashSet<_> = [ab].into_iter().collect();
        let n: Vec<_> = g.neighbors(a, &banned).collect();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].0, ca);
    }

    #[test]
    fn connectivity_under_cuts() {
        let (g, _, [ab, bc, ca]) = triangle();
        assert!(g.is_connected(&HashSet::new()));
        assert!(g.is_connected(&[ab].into_iter().collect()));
        assert!(!g.is_connected(&[ab, ca].into_iter().collect()));
        let _ = bc;
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e1 = g.add_edge(a, b, 80);
        let e2 = g.add_edge(a, b, 90);
        assert_ne!(e1, e2);
        assert_eq!(g.incident_edges(a).len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        g.add_edge(a, a, 10);
    }
}
