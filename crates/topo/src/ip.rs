//! IP-layer topology: routers and IP links with bandwidth-capacity demands.
//!
//! Per §4.4, the IP TopoMgr "stores the demands of bandwidth capacity of
//! each pair of two IP nodes (i.e., IP links)"; determining those demands is
//! explicitly out of scope for the paper ("we use the bandwidth capacity of
//! each IP link provided by network operators"), so an [`IpLink`] simply
//! carries its demand. IP nodes map 1:1 onto optical ROADM sites.

use crate::graph::NodeId;

/// Identifier of an IP link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpLinkId(pub u32);

/// An IP link: a router adjacency needing `demand_gbps` of bandwidth
/// capacity, realized by one or more wavelengths on optical paths between
/// the corresponding ROADM sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpLink {
    /// The link's identifier.
    pub id: IpLinkId,
    /// Source ROADM site.
    pub src: NodeId,
    /// Destination ROADM site.
    pub dst: NodeId,
    /// Bandwidth-capacity demand `c_e`, Gbps (multiple of 100 G in
    /// production: router ports are 100 G).
    pub demand_gbps: u64,
}

/// The IP topology: the set of IP links over an optical substrate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IpTopology {
    links: Vec<IpLink>,
}

impl IpTopology {
    /// An empty IP topology.
    pub fn new() -> Self {
        IpTopology::default()
    }

    /// Adds an IP link with the given endpoints and demand.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, demand_gbps: u64) -> IpLinkId {
        assert!(src != dst, "IP link endpoints must differ");
        assert!(demand_gbps > 0, "IP link demand must be positive");
        let id = IpLinkId(self.links.len() as u32);
        self.links.push(IpLink {
            id,
            src,
            dst,
            demand_gbps,
        });
        id
    }

    /// Replaces the bandwidth-capacity demand of an existing link — the
    /// topology-side half of a demand-delta event (operators resize IP
    /// links under churn; endpoints never change in place).
    pub fn set_demand(&mut self, id: IpLinkId, demand_gbps: u64) {
        assert!(demand_gbps > 0, "IP link demand must be positive");
        self.links[id.0 as usize].demand_gbps = demand_gbps;
    }

    /// All IP links.
    pub fn links(&self) -> &[IpLink] {
        &self.links
    }

    /// The link with id `id`.
    pub fn link(&self, id: IpLinkId) -> &IpLink {
        &self.links[id.0 as usize]
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total demanded capacity across all links, Gbps.
    pub fn total_demand_gbps(&self) -> u64 {
        self.links.iter().map(|l| l.demand_gbps).sum()
    }

    /// A copy with every demand multiplied by `scale` — the capacity-scale
    /// sweep of Figure 12 ("increasing the bandwidth capacity scale").
    pub fn scaled(&self, scale: u64) -> IpTopology {
        assert!(scale > 0);
        IpTopology {
            links: self
                .links
                .iter()
                .map(|l| IpLink {
                    demand_gbps: l.demand_gbps * scale,
                    ..*l
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut t = IpTopology::new();
        let a = t.add_link(NodeId(0), NodeId(1), 400);
        let b = t.add_link(NodeId(1), NodeId(2), 800);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.total_demand_gbps(), 1200);
        assert_eq!(t.link(a).demand_gbps, 400);
        assert_eq!(t.link(b).src, NodeId(1));
    }

    #[test]
    fn scaling() {
        let mut t = IpTopology::new();
        t.add_link(NodeId(0), NodeId(1), 400);
        let t5 = t.scaled(5);
        assert_eq!(t5.total_demand_gbps(), 2000);
        assert_eq!(t5.link(IpLinkId(0)).id, IpLinkId(0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_demand_rejected() {
        let mut t = IpTopology::new();
        t.add_link(NodeId(0), NodeId(1), 0);
    }
}
