//! The NSFNET T1 backbone: the 14-node reference topology of the optical
//! networking literature, as a third evaluation topology (the paper
//! argues FlexWAN "can be extended to other network topologies" — NSFNET
//! sits between the metro-heavy T-backbone and the continental CERNET in
//! path-length profile).

use crate::demand::{arrow_ip_topology, ArrowDemandConfig};
use crate::geo::fiber_km;
use crate::graph::Graph;
use crate::tbackbone::Backbone;

/// NSFNET node cities with (latitude, longitude).
pub const NSFNET_CITIES: &[(&str, f64, f64)] = &[
    ("Seattle", 47.61, -122.33),
    ("PaloAlto", 37.44, -122.14),
    ("SanDiego", 32.72, -117.16),
    ("SaltLake", 40.76, -111.89),
    ("Boulder", 40.01, -105.27),
    ("Houston", 29.76, -95.37),
    ("Lincoln", 40.81, -96.68),
    ("Champaign", 40.11, -88.24),
    ("Pittsburgh", 40.44, -79.99),
    ("AnnArbor", 42.28, -83.74),
    ("Ithaca", 42.44, -76.50),
    ("CollegePark", 38.99, -76.94),
    ("Princeton", 40.36, -74.66),
    ("Atlanta", 33.75, -84.39),
];

/// The 21 NSFNET T1 links.
pub const NSFNET_EDGES: &[(&str, &str)] = &[
    ("Seattle", "PaloAlto"),
    ("Seattle", "SaltLake"),
    ("Seattle", "Champaign"),
    ("PaloAlto", "SanDiego"),
    ("PaloAlto", "SaltLake"),
    ("SanDiego", "Houston"),
    ("SaltLake", "Boulder"),
    ("SaltLake", "AnnArbor"),
    ("Boulder", "Lincoln"),
    ("Boulder", "Houston"),
    ("Lincoln", "Champaign"),
    ("Houston", "Atlanta"),
    ("Houston", "CollegePark"),
    ("Champaign", "Pittsburgh"),
    ("AnnArbor", "Ithaca"),
    ("AnnArbor", "Princeton"),
    ("Pittsburgh", "Ithaca"),
    ("Pittsburgh", "Atlanta"),
    ("Ithaca", "Princeton"),
    ("Princeton", "CollegePark"),
    ("Atlanta", "CollegePark"),
];

/// Builds the NSFNET optical topology with geographically derived fiber
/// lengths.
pub fn nsfnet_optical() -> Graph {
    let mut g = Graph::new();
    for (name, _, _) in NSFNET_CITIES {
        g.add_node(*name);
    }
    let coord = |name: &str| -> (f64, f64) {
        NSFNET_CITIES
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, la, lo)| (la, lo))
            .unwrap_or_else(|| panic!("unknown NSFNET city {name}"))
    };
    for (a, b) in NSFNET_EDGES {
        let na = g.node_by_name(a).expect("city registered");
        let nb = g.node_by_name(b).expect("city registered");
        g.add_edge(na, nb, fiber_km(coord(a), coord(b)));
    }
    g
}

/// NSFNET with ARROW-style demands.
pub fn nsfnet(cfg: &ArrowDemandConfig) -> Backbone {
    let optical = nsfnet_optical();
    let ip = arrow_ip_topology(&optical, cfg);
    Backbone { optical, ip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ksp::shortest_path;
    use std::collections::HashSet;

    #[test]
    fn classic_shape() {
        let g = nsfnet_optical();
        assert_eq!(g.num_nodes(), 14);
        assert_eq!(g.num_edges(), 21);
        assert!(g.is_connected(&HashSet::new()));
    }

    #[test]
    fn survives_any_single_cut() {
        // NSFNET is 2-connected: restoration always has a detour.
        let g = nsfnet_optical();
        for e in g.edges() {
            assert!(g.is_connected(&[e.id].into_iter().collect()));
        }
    }

    #[test]
    fn coast_to_coast_distance() {
        let g = nsfnet_optical();
        let sea = g.node_by_name("Seattle").unwrap();
        let pri = g.node_by_name("Princeton").unwrap();
        let p = shortest_path(&g, sea, pri, &HashSet::new()).unwrap();
        // ~4000 km continental crossing with the 1.3 detour factor.
        assert!((3000..6500).contains(&p.length_km), "{} km", p.length_km);
    }

    #[test]
    fn plannable() {
        use crate::demand::ArrowDemandConfig;
        let b = nsfnet(&ArrowDemandConfig {
            ip_links: 40,
            ..Default::default()
        });
        assert_eq!(b.ip.num_links(), 40);
    }
}
