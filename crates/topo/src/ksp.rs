//! Shortest-path and K-shortest-paths (Yen) algorithms.
//!
//! Algorithm 1's input `P_{e,k}` — "the *k*-th optical path of link *e*" —
//! is a pre-computed set found with the K-shortest-paths algorithm on the
//! optical topology (§5). Restoration (§8) reruns KSP on the post-failure
//! topology, which we express as a set of banned edges.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::graph::{EdgeId, Graph, NodeId};
use crate::path::Path;

/// Reusable Dijkstra working memory: distance/predecessor arenas and the
/// frontier heap. One Yen run performs `O(k · |path|)` spur searches on
/// the same graph; allocating these per search dominated the KSP hot path
/// in the sweep profiles. The arenas are cleaned *sparsely* — only the
/// entries the previous search actually touched are reset — so a search
/// costs `O(settled)` to clean up, not `O(|V|)`.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<u64>,
    prev: Vec<Option<(EdgeId, NodeId)>>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    touched: Vec<u32>,
}

impl DijkstraScratch {
    /// A fresh scratch; arenas grow lazily to the graph's node count.
    pub fn new() -> DijkstraScratch {
        DijkstraScratch::default()
    }

    /// Prepares the arenas for a search over `n` nodes: grows them if the
    /// graph is larger than any seen before, then sparsely resets the
    /// entries dirtied by the previous search.
    fn reset(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, u64::MAX);
            self.prev.resize(n, None);
        }
        for &u in &self.touched {
            self.dist[u as usize] = u64::MAX;
            self.prev[u as usize] = None;
        }
        self.touched.clear();
        self.heap.clear();
    }
}

/// Dijkstra shortest path from `src` to `dst` avoiding `banned` edges.
///
/// Ties between equal-length paths are broken deterministically by edge id
/// so that planning runs are reproducible.
pub fn shortest_path(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    banned: &HashSet<EdgeId>,
) -> Option<Path> {
    shortest_path_scratch(graph, src, dst, banned, &mut DijkstraScratch::new())
}

/// [`shortest_path`] over caller-owned scratch memory — for callers that
/// run many searches on one graph (Yen, the route cache's miss path).
pub fn shortest_path_scratch(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    banned: &HashSet<EdgeId>,
    scratch: &mut DijkstraScratch,
) -> Option<Path> {
    shortest_path_banning_nodes(graph, src, dst, banned, &HashSet::new(), scratch)
}

/// Dijkstra avoiding both banned edges and banned (interior) nodes —
/// the spur-path subproblem of Yen's algorithm.
fn shortest_path_banning_nodes(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    banned_edges: &HashSet<EdgeId>,
    banned_nodes: &HashSet<NodeId>,
    scratch: &mut DijkstraScratch,
) -> Option<Path> {
    let n = graph.num_nodes();
    if src.0 as usize >= n || dst.0 as usize >= n || banned_nodes.contains(&src) {
        return None;
    }
    scratch.reset(n);
    let DijkstraScratch {
        dist,
        prev,
        heap,
        touched,
    } = scratch;
    dist[src.0 as usize] = 0;
    touched.push(src.0);
    heap.push(Reverse((0u64, src.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        // Keep settling until strictly past `dst`'s distance: heap ties
        // carry only `(dist, node-id)`, so on the first pop of `dst` an
        // equal-distance node may still be queued that would re-relax
        // `dst` through a lower — canonical — edge id. Breaking there
        // made the tie-break depend on node numbering; this does not.
        if d > dist[dst.0 as usize] {
            break;
        }
        if u == dst.0 {
            continue;
        }
        let u_node = NodeId(u);
        for (e, v) in graph.neighbors(u_node, banned_edges) {
            if banned_nodes.contains(&v) && v != dst {
                continue;
            }
            let nd = d + u64::from(graph.edge(e).length_km);
            let better = nd < dist[v.0 as usize]
                || (nd == dist[v.0 as usize] && prev[v.0 as usize].is_some_and(|(pe, _)| e < pe));
            if better {
                if dist[v.0 as usize] == u64::MAX {
                    touched.push(v.0);
                }
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = Some((e, u_node));
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    if dist[dst.0 as usize] == u64::MAX {
        return None;
    }
    // Reconstruct.
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (e, p) = prev[cur.0 as usize].expect("reachable node has predecessor");
        edges.push(e);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(Path::new(graph, nodes, edges))
}

/// Yen's algorithm: the `k` shortest loopless paths from `src` to `dst`,
/// avoiding `banned` edges, ordered by ascending length.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// distinct loopless paths.
pub fn k_shortest_paths(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    banned: &HashSet<EdgeId>,
) -> Vec<Path> {
    k_shortest_paths_scratch(graph, src, dst, k, banned, &mut DijkstraScratch::new())
}

/// [`k_shortest_paths`] over caller-owned Dijkstra scratch memory, shared
/// across every spur search of the Yen run (and across runs, when the
/// caller loops over many endpoint pairs of one graph).
pub fn k_shortest_paths_scratch(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    banned: &HashSet<EdgeId>,
    scratch: &mut DijkstraScratch,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let first = match shortest_path_scratch(graph, src, dst, banned, scratch) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut result = vec![first];
    // Candidate pool, kept sorted on extraction; (length, path) with a
    // dedup set to avoid inserting identical spur paths repeatedly.
    let mut candidates: Vec<Path> = Vec::new();
    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    seen.insert(result[0].edges.clone());
    // Spur-ban buffer, cleared and refilled per spur instead of cloning
    // the global ban set every iteration.
    let mut banned_edges: HashSet<EdgeId> = HashSet::new();

    while result.len() < k {
        let last = result.last().expect("at least one accepted path").clone();
        // Each node of the previous path (except the terminal) is a spur.
        for i in 0..last.edges.len() {
            let spur_node = last.nodes[i];
            let root_nodes = last.nodes[..=i].to_vec();
            let root_edges = last.edges[..i].to_vec();

            // Ban edges that would recreate any accepted path sharing this
            // root, plus all globally banned edges.
            banned_edges.clear();
            banned_edges.extend(banned.iter().copied());
            for p in result.iter() {
                if p.edges.len() > i
                    && p.edges[..i] == root_edges[..]
                    && p.nodes[..=i] == root_nodes[..]
                {
                    banned_edges.insert(p.edges[i]);
                }
            }
            // Ban root nodes (except the spur) to keep paths loopless.
            let banned_nodes: HashSet<NodeId> = root_nodes[..i].iter().copied().collect();

            if let Some(spur) = shortest_path_banning_nodes(
                graph,
                spur_node,
                dst,
                &banned_edges,
                &banned_nodes,
                scratch,
            ) {
                let mut nodes = root_nodes;
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut edges = root_edges;
                edges.extend_from_slice(&spur.edges);
                let total = Path::new(graph, nodes, edges);
                if !total.has_loop() && seen.insert(total.edges.clone()) {
                    candidates.push(total);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the best candidate (shortest; ties by edge sequence for
        // determinism).
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.length_km, p.edges.clone()))
            .map(|(i, _)| i)
            .expect("non-empty");
        result.push(candidates.swap_remove(best));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic Yen example grid:
    ///
    /// ```text
    ///   c --3-- d --4-- f
    ///  /|      /|      /
    /// 2 |     2 |     2
    /// |  \   /  |    /
    /// e --1-- . |   /
    ///  (c-e:1) g-3-h(via e--3--g? ) ...
    /// ```
    /// We use a simple 6-node graph with known 3 shortest paths.
    fn sample() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let c = g.add_node("c");
        let d = g.add_node("d");
        let e = g.add_node("e");
        let f = g.add_node("f");
        let gg = g.add_node("g");
        let h = g.add_node("h");
        g.add_edge(c, d, 3);
        g.add_edge(c, e, 2);
        g.add_edge(d, e, 1);
        g.add_edge(d, f, 4);
        g.add_edge(e, f, 2);
        g.add_edge(e, gg, 3);
        g.add_edge(f, gg, 2);
        g.add_edge(f, h, 1);
        g.add_edge(gg, h, 2);
        (g, c, h)
    }

    #[test]
    fn dijkstra_shortest() {
        let (g, c, h) = sample();
        let p = shortest_path(&g, c, h, &HashSet::new()).unwrap();
        // c-e(2) e-f(2) f-h(1) = 5.
        assert_eq!(p.length_km, 5);
        assert_eq!(p.num_hops(), 3);
    }

    #[test]
    fn dijkstra_respects_bans() {
        let (g, c, h) = sample();
        let best = shortest_path(&g, c, h, &HashSet::new()).unwrap();
        let banned: HashSet<_> = [best.edges[1]].into_iter().collect(); // cut e-f
        let p = shortest_path(&g, c, h, &banned).unwrap();
        assert!(p.length_km > 5 || !p.uses_edge(best.edges[1]));
        assert!(!p.uses_edge(best.edges[1]));
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1);
        assert!(shortest_path(&g, a, c, &HashSet::new()).is_none());
    }

    #[test]
    fn yen_orders_by_length_and_is_loopless() {
        let (g, c, h) = sample();
        let paths = k_shortest_paths(&g, c, h, 5, &HashSet::new());
        assert!(
            paths.len() >= 3,
            "expected ≥3 distinct paths, got {}",
            paths.len()
        );
        for w in paths.windows(2) {
            assert!(w[0].length_km <= w[1].length_km, "not sorted");
        }
        for p in &paths {
            assert!(!p.has_loop());
            assert_eq!(p.source(), c);
            assert_eq!(p.destination(), h);
        }
        // All distinct.
        let set: HashSet<_> = paths.iter().map(|p| p.edges.clone()).collect();
        assert_eq!(set.len(), paths.len());
        assert_eq!(paths[0].length_km, 5);
    }

    #[test]
    fn yen_k1_equals_dijkstra() {
        let (g, c, h) = sample();
        let p1 = k_shortest_paths(&g, c, h, 1, &HashSet::new());
        let d = shortest_path(&g, c, h, &HashSet::new()).unwrap();
        assert_eq!(p1, vec![d]);
    }

    #[test]
    fn yen_exhausts_small_graph() {
        // Two nodes, two parallel fibers: exactly two loopless paths.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 10);
        g.add_edge(a, b, 20);
        let paths = k_shortest_paths(&g, a, b, 10, &HashSet::new());
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].length_km, 10);
        assert_eq!(paths[1].length_km, 20);
    }

    #[test]
    fn yen_with_global_ban_models_fiber_cut() {
        let (g, c, h) = sample();
        let all = k_shortest_paths(&g, c, h, 3, &HashSet::new());
        let cut = all[0].edges[0];
        let after = k_shortest_paths(&g, c, h, 3, &[cut].into_iter().collect());
        for p in &after {
            assert!(!p.uses_edge(cut), "restored path must avoid the cut fiber");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One arena across repeated Yen runs, bans, and a different
        // (smaller) graph: sparse cleanup must leave no stale state.
        let (g, c, h) = sample();
        let mut scratch = DijkstraScratch::new();
        for _ in 0..3 {
            let reused = k_shortest_paths_scratch(&g, c, h, 4, &HashSet::new(), &mut scratch);
            assert_eq!(reused, k_shortest_paths(&g, c, h, 4, &HashSet::new()));
        }
        let cut: HashSet<_> = [k_shortest_paths(&g, c, h, 1, &HashSet::new())[0].edges[0]]
            .into_iter()
            .collect();
        assert_eq!(
            k_shortest_paths_scratch(&g, c, h, 3, &cut, &mut scratch),
            k_shortest_paths(&g, c, h, 3, &cut)
        );
        let mut g2 = Graph::new();
        let a2 = g2.add_node("a");
        let b2 = g2.add_node("b");
        g2.add_edge(a2, b2, 3);
        let p = shortest_path_scratch(&g2, a2, b2, &HashSet::new(), &mut scratch).unwrap();
        assert_eq!(p.length_km, 3);
    }

    #[test]
    fn yen_deterministic() {
        let (g, c, h) = sample();
        let a = k_shortest_paths(&g, c, h, 4, &HashSet::new());
        let b = k_shortest_paths(&g, c, h, 4, &HashSet::new());
        assert_eq!(a, b);
    }

    #[test]
    fn equal_cost_tie_takes_canonical_lowest_edge_id() {
        // Node ids are chosen so `t` (id 1) sorts before `u` (id 2) among
        // equal heap keys — the ordering the old first-pop break was
        // sensitive to. Two equal-cost ways into `t`: the direct edge e2
        // and the two-hop route ending in e1. The canonical rule (lowest
        // final edge id among equal-cost predecessors) must pick e1 no
        // matter in which order the heap surfaces the ties.
        let mut g = Graph::new();
        let s = g.add_node("s");
        let t = g.add_node("t");
        let u = g.add_node("u");
        g.add_edge(s, u, 4); // e0
        g.add_edge(u, t, 1); // e1
        g.add_edge(s, t, 5); // e2 — same total cost as e0+e1
        let p = shortest_path(&g, s, t, &HashSet::new()).unwrap();
        assert_eq!(p.length_km, 5);
        assert_eq!(
            p.edges.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![0, 1],
            "equal-cost tie must resolve to the lowest-edge-id predecessor"
        );
    }

    #[test]
    fn yen_deterministic_across_equal_cost_parallel_edges() {
        // A diamond where both the a→b hop and the b→d hop have two
        // parallel fibers of identical length: every complete path has the
        // same total length, so the edge-id canonicalization alone decides
        // the ordering. Yen's spur calls must keep returning the same
        // paths in the same order, run after run.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let d = g.add_node("d");
        g.add_edge(a, b, 5); // e0
        g.add_edge(a, b, 5); // e1 (parallel, equal cost)
        g.add_edge(b, d, 7); // e2
        g.add_edge(b, d, 7); // e3 (parallel, equal cost)
        let first = k_shortest_paths(&g, a, d, 4, &HashSet::new());
        assert_eq!(first.len(), 4, "2×2 parallel combinations");
        for p in &first {
            assert_eq!(p.length_km, 12);
        }
        // The shortest path must use the canonical (lowest-id) fibers.
        assert_eq!(
            first[0].edges.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![0, 2]
        );
        for _ in 0..5 {
            assert_eq!(k_shortest_paths(&g, a, d, 4, &HashSet::new()), first);
        }
    }
}
