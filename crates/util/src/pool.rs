//! A small scoped worker pool with *deterministic* parallel map.
//!
//! The evaluation sweeps (schemes × scales × failure scenarios) are
//! embarrassingly parallel, but the repo's contract — byte-identical
//! output for any thread count, the same discipline as the solver's
//! batch-parallel branch & bound — rules out naive work stealing with
//! order-dependent reduction. [`par_map`] and [`par_map_indexed`] give
//! the safe shape:
//!
//! * work items are split into **fixed contiguous chunks** handed to
//!   workers over the in-tree MPMC channel;
//! * each item is mapped by a pure function of the item (never of the
//!   thread or of other in-flight items);
//! * results are returned **in input order**, whatever order workers
//!   finished in.
//!
//! Consequently `par_map(items, t, f)` equals `items.iter().map(f)` for
//! every `t` — callers may reduce the returned vector sequentially and
//! stay bit-deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on auto-detected worker threads (sweeps are memory-light;
/// beyond this the channel coordination dominates).
pub const MAX_AUTO_THREADS: usize = 8;

/// Environment variable overriding the auto-detected thread count
/// (`0`/unset = auto). Lets CI and the bench harness pin serial vs
/// parallel runs without recompiling.
pub const THREADS_ENV: &str = "FLEXWAN_THREADS";

/// The worker-thread count used when a caller passes `threads == 0`:
/// [`THREADS_ENV`] when set to a positive integer, otherwise the
/// machine's available parallelism capped at [`MAX_AUTO_THREADS`].
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var(THREADS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(MAX_AUTO_THREADS)
}

/// How one [`par_map`] call used the pool — fodder for the
/// pool-utilization gauges in `flexwan-obs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads that ran (1 = the call degenerated to serial).
    pub threads: usize,
    /// Items mapped.
    pub items: usize,
    /// Fixed contiguous chunks the items were split into.
    pub chunks: usize,
}

/// Deterministic parallel map: `f` applied to every item, results in
/// input order, output invariant to `threads` (`0` = auto; `1` = serial
/// in-place). `f` must be pure per item for the contract to mean
/// anything — it is called exactly once per item either way.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, item| f(item)).0
}

/// [`par_map`] with the item index passed to `f`. Returns the mapped
/// vector plus the [`PoolStats`] of the run.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let workers = threads.min(items.len());
    if workers <= 1 {
        let out: Vec<R> = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
        let stats = PoolStats {
            threads: 1,
            items: items.len(),
            chunks: 1.min(items.len()),
        };
        return (out, stats);
    }

    // Fixed chunking: contiguous ranges of ~4 chunks per worker, so a
    // straggler chunk cannot idle the rest of the pool for long while
    // chunk boundaries stay cheap to coordinate.
    let chunk = items.len().div_ceil(workers * 4).max(1);
    let (task_tx, task_rx) = crate::sync::unbounded::<std::ops::Range<usize>>();
    let (res_tx, res_rx) = crate::sync::unbounded::<(usize, R)>();
    let mut chunks = 0usize;
    let mut start = 0usize;
    while start < items.len() {
        let end = (start + chunk).min(items.len());
        let _ = task_tx.send(start..end);
        chunks += 1;
        start = end;
    }
    drop(task_tx);

    let busy = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let (f, busy, peak) = (&f, &busy, &peak);
            scope.spawn(move || {
                for range in task_rx.iter() {
                    let now = busy.fetch_add(1, Ordering::Relaxed) + 1;
                    peak.fetch_max(now, Ordering::Relaxed);
                    for i in range {
                        let _ = res_tx.send((i, f(i, &items[i])));
                    }
                    busy.fetch_sub(1, Ordering::Relaxed);
                }
            });
        }
    });
    drop(res_tx);

    // Reassemble in input order: scheduling decided only *when* each
    // result arrived, never *where* it goes.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    while let Some((i, r)) = res_rx.try_recv() {
        debug_assert!(slots[i].is_none(), "item {i} mapped twice");
        slots[i] = Some(r);
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("every item mapped exactly once"))
        .collect();
    (
        out,
        PoolStats {
            threads: workers,
            items: items.len(),
            chunks,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, 4, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_thread_count_invariant() {
        let items: Vec<u64> = (0..57).collect();
        let serial = par_map(&items, 1, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        for t in [2, 3, 4, 8] {
            let parallel = par_map(&items, t, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
            assert_eq!(parallel, serial, "threads={t}");
        }
    }

    #[test]
    fn every_item_mapped_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..33).collect();
        let (out, stats) = par_map_indexed(&items, 4, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            i
        });
        assert_eq!(out.len(), 33);
        assert_eq!(calls.load(Ordering::Relaxed), 33);
        assert_eq!(stats.items, 33);
        assert!(stats.chunks >= stats.threads.min(33));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(&empty, 4, |&x| x), Vec::<u32>::new());
        let one = vec![7u32];
        let (out, stats) = par_map_indexed(&one, 4, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(stats.threads, 1, "one item degenerates to serial");
    }

    #[test]
    fn zero_threads_means_auto() {
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(par_map(&items, 0, |&x| x + 1), (1..=10).collect::<Vec<_>>());
        assert!(default_threads() >= 1);
    }

    #[test]
    fn serial_stats_report_one_thread() {
        let items: Vec<u32> = (0..5).collect();
        let (_, stats) = par_map_indexed(&items, 1, |_, &x| x);
        assert_eq!(
            stats,
            PoolStats {
                threads: 1,
                items: 5,
                chunks: 1
            }
        );
    }
}
