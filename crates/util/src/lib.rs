//! Dependency-free utility substrate for the FlexWAN reproduction.
//!
//! The build environment is fully offline, so everything the workspace
//! used to pull from crates.io is implemented here from `std` alone:
//!
//! * [`rng`] — a deterministic ChaCha-based PRNG (seeded, reproducible
//!   across platforms) replacing `rand`/`rand_chacha`;
//! * [`mod@json`] — a small JSON value model, parser and writer with
//!   [`json::ToJson`]/[`json::FromJson`] traits replacing
//!   `serde`/`serde_json`;
//! * [`sync`] — an unbounded MPMC channel with clonable receivers and
//!   `recv_timeout`, replacing `crossbeam::channel`;
//! * [`pool`] — a scoped worker pool with deterministic `par_map`
//!   (fixed chunking, input-order results, thread-count-invariant
//!   output) for the evaluation sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod pool;
pub mod rng;
pub mod sync;
