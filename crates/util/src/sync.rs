//! An unbounded MPMC channel with clonable senders *and* receivers.
//!
//! Replaces the workspace's former `crossbeam::channel` usage. Built on a
//! `Mutex<VecDeque>` + `Condvar`; throughput is ample for the control
//! plane's request/reply traffic (a handful of messages per device per
//! transaction). Disconnection semantics match crossbeam: a receive on an
//! empty channel whose senders are all dropped fails, and `recv_timeout`
//! distinguishes [`RecvTimeoutError::Timeout`] from
//! [`RecvTimeoutError::Disconnected`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Clonable: clones compete
/// for messages (MPMC), they do not each see every message.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone. The
/// unsent message is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("channel receive timed out"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cond: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one waiting receiver. Fails if every
    /// receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.cond.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            // Wake receivers blocked in recv so they observe disconnection.
            self.shared.cond.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.cond.wait(inner).unwrap();
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
        }
    }

    /// Takes a message if one is already queued; never blocks.
    pub fn try_recv(&self) -> Option<T> {
        self.shared.inner.lock().unwrap().queue.pop_front()
    }

    /// Blocking iterator over incoming messages; ends when every sender
    /// has been dropped and the queue is drained. The natural worker-loop
    /// shape: `for task in rx.iter() { … }`.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }

    #[test]
    fn disconnect_wakes_blocked_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn cloned_receivers_compete() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn cross_thread_traffic() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut seen = Vec::new();
        while let Ok(v) = rx.recv() {
            seen.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn iter_drains_then_ends_on_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let h = thread::spawn(move || {
            tx.send(5).unwrap();
            // Sender dropped here: iterator must terminate after draining.
        });
        let got: Vec<i32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }
}
