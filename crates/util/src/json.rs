//! Minimal JSON: value model, parser, writer, and (de)serialization
//! traits.
//!
//! Replaces the workspace's former `serde`/`serde_json` dependency. The
//! surface is deliberately small: a [`Value`] tree, a strict recursive
//! descent [`parse`], compact and pretty writers, and the
//! [`ToJson`]/[`FromJson`] traits that domain types implement by hand
//! (structs as objects with field names, enums externally tagged — the
//! same shapes serde derived, so on-disk formats are unchanged).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Num),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap) so output is canonical.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on objects; `None` on other kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Num::U(u)) => Some(*u),
            Value::Number(Num::I(i)) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Num::I(i)) => Some(*i),
            Value::Number(Num::U(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Num::U(u)) => Some(*u as f64),
            Value::Number(Num::I(i)) => Some(*i as f64),
            Value::Number(Num::F(f)) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Required object member, as a [`FromJson`] target.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, Error> {
        match self.get(key) {
            Some(v) => {
                T::from_json(v).map_err(|e| Error::new(format!("field `{key}`: {}", e.message)))
            }
            None => Err(Error::new(format!("missing field `{key}`"))),
        }
    }

    /// Writes the compact form (no whitespace, serde_json-compatible).
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_num(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn write_num(n: Num, out: &mut String) {
    match n {
        Num::U(u) => out.push_str(&u.to_string()),
        Num::I(i) => out.push_str(&i.to_string()),
        Num::F(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats recognizably floats on the wire.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; serde_json writes null.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

/// A JSON error: parse failures and shape mismatches.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
}

impl Error {
    /// A new error with `message`.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's formats; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Num::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Num::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Num::F(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected object")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after key")?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`]. Trailing non-whitespace is an
/// error.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// ---------------------------------------------------------------- traits

/// Serialization to a JSON [`Value`].
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Deserialization from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Reconstructs `Self`, rejecting shape mismatches.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

/// Serializes `t` compactly.
pub fn to_string<T: ToJson + ?Sized>(t: &T) -> String {
    let mut s = String::new();
    t.to_json().write_compact(&mut s);
    s
}

/// Serializes `t` with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(t: &T) -> String {
    let mut s = String::new();
    t.to_json().write_pretty(&mut s, 0);
    s
}

/// Parses and deserializes in one step.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    T::from_json(&parse(s)?)
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::Number(Num::U(*self as u64)) }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::new("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::new("integer out of range"))
            }
        }
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::Number(Num::U(x as u64)) }
        }
        impl From<&$t> for Value {
            fn from(x: &$t) -> Value { Value::Number(Num::U(*x as u64)) }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::Number(Num::I(*self as i64)) }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::new("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::new("integer out of range"))
            }
        }
        impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::Number(Num::I(x as i64)) }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Num::F(*self))
    }
}
impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(Num::F(x))
    }
}
impl From<&f64> for Value {
    fn from(x: &f64) -> Value {
        Value::Number(Num::F(*x))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}
impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}
impl From<&bool> for Value {
    fn from(x: &bool) -> Value {
        Value::Bool(*x)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        match o {
            Some(t) => t.into(),
            None => Value::Null,
        }
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}
impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Builds a [`Value`] with `serde_json`-style syntax:
/// `json!({ "op": "gain", "gain_db": 17.5 })`. Values go through
/// `Value::from`, so primitives, strings, `Option`s and nested `Value`s
/// all work. Unlike serde_json's macro, object values must be expressions
/// (no bare nested `{...}` literals) — pass a nested `json!({...})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {
        $crate::json::Value::obj([
            $( ($key, $crate::json::Value::from($val)) ),*
        ])
    };
    ([ $( $item:expr ),* $(,)? ]) => {
        $crate::json::Value::Array(vec![ $( $crate::json::Value::from($item) ),* ])
    };
    ($other:expr) => { $crate::json::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x\n\"y\""}"#;
        let v = parse(src).unwrap();
        let mut out = String::new();
        v.write_compact(&mut out);
        assert_eq!(parse(&out).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn numbers_keep_kind() {
        let v = parse("[7, -7, 7.5, 1e3]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(7));
        assert_eq!(a[1].as_i64(), Some(-7));
        assert_eq!(a[1].as_u64(), None);
        assert_eq!(a[2].as_u64(), None, "floats are not integers");
        assert_eq!(a[2].as_f64(), Some(7.5));
        assert_eq!(a[3].as_f64(), Some(1000.0));
    }

    #[test]
    fn floats_stay_floats_on_the_wire() {
        let mut s = String::new();
        Value::from(16.0f64).write_compact(&mut s);
        assert_eq!(s, "16.0");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{nope",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "01x",
            "{} trailing",
        ] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = crate::json!({ "op": "gain", "gain_db": 17.5, "port": Some(4u16), "none": Option::<u16>::None });
        assert_eq!(v.get("op").unwrap().as_str(), Some("gain"));
        assert_eq!(v.get("gain_db").unwrap().as_f64(), Some(17.5));
        assert_eq!(v.get("port").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn pretty_parses_back() {
        let v = crate::json!({ "nodes": crate::json!(["A", "B"]), "n": 2u32 });
        let pretty = {
            let mut s = String::new();
            v.write_pretty(&mut s, 0);
            s
        };
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn field_errors_name_the_key() {
        let v = parse(r#"{"a":1}"#).unwrap();
        let e = v.field::<u32>("missing").unwrap_err();
        assert!(e.to_string().contains("missing"));
        let e = v.field::<String>("a").unwrap_err();
        assert!(e.to_string().contains("`a`"));
    }
}
