//! Deterministic seeded PRNG: ChaCha with 8 double-rounds.
//!
//! A drop-in for the workspace's former `rand_chacha::ChaCha8Rng` usage:
//! seeded from a `u64`, identical output on every platform and every run,
//! which is what makes the fault-injection harness and the topology
//! generators reproducible. The key is expanded from the seed with
//! SplitMix64 (the same construction `rand_core` uses for
//! `seed_from_u64`), then the standard ChaCha block function generates the
//! stream.

/// The ChaCha quarter round.
#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 key expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        // "expa nd 3 2-by te k" constants.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (w, i) in s.iter_mut().zip(init) {
            *w = w.wrapping_add(i);
        }
        self.buf = s;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform sample from `range` (integer or float ranges, inclusive
    /// or half-open).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// A range that can be sampled uniformly by [`ChaCha8Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample(self, rng: &mut ChaCha8Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut ChaCha8Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut ChaCha8Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut ChaCha8Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let a = r.gen_range(5u32..10);
            assert!((5..10).contains(&a));
            let b = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&b));
            let c = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn uniformish() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "{buckets:?}");
        }
    }
}
