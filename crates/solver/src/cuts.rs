//! Cutting planes: knapsack cover cuts.
//!
//! Algorithm 1's capacity rows (`Σ d_j λ ≥ c`) and the per-slot conflict
//! rows are knapsack-structured over binaries, the classic habitat of
//! *cover cuts*: if a set `C` of binaries cannot all be 1 without
//! violating `Σ a_j x_j ≤ b`, then `Σ_{j∈C} x_j ≤ |C| − 1` is valid. The
//! branch & bound layer separates violated covers at the root
//! (cut-and-branch), which tightens the LP bound before any branching.

use crate::expr::{LinExpr, Var};
use crate::model::{Cmp, Model, Solution, VarKind};

/// A generated cut: `expr ≤ rhs`.
#[derive(Debug, Clone)]
pub struct Cut {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Right-hand side.
    pub rhs: f64,
}

/// Separates violated minimal cover cuts against the LP solution `lp`.
///
/// Only `≤` rows whose support is entirely binary with positive
/// coefficients are considered (the canonical knapsack form). Returns at
/// most `max_cuts` cuts, strongest violation first.
pub fn cover_cuts(model: &Model, lp: &Solution, max_cuts: usize) -> Vec<Cut> {
    let mut cuts: Vec<(f64, Cut)> = Vec::new();
    for c in &model.constraints {
        if c.cmp != Cmp::Le || !c.active {
            continue;
        }
        let e = c.expr.simplified();
        let b = c.rhs - e.constant;
        if b <= 0.0 || e.terms.is_empty() {
            continue;
        }
        if !e
            .terms
            .iter()
            .all(|&(v, k)| k > 0.0 && model.vars[v.0].kind == VarKind::Binary)
        {
            continue;
        }
        // Greedy cover: take items by ascending (1 − x*)/a until Σa > b.
        let mut items: Vec<(Var, f64, f64)> = e
            .terms
            .iter()
            .map(|&(v, a)| (v, a, (1.0 - lp.value(v)).max(0.0)))
            .collect();
        items.sort_by(|x, y| {
            (x.2 / x.1)
                .partial_cmp(&(y.2 / y.1))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut cover: Vec<(Var, f64, f64)> = Vec::new();
        let mut weight = 0.0;
        for &(v, a, slack) in &items {
            if weight > b {
                break;
            }
            cover.push((v, a, slack));
            weight += a;
        }
        if weight <= b {
            continue; // all items together fit: no cover exists
        }
        // Minimalize: drop items whose removal keeps it a cover.
        let mut i = 0;
        while i < cover.len() {
            if weight - cover[i].1 > b {
                weight -= cover[i].1;
                cover.remove(i);
            } else {
                i += 1;
            }
        }
        // Violation: Σ x* > |C| − 1  ⇔  Σ (1 − x*) < 1.
        let slack_sum: f64 = cover.iter().map(|&(_, _, s)| s).sum();
        if slack_sum < 1.0 - 1e-6 && cover.len() >= 2 {
            let expr = LinExpr::sum(cover.iter().map(|&(v, _, _)| 1.0 * v));
            let rhs = (cover.len() - 1) as f64;
            cuts.push((1.0 - slack_sum, Cut { expr, rhs }));
        }
    }
    cuts.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    cuts.truncate(max_cuts);
    cuts.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, Status};
    use crate::simplex::{relax, solve_lp};

    /// 3 items of weight 2 with capacity 3: any two form a cover.
    fn knapsack_3x2() -> (Model, Vec<Var>) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..3).map(|i| m.binary(format!("x{i}"))).collect();
        let w = LinExpr::sum(vars.iter().map(|&v| 2.0 * v));
        m.le(w, 3.0);
        let obj = LinExpr::sum(vars.iter().map(|&v| 1.0 * v));
        m.set_objective(Sense::Maximize, obj);
        (m, vars)
    }

    #[test]
    fn separates_violated_cover() {
        let (m, _) = knapsack_3x2();
        let lp = solve_lp(&relax(&m));
        assert_eq!(lp.status, Status::Optimal);
        // LP packs 1.5 items; the cover {i, j} with x* summing 1.5 > 1 is
        // violated.
        let cuts = cover_cuts(&m, &lp, 8);
        assert!(!cuts.is_empty(), "expected a violated cover");
        for cut in &cuts {
            // Valid for every integer-feasible point: both vars cannot be 1.
            assert_eq!(cut.rhs, 1.0);
            assert_eq!(cut.expr.terms.len(), 2);
            // And violated by the LP point.
            assert!(cut.expr.eval(&lp.values) > cut.rhs + 1e-6);
        }
    }

    #[test]
    fn no_cuts_when_lp_is_integral() {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.binary("y");
        m.le(x + y, 2.0); // never binding
        m.set_objective(Sense::Maximize, x + y);
        let lp = solve_lp(&relax(&m));
        assert!(cover_cuts(&m, &lp, 8).is_empty());
    }

    #[test]
    fn ignores_non_knapsack_rows() {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.nonneg("y"); // continuous: row not eligible
        m.le(2.0 * x + y, 1.0);
        m.ge(1.0 * x, 0.0); // Ge: not eligible
        m.set_objective(Sense::Maximize, x + y);
        let lp = solve_lp(&relax(&m));
        assert!(cover_cuts(&m, &lp, 8).is_empty());
    }

    #[test]
    fn cuts_preserve_the_integer_optimum() {
        let (m, vars) = knapsack_3x2();
        let lp = solve_lp(&relax(&m));
        let cuts = cover_cuts(&m, &lp, 8);
        let mut cut_model = m.clone();
        for c in &cuts {
            cut_model.le(c.expr.clone(), c.rhs);
        }
        let with = cut_model.solve();
        let without = m.solve();
        assert_eq!(with.status, Status::Optimal);
        assert!((with.objective - without.objective).abs() < 1e-6);
        assert_eq!(with.objective.round() as i64, 1);
        let _ = vars;
    }
}
