//! Linear and mixed-integer optimization for the FlexWAN reproduction.
//!
//! The paper solves its network-planning and restoration formulations with
//! Gurobi via Julia (§7). Gurobi is proprietary and unavailable offline, so
//! this crate provides a from-scratch replacement with the same modeling
//! surface:
//!
//! * [`expr`] — linear expressions over decision variables with natural
//!   operator syntax;
//! * [`model`] — a [`Model`] of variables (continuous,
//!   integer, binary), linear constraints and a min/max objective;
//! * [`simplex`] — a sparse revised two-phase simplex (LU + eta-file
//!   basis updates, bounded variables, dual-simplex warm starts), with a
//!   Dantzig→Bland pricing switch for guaranteed termination;
//! * [`branch_bound`] — best-first branch & bound for MIPs on top of the
//!   LP relaxation, with basis-inheriting warm starts, diving, and
//!   deterministic batch-parallel node evaluation;
//! * [`incremental`] — an [`IncrementalSolver`]
//!   that re-solves a mutated model (rhs changes, row de/activation,
//!   appended rows) warm from the previous basis instead of cold;
//! * [`mod@presolve`] — model reductions (singleton rows, fixings, bound
//!   tightening) applied before the heavy machinery;
//! * [`cuts`] — knapsack cover cuts separated at the branch & bound root
//!   (cut-and-branch);
//! * [`observe`] — bridge mirroring [`SolverStats`]
//!   into the `flexwan-obs` metrics registry.
//!
//! The solver is *exact*: it is used to validate the scalable planning
//! heuristics on small instances (see `flexwan-core`), exactly as the
//! paper validates against its MIP optimum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod cuts;
pub mod expr;
pub mod incremental;
pub mod model;
pub mod observe;
pub mod presolve;
pub mod simplex;

pub use expr::{LinExpr, Var};
pub use incremental::IncrementalSolver;
pub use model::{
    Cmp, GroupId, Model, RowId, Sense, Solution, SolveOptions, SolverStats, Status, VarKind,
};
pub use observe::record_solver_stats;
pub use presolve::{presolve, solve_presolved, Presolved, Reduction};
pub use simplex::{solve_lp, solve_lp_with_duals, solve_lp_with_stats};
