//! Two-phase primal simplex with native bounded variables.
//!
//! Variables live in `[0, u]` after a lower-bound shift; upper bounds are
//! handled by the *upper-bounded simplex* technique (nonbasic variables
//! rest at either bound, entering steps may terminate in a bound flip
//! instead of a pivot) rather than by explicit constraint rows. This
//! matters enormously for the branch & bound layer: every binary variable
//! would otherwise add a row, and the paper's Algorithm 1 instances are
//! binary-heavy.
//!
//! Dantzig pricing with an automatic switch to Bland's rule after an
//! iteration budget guarantees termination on degenerate problems.

use crate::model::{Cmp, Model, Sense, Solution, Status, VarKind};

const EPS: f64 = 1e-9;

/// Solves a pure-LP [`Model`] (integer kinds are relaxed if present; the
/// MIP layer relies on this).
pub fn solve_lp(model: &Model) -> Solution {
    Tableau::build(model).solve(model).0
}

/// Solves a pure LP and additionally returns the dual value (shadow
/// price) of every constraint: `∂objective/∂rhs` at the optimum, in the
/// model's own sense (a maximization's binding `≤` capacity row gets a
/// non-negative dual — the marginal value of one more unit of rhs).
/// `None` when the LP is not solved to optimality.
pub fn solve_lp_with_duals(model: &Model) -> (Solution, Option<Vec<f64>>) {
    Tableau::build(model).solve(model)
}

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum At {
    Lower,
    Upper,
    Basic,
}

/// Standard-form tableau with bounded structural variables.
///
/// Columns: `[structural (shifted, ∈ [0, u]) | slack/surplus | artificial]`.
/// The matrix is kept canonical w.r.t. the current basis (basis columns
/// are unit columns), `beta[i]` is the value of the `i`-th basic variable.
struct Tableau {
    a: Vec<Vec<f64>>,
    /// Current basic-variable values (≥ 0, ≤ their bound).
    beta: Vec<f64>,
    /// Upper bound per column (∞ for slacks/artificials and unbounded
    /// structurals).
    upper: Vec<f64>,
    /// Phase-2 cost per column.
    cost: Vec<f64>,
    basis: Vec<usize>,
    status: Vec<At>,
    artificials: std::ops::Range<usize>,
    /// Per original constraint row: the column that was the identity unit
    /// for that row at build time plus its sign (+1 slack/artificial, −1
    /// surplus) — the handle for reading dual values out of the final
    /// canonical tableau.
    row_marker: Vec<(usize, f64)>,
    /// Constant objective offset from lower-bound shifts, in the internal
    /// minimization sense.
    offset: f64,
    negated: bool,
}

enum IterOutcome {
    Optimal,
    Unbounded,
}

impl Tableau {
    fn build(model: &Model) -> Tableau {
        let n = model.vars.len();
        let negated = model.sense == Some(Sense::Maximize);

        let mut cost = vec![0.0; n];
        for &(v, c) in &model.objective.terms {
            cost[v.0] += if negated { -c } else { c };
        }
        let mut offset = if negated { -model.objective.constant } else { model.objective.constant };
        for (j, vd) in model.vars.iter().enumerate() {
            offset += cost[j] * vd.lower;
        }

        // Rows: model constraints, shifted by variable lower bounds and
        // normalized to rhs ≥ 0.
        struct Row {
            coeffs: Vec<(usize, f64)>,
            cmp: Cmp,
            rhs: f64,
            /// −1 when the row was negated during normalization (the dual
            /// of the original row flips sign with it).
            flipped_sign: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len());
        for c in &model.constraints {
            let mut rhs = c.rhs - c.expr.constant;
            let mut coeffs = Vec::with_capacity(c.expr.terms.len());
            for &(v, k) in &c.expr.terms {
                rhs -= k * model.vars[v.0].lower;
                coeffs.push((v.0, k));
            }
            rows.push(Row { coeffs, cmp: c.cmp, rhs, flipped_sign: 1.0 });
        }
        for r in &mut rows {
            if r.rhs < 0.0 {
                r.rhs = -r.rhs;
                for (_, k) in &mut r.coeffs {
                    *k = -*k;
                }
                r.flipped_sign = -1.0;
                r.cmp = match r.cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        let m = rows.len();
        let n_slack = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
        let n_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
        let cols = n + n_slack + n_art;
        let mut a = vec![vec![0.0; cols]; m];
        let mut beta = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut row_marker = vec![(usize::MAX, 1.0); m];
        let mut next_slack = n;
        let mut next_art = n + n_slack;
        for (i, r) in rows.iter().enumerate() {
            for &(j, k) in &r.coeffs {
                a[i][j] += k;
            }
            beta[i] = r.rhs;
            match r.cmp {
                Cmp::Le => {
                    a[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    row_marker[i] = (next_slack, r.flipped_sign);
                    next_slack += 1;
                }
                Cmp::Ge => {
                    a[i][next_slack] = -1.0;
                    next_slack += 1;
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    row_marker[i] = (next_art, r.flipped_sign);
                    next_art += 1;
                }
                Cmp::Eq => {
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    row_marker[i] = (next_art, r.flipped_sign);
                    next_art += 1;
                }
            }
        }
        cost.resize(cols, 0.0);

        let mut upper = vec![f64::INFINITY; cols];
        for (j, vd) in model.vars.iter().enumerate() {
            upper[j] = vd.upper - vd.lower;
        }
        let mut status = vec![At::Lower; cols];
        for &b in &basis {
            status[b] = At::Basic;
        }

        Tableau {
            a,
            beta,
            upper,
            cost,
            basis,
            status,
            artificials: (n + n_slack)..cols,
            row_marker,
            offset,
            negated,
        }
    }

    /// Dual value (shadow price, ∂objective/∂rhs in the *model's* sense)
    /// of each original constraint row, valid at phase-2 optimality.
    ///
    /// For row `i` with build-time unit column `u_i` (its slack or
    /// artificial), `y_i = c_B·B⁻¹·e_i = c_B·a[:, u_i]` (surplus columns
    /// carry `−e_i`, handled by the marker sign; normalization flips are
    /// undone the same way). Maximization problems were solved as negated
    /// minimizations, so the sign flips back at the end.
    fn duals(&self, cost: &[f64]) -> Vec<f64> {
        self.row_marker
            .iter()
            .map(|&(col, sign)| {
                let mut y = 0.0;
                for (i, &b) in self.basis.iter().enumerate() {
                    let cb = cost[b];
                    if cb != 0.0 {
                        y += cb * self.a[i][col];
                    }
                }
                let y = y * sign;
                if self.negated {
                    -y
                } else {
                    y
                }
            })
            .collect()
    }

    /// Runs phases 1 and 2; returns the solution plus (at optimality)
    /// the constraint duals.
    fn solve(mut self, model: &Model) -> (Solution, Option<Vec<f64>>) {
        let n_model = model.vars.len();
        let infeasible = Solution {
            status: Status::Infeasible,
            objective: f64::NAN,
            values: vec![f64::NAN; n_model],
        };

        if !self.artificials.is_empty() {
            let cols = self.cost.len();
            let phase1: Vec<f64> = (0..cols)
                .map(|j| if self.artificials.contains(&j) { 1.0 } else { 0.0 })
                .collect();
            match self.iterate(&phase1, true) {
                IterOutcome::Optimal => {
                    if self.objective_of(&phase1) > 1e-6 {
                        return (infeasible, None);
                    }
                }
                IterOutcome::Unbounded => unreachable!("phase-1 objective bounded below by 0"),
            }
            self.drive_out_artificials();
        }

        let cost = self.cost.clone();
        match self.iterate(&cost, false) {
            IterOutcome::Unbounded => (
                Solution {
                    status: Status::Unbounded,
                    objective: if self.negated { f64::INFINITY } else { f64::NEG_INFINITY },
                    values: vec![f64::NAN; n_model],
                },
                None,
            ),
            IterOutcome::Optimal => {
                let mut values = vec![0.0; n_model];
                for (j, v) in values.iter_mut().enumerate() {
                    *v = self.value_of(j);
                }
                for (j, vd) in model.vars.iter().enumerate() {
                    values[j] += vd.lower;
                }
                let total = self.objective_of(&cost) + self.offset;
                let duals = self.duals(&cost);
                (
                    Solution {
                        status: Status::Optimal,
                        objective: if self.negated { -total } else { total },
                        values,
                    },
                    Some(duals),
                )
            }
        }
    }

    /// Current value of column `j` in shifted coordinates.
    fn value_of(&self, j: usize) -> f64 {
        match self.status[j] {
            At::Lower => 0.0,
            At::Upper => self.upper[j],
            At::Basic => {
                let i = self.basis.iter().position(|&b| b == j).expect("basic col in basis");
                self.beta[i]
            }
        }
    }

    /// Objective of the current solution under `cost`.
    fn objective_of(&self, cost: &[f64]) -> f64 {
        let mut obj = 0.0;
        for (i, &b) in self.basis.iter().enumerate() {
            obj += cost[b] * self.beta[i];
        }
        for (j, &c) in cost.iter().enumerate() {
            if self.status[j] == At::Upper {
                obj += c * self.upper[j];
            }
        }
        obj
    }

    /// After phase 1, pivot basic artificials out (or leave redundant rows
    /// harmlessly basic at zero).
    fn drive_out_artificials(&mut self) {
        for i in 0..self.basis.len() {
            if self.artificials.contains(&self.basis[i]) {
                debug_assert!(self.beta[i].abs() <= 1e-6, "artificial basic at nonzero");
                if let Some(j) = (0..self.artificials.start).find(|&j| {
                    self.status[j] != At::Basic && self.a[i][j].abs() > EPS
                }) {
                    self.pivot(i, j, self.value_of(j));
                }
            }
        }
    }

    /// Reduced cost of nonbasic column `j` under `cost`.
    fn reduced_cost(&self, cost: &[f64], j: usize) -> f64 {
        let mut r = cost[j];
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                r -= cb * self.a[i][j];
            }
        }
        r
    }

    /// Bounded-variable simplex iterations minimizing `cost`. In phase 2
    /// (`allow_artificials == false`) artificial columns never enter.
    fn iterate(&mut self, cost: &[f64], allow_artificials: bool) -> IterOutcome {
        let m = self.a.len();
        let cols = self.cost.len();
        if m == 0 {
            // No constraints: push every profitable bounded column to its
            // better bound; unbounded if a profitable column has u = ∞.
            for (j, &r) in cost.iter().enumerate().take(cols) {
                if r < -EPS {
                    if self.upper[j].is_infinite() {
                        return IterOutcome::Unbounded;
                    }
                    self.status[j] = At::Upper;
                }
            }
            return IterOutcome::Optimal;
        }
        let budget_dantzig = 50 * (m + cols);
        let hard_cap = budget_dantzig + 500 * (m + cols);
        let mut iters = 0usize;
        loop {
            iters += 1;
            assert!(iters < hard_cap, "simplex exceeded {hard_cap} iterations");
            let bland = iters > budget_dantzig;

            // Entering: at-lower with r < 0 (increase) or at-upper with
            // r > 0 (decrease).
            let mut entering: Option<(usize, f64)> = None; // (col, direction)
            let mut best = 1e-7;
            for j in 0..cols {
                if self.status[j] == At::Basic {
                    continue;
                }
                if !allow_artificials && self.artificials.contains(&j) {
                    continue;
                }
                let r = self.reduced_cost(cost, j);
                let (viol, dir) = match self.status[j] {
                    At::Lower => (-r, 1.0),
                    At::Upper => (r, -1.0),
                    At::Basic => unreachable!(),
                };
                if viol > best {
                    entering = Some((j, dir));
                    if bland {
                        break;
                    }
                    best = viol;
                }
            }
            let Some((j, dir)) = entering else {
                return IterOutcome::Optimal;
            };

            // Ratio test: step t ≥ 0 of the entering variable away from
            // its bound. Basic i changes by −t·dir·a[i][j].
            let mut t_max = self.upper[j]; // entering reaches its other bound
            let mut leave: Option<(usize, At)> = None; // (row, bound it hits)
            for i in 0..m {
                let delta = dir * self.a[i][j];
                if delta > EPS {
                    // Basic decreases toward 0.
                    let t = self.beta[i] / delta;
                    if t < t_max - EPS
                        || (t < t_max + EPS
                            && leave.is_some_and(|(li, _)| self.basis[i] < self.basis[li]))
                    {
                        t_max = t.max(0.0);
                        leave = Some((i, At::Lower));
                    }
                } else if delta < -EPS {
                    // Basic increases toward its upper bound.
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        let t = (ub - self.beta[i]) / (-delta);
                        if t < t_max - EPS
                            || (t < t_max + EPS
                                && leave.is_some_and(|(li, _)| self.basis[i] < self.basis[li]))
                        {
                            t_max = t.max(0.0);
                            leave = Some((i, At::Upper));
                        }
                    }
                }
            }
            if t_max.is_infinite() {
                return IterOutcome::Unbounded;
            }

            match leave {
                None => {
                    // Bound flip: entering crosses to its other bound.
                    debug_assert!(self.upper[j].is_finite());
                    for i in 0..m {
                        self.beta[i] -= t_max * dir * self.a[i][j];
                        if self.beta[i] < 0.0 && self.beta[i] > -1e-9 {
                            self.beta[i] = 0.0;
                        }
                    }
                    self.status[j] = match self.status[j] {
                        At::Lower => At::Upper,
                        At::Upper => At::Lower,
                        At::Basic => unreachable!(),
                    };
                }
                Some((row, hit)) => {
                    // Entering becomes basic at value (from-lower: t; from
                    // upper: u − t).
                    let entering_value = match self.status[j] {
                        At::Lower => t_max,
                        At::Upper => self.upper[j] - t_max,
                        At::Basic => unreachable!(),
                    };
                    // Update the other basics for the step.
                    for i in 0..m {
                        if i != row {
                            self.beta[i] -= t_max * dir * self.a[i][j];
                            if self.beta[i] < 0.0 && self.beta[i] > -1e-9 {
                                self.beta[i] = 0.0;
                            }
                        }
                    }
                    let leaving = self.basis[row];
                    self.status[leaving] = hit;
                    self.pivot(row, j, entering_value);
                }
            }
        }
    }

    /// Gauss-Jordan pivot making column `col` basic in `row` with the
    /// given basic value.
    fn pivot(&mut self, row: usize, col: usize, value: f64) {
        let m = self.a.len();
        let cols = self.a[0].len();
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
        for j in 0..cols {
            self.a[row][j] /= p;
        }
        for i in 0..m {
            if i != row {
                let f = self.a[i][col];
                if f != 0.0 {
                    for j in 0..cols {
                        self.a[i][j] -= f * self.a[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
        self.status[col] = At::Basic;
        self.beta[row] = value.max(0.0);
    }
}

/// Relaxes integer/binary kinds to continuous (for LP relaxations).
pub fn relax(model: &Model) -> Model {
    let mut m = model.clone();
    for v in &mut m.vars {
        v.kind = VarKind::Continuous;
    }
    m
}

/// Convenience: the value of `v` rounded if its kind is integral.
pub fn rounded_value(model: &Model, sol: &Solution, v: crate::expr::Var) -> f64 {
    match model.vars[v.0].kind {
        VarKind::Continuous => sol.value(v),
        _ => sol.value(v).round(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn textbook_max_lp() {
        // max 3x + 2y st x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4,0), obj 12.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.le(x + y, 4.0);
        m.le(x + 3.0 * y, 6.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 12.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 4.0).abs() < 1e-6);
        assert!(s.value(y).abs() < 1e-6);
    }

    #[test]
    fn min_with_ge_constraints() {
        // min 2x + 3y st x + y ≥ 10, x ≥ 2, y ≥ 3 → x=7,y=3, obj 23.
        let mut m = Model::new();
        let x = m.continuous("x", 2.0, f64::INFINITY);
        let y = m.continuous("y", 3.0, f64::INFINITY);
        m.ge(x + y, 10.0);
        m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 23.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 7.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 4, x − y = 1 → x=2,y=1, obj 3.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.eq(x + 2.0 * y, 4.0);
        m.eq(x - y, 1.0);
        m.set_objective(Sense::Minimize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(1.0 * x, 1.0);
        m.ge(1.0 * x, 2.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.ge(x - y, 1.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.solve().status, Status::Unbounded);
    }

    #[test]
    fn bounded_above_is_not_unbounded() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 5.0);
        m.set_objective(Sense::Maximize, 2.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.value(x) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x ≥ −3 → −3.
        let mut m = Model::new();
        let x = m.continuous("x", -3.0, 10.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 3.0).abs() < 1e-6);
        assert!((s.value(x) + 3.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 2.0);
        m.set_objective(Sense::Minimize, 1.0 * x + 100.0);
        let s = m.solve();
        assert!((s.objective - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        let z = m.nonneg("z");
        m.le(x + y + z, 1.0);
        m.le(x + y, 1.0);
        m.le(1.0 * x, 1.0);
        m.set_objective(Sense::Maximize, 2.0 * x + 1.0 * y + 1.0 * z);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = Model::new();
        let x = m.continuous("x", 1.0, 4.0);
        let y = m.continuous("y", 0.0, 3.0);
        m.le(2.0 * x + y, 7.0);
        m.ge(x + y, 2.0);
        m.set_objective(Sense::Maximize, x + 2.0 * y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!(m.is_feasible(&s.values, 1e-6));
        // Optimum: y=3, then x ≤ 2 → obj 8.
        assert!((s.objective - 8.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.eq(x + y, 2.0);
        m.eq(x + y, 2.0);
        m.eq(x - y, 0.0);
        m.set_objective(Sense::Minimize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    // --- bounded-variable-specific behaviour ---

    #[test]
    fn bound_flip_without_pivot() {
        // max x + y st x + y ≤ 10, x ≤ 3, y ≤ 4 (bounds, not rows)
        // → x=3, y=4, obj 7; reaching it requires nonbasic bound flips.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 3.0);
        let y = m.continuous("y", 0.0, 4.0);
        m.le(x + y, 10.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn basic_variable_leaves_at_upper() {
        // max 2x + y st x − y ≤ 1, x ≤ 4, y ≤ 2 → x=3,y=2? check: x−y≤1 →
        // x ≤ 3; obj 8.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 4.0);
        let y = m.continuous("y", 0.0, 2.0);
        m.le(x - y, 1.0);
        m.set_objective(Sense::Maximize, 2.0 * x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 8.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn binaries_relaxed_without_extra_rows() {
        // 40 relaxed binaries, one knapsack row: the LP must solve fast
        // and land on the fractional knapsack optimum.
        let mut m = Model::new();
        let vars: Vec<_> = (0..40).map(|i| m.continuous(format!("x{i}"), 0.0, 1.0)).collect();
        let w = crate::expr::LinExpr::sum(vars.iter().map(|&v| 1.0 * v));
        m.le(w, 10.5);
        let obj = crate::expr::LinExpr::sum(
            vars.iter().enumerate().map(|(i, &v)| ((i % 5 + 1) as f64) * v),
        );
        m.set_objective(Sense::Maximize, obj);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        // 8 items of value 5, then 2 of value 4, then 0.5 of value 4:
        // = 40 + 8 + 2 = 50? Compute exactly: capacities of 10.5 units of
        // weight 1; best values: 8×5 + 2.5×4 = 50.
        assert!((s.objective - 50.0).abs() < 1e-6, "obj={}", s.objective);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut m = Model::new();
        let x = m.continuous("x", 2.5, 2.5);
        let y = m.continuous("y", 0.0, 10.0);
        m.le(x + y, 5.0);
        m.set_objective(Sense::Maximize, 3.0 * x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 2.5).abs() < 1e-6);
        assert!((s.value(y) - 2.5).abs() < 1e-6);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_via_bounds_and_row() {
        // x ∈ [0, 2], y ∈ [0, 2], x + y ≥ 5 → infeasible.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 2.0);
        let y = m.continuous("y", 0.0, 2.0);
        m.ge(x + y, 5.0);
        m.set_objective(Sense::Minimize, x + y);
        assert_eq!(m.solve().status, Status::Infeasible);
    }

    #[test]
    fn duals_match_finite_differences() {
        // max 3x + 2y st x + y ≤ 4, x + 3y ≤ 6: optimum (4, 0) with the
        // first row binding (dual 3) and the second slack (dual 0).
        let build = |r1: f64, r2: f64| {
            let mut m = Model::new();
            let x = m.nonneg("x");
            let y = m.nonneg("y");
            m.le(x + y, r1);
            m.le(x + 3.0 * y, r2);
            m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
            m
        };
        let (sol, duals) = solve_lp_with_duals(&build(4.0, 6.0));
        assert_eq!(sol.status, Status::Optimal);
        let duals = duals.unwrap();
        assert!((duals[0] - 3.0).abs() < 1e-6, "{duals:?}");
        assert!(duals[1].abs() < 1e-6, "{duals:?}");
        // Finite difference on the binding row agrees.
        let d = 1e-3;
        let bumped = build(4.0 + d, 6.0).solve();
        assert!(((bumped.objective - sol.objective) / d - duals[0]).abs() < 1e-6);
    }

    #[test]
    fn duals_for_min_with_ge_row() {
        // min 2x + 3y st x + y ≥ 10 (binding): dual = 2 (the cheaper
        // variable absorbs extra requirement).
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.ge(x + y, 10.0);
        m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
        let (sol, duals) = solve_lp_with_duals(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert!((duals.unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn duals_for_equality_row() {
        // min x + y st x + 2y = 4, x − y = 1 → duals from y = cB·B⁻¹:
        // finite-difference check on the first equality.
        let build = |r: f64| {
            let mut m = Model::new();
            let x = m.nonneg("x");
            let y = m.nonneg("y");
            m.eq(x + 2.0 * y, r);
            m.eq(x - y, 1.0);
            m.set_objective(Sense::Minimize, x + y);
            m
        };
        let (sol, duals) = solve_lp_with_duals(&build(4.0));
        let duals = duals.unwrap();
        let d = 1e-3;
        let bumped = build(4.0 + d).solve();
        assert!(
            ((bumped.objective - sol.objective) / d - duals[0]).abs() < 1e-5,
            "dual {} vs fd {}",
            duals[0],
            (bumped.objective - sol.objective) / d
        );
    }

    #[test]
    fn duals_with_negative_rhs_row() {
        // A row that gets normalized (rhs < 0): −x ≤ −2 ⇔ x ≥ 2; dual of
        // the *original* row must match finite differences on it.
        let build = |r: f64| {
            let mut m = Model::new();
            let x = m.continuous("x", 0.0, 10.0);
            m.le(-1.0 * x, r);
            m.set_objective(Sense::Minimize, 5.0 * x);
            m
        };
        let (sol, duals) = solve_lp_with_duals(&build(-2.0));
        let duals = duals.unwrap();
        let d = 1e-3;
        let bumped = build(-2.0 + d).solve();
        assert!(
            ((bumped.objective - sol.objective) / d - duals[0]).abs() < 1e-5,
            "dual {} vs fd {}",
            duals[0],
            (bumped.objective - sol.objective) / d
        );
    }

    #[test]
    fn minimize_pushes_to_upper_when_profitable() {
        // min −x with x ∈ [0, 7] and a slack row: x ends at its upper
        // bound without the row binding.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 7.0);
        let y = m.nonneg("y");
        m.le(x + y, 100.0);
        m.set_objective(Sense::Minimize, -1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 7.0).abs() < 1e-6);
        assert!((s.objective + 7.0).abs() < 1e-6);
    }
}
