//! Sparse revised simplex with native bounded variables.
//!
//! The constraint matrix is held column-wise as sparse `(row, coeff)`
//! lists; the basis inverse is represented as a dense LU factorization
//! (partial pivoting) composed with an *eta file* (product-form update),
//! refactorized every `MAX_ETAS` pivots. Pivots therefore cost
//! `O(m² + nnz)` instead of the dense tableau's `O(m·cols)` full-matrix
//! sweep, and — crucially for branch & bound — a solved basis can be
//! snapshotted (`BasisState`) and re-installed in a child node, where a
//! **dual simplex** pass repairs the handful of bound violations the
//! branching introduced instead of re-solving from scratch.
//!
//! Variables keep their native `[lo, up]` bounds (the *bounded-variable*
//! technique: nonbasic columns rest at either bound, entering steps may
//! terminate in a bound flip instead of a pivot). This matters enormously
//! for the branch & bound layer: every binary variable would otherwise add
//! a row, and the paper's Algorithm 1 instances are binary-heavy.
//!
//! Dantzig pricing with an automatic switch to Bland's rule after an
//! iteration budget guarantees termination on degenerate problems; a hard
//! iteration cap degrades to [`Status::Error`] instead of panicking.

use crate::model::{Cmp, Model, Sense, Solution, SolverStats, Status};
use crate::VarKind;
use std::sync::Arc;
use std::time::Instant;

pub(crate) const EPS: f64 = 1e-9;
/// Reduced-cost / pivot-eligibility tolerance.
const PRICE_TOL: f64 = 1e-7;
/// Primal feasibility tolerance used by the dual simplex.
const FEAS_TOL: f64 = 1e-7;
/// Eta-file length that triggers a refactorization.
const MAX_ETAS: usize = 48;
/// Phase-1 objective above this ⇒ infeasible.
const PHASE1_TOL: f64 = 1e-6;

/// Solves a pure-LP [`Model`] (integer kinds are relaxed if present; the
/// MIP layer relies on this).
pub fn solve_lp(model: &Model) -> Solution {
    let mut stats = SolverStats::default();
    solve_lp_collecting(model, &mut stats, None)
}

/// Solves a pure LP and additionally returns the dual value (shadow
/// price) of every constraint: `∂objective/∂rhs` at the optimum, in the
/// model's own sense. A maximization's binding `≤` capacity row gets a
/// non-negative dual (the marginal value of one more unit of rhs); by the
/// same rule a *minimization* with a binding `≥` requirement row also gets
/// a non-negative dual (one more unit of requirement costs that much).
/// `None` when the LP is not solved to optimality.
pub fn solve_lp_with_duals(model: &Model) -> (Solution, Option<Vec<f64>>) {
    let mut stats = SolverStats::default();
    let mut duals = None;
    let sol = solve_lp_collecting(model, &mut stats, Some(&mut duals));
    (sol, duals)
}

/// [`solve_lp`] that also reports the solve's [`SolverStats`].
pub fn solve_lp_with_stats(model: &Model) -> (Solution, SolverStats) {
    let mut stats = SolverStats::default();
    let sol = solve_lp_collecting(model, &mut stats, None);
    (sol, stats)
}

/// Internal LP entry point: solves `model` as an LP (relaxing integer
/// kinds), accumulating counters into `stats` and optionally writing the
/// constraint duals.
pub(crate) fn solve_lp_collecting(
    model: &Model,
    stats: &mut SolverStats,
    duals_out: Option<&mut Option<Vec<f64>>>,
) -> Solution {
    let n = model.vars.len();
    if let Err(_e) = model.check_data() {
        return Solution::sentinel(Status::Error, n);
    }
    let inst = Arc::new(Instance::build(model));
    let mut ctx = Ctx::new(inst);
    let outcome = ctx.solve_cold();
    stats.merge(&ctx.stats);
    let sol = ctx.extract_solution(outcome);
    if let Some(out) = duals_out {
        *out = if sol.status == Status::Optimal {
            Some(ctx.duals())
        } else {
            None
        };
    }
    sol
}

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VStat {
    /// Resting at its lower bound.
    Lower,
    /// Resting at its upper bound.
    Upper,
    /// In the basis.
    Basic,
}

/// LP solve outcome, pre-`Solution` (the B&B layer works with this
/// directly to avoid allocating value vectors for pruned nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LpOutcome {
    /// Optimal basis reached.
    Optimal,
    /// Primal infeasible.
    Infeasible,
    /// Objective unbounded.
    Unbounded,
    /// Internal safety limit hit (iteration cap, singular refactorization
    /// loop) — treated like an exception, not like infeasibility.
    Error,
}

/// Snapshot of a solved basis, cheap to clone and hand to a child node.
#[derive(Debug, Clone)]
pub(crate) struct BasisState {
    basis: Vec<u32>,
    vstat: Vec<VStat>,
}

impl BasisState {
    /// Rows of the instance the snapshot was taken on.
    pub(crate) fn num_rows(&self) -> usize {
        self.basis.len()
    }

    /// Structural columns of the instance the snapshot was taken on
    /// (recovered from the `n + 3m` column layout).
    pub(crate) fn num_structurals(&self) -> usize {
        self.vstat.len() - 3 * self.basis.len()
    }

    /// Re-targets the snapshot at an instance that appended
    /// `new_m − old_m` rows after this basis was captured (same `n`).
    ///
    /// The column layout is `[0, n)` structural, `[n, n+m)` logical,
    /// `[n+m, n+3m)` artificial, so appending rows shifts every artificial
    /// column up by `new_m − old_m` while structural and existing logical
    /// columns keep their indices. Each appended row gets its own logical
    /// column as its basic variable — the identity sub-basis — so the
    /// extended matrix stays nonsingular whenever the original was, and
    /// the dual simplex of [`Ctx::solve_warm`] repairs whatever primal
    /// violation the new rows introduce.
    pub(crate) fn extended(&self, new_m: usize) -> BasisState {
        let old_m = self.num_rows();
        debug_assert!(new_m >= old_m, "rows are never removed, only deactivated");
        if new_m == old_m {
            return self.clone();
        }
        let n = self.num_structurals();
        let shift = new_m - old_m;
        let remap = |j: usize| if j < n + old_m { j } else { j + shift };
        let mut vstat = vec![VStat::Lower; n + 3 * new_m];
        for (j, &s) in self.vstat.iter().enumerate() {
            vstat[remap(j)] = s;
        }
        let mut basis: Vec<u32> = self
            .basis
            .iter()
            .map(|&b| remap(b as usize) as u32)
            .collect();
        for i in old_m..new_m {
            let li = n + i;
            vstat[li] = VStat::Basic;
            basis.push(li as u32);
        }
        BasisState { basis, vstat }
    }
}

/// Immutable sparse standard form shared by every node of a B&B tree.
///
/// Columns: `[0, n)` structural (native model bounds), `[n, n+m)` one `+1`
/// logical per row (bounds encode the comparison: `≤` → `[0, ∞)`, `≥` →
/// `(−∞, 0]`, `=` → `[0, 0]`), `[n+m, n+3m)` artificial pairs `±e_i`
/// normally fixed to `[0, 0]` and only widened while phase 1 runs. With
/// this layout `A·x + s = rhs` holds row-for-row with no normalization
/// flips, so duals read directly off `y = B⁻ᵀ·c_B`.
pub(crate) struct Instance {
    m: usize,
    n: usize,
    /// Structural + logical columns (`n + m`) — the columns eligible to
    /// enter a basis. Artificials only ever *leave*.
    ncols: usize,
    art_start: usize,
    total: usize,
    cols: Vec<Vec<(u32, f64)>>,
    lo: Vec<f64>,
    up: Vec<f64>,
    /// Phase-2 cost in the internal minimization sense (0 beyond `n`).
    cost: Vec<f64>,
    rhs: Vec<f64>,
    obj_constant: f64,
    negated: bool,
}

impl Instance {
    pub(crate) fn build(model: &Model) -> Instance {
        let n = model.vars.len();
        let m = model.constraints.len();
        let negated = model.sense == Some(Sense::Maximize);
        let ncols = n + m;
        let art_start = ncols;
        let total = n + 3 * m;

        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); total];
        let mut lo = vec![0.0; total];
        let mut up = vec![0.0; total];
        let mut rhs = vec![0.0; m];

        for (j, vd) in model.vars.iter().enumerate() {
            lo[j] = vd.lower;
            up[j] = vd.upper;
        }
        let mut merged: Vec<(usize, f64)> = Vec::new();
        for (i, c) in model.constraints.iter().enumerate() {
            // Deactivated rows keep their slot — same `m`, same logical /
            // artificial columns, same dual index — but are built as the
            // trivially-satisfied empty row `0 cmp 0` (its slack sits at 0,
            // which every cmp's logical bounds admit). This is what keeps a
            // stored `BasisState` structurally valid across
            // `Model::deactivate_row` mutations.
            if !c.active {
                rhs[i] = 0.0;
            } else {
                rhs[i] = c.rhs - c.expr.constant;
            }
            merged.clear();
            if c.active {
                merged.extend(c.expr.terms.iter().map(|&(v, k)| (v.0, k)));
            }
            merged.sort_unstable_by_key(|&(j, _)| j);
            let mut idx = 0;
            while idx < merged.len() {
                let (j, mut k) = merged[idx];
                let mut next = idx + 1;
                while next < merged.len() && merged[next].0 == j {
                    k += merged[next].1;
                    next += 1;
                }
                if k != 0.0 {
                    cols[j].push((i as u32, k));
                }
                idx = next;
            }
            let li = n + i;
            cols[li].push((i as u32, 1.0));
            let (l, u) = match c.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lo[li] = l;
            up[li] = u;
            cols[art_start + 2 * i].push((i as u32, 1.0));
            cols[art_start + 2 * i + 1].push((i as u32, -1.0));
            // Artificial bounds stay [0, 0]; Ctx widens them for phase 1.
        }

        let mut cost = vec![0.0; total];
        for &(v, c) in &model.objective.terms {
            cost[v.0] += if negated { -c } else { c };
        }
        let obj_constant = if negated {
            -model.objective.constant
        } else {
            model.objective.constant
        };

        Instance {
            m,
            n,
            ncols,
            art_start,
            total,
            cols,
            lo,
            up,
            cost,
            rhs,
            obj_constant,
            negated,
        }
    }

    /// Objective of structural values `x` (model space), in the model's
    /// own sense.
    pub(crate) fn model_objective(&self, x: &[f64]) -> f64 {
        let mut obj = self.obj_constant;
        for (j, &v) in x.iter().enumerate() {
            obj += self.cost[j] * v;
        }
        if self.negated {
            -obj
        } else {
            obj
        }
    }

    /// Base (un-branched) lower bound of structural column `j`.
    pub(crate) fn base_lo(&self, j: usize) -> f64 {
        self.lo[j]
    }

    /// Base (un-branched) upper bound of structural column `j`.
    pub(crate) fn base_up(&self, j: usize) -> f64 {
        self.up[j]
    }
}

/// Dense LU factorization of the basis matrix with partial pivoting:
/// `P·B = L·U` with unit-diagonal `L` stored below the diagonal of `lu`
/// and `U` on/above it; `piv[k]` records the row swapped with `k`.
struct Lu {
    m: usize,
    lu: Vec<f64>,
    piv: Vec<u32>,
}

impl Lu {
    /// Factorizes the matrix whose `k`-th column is the sparse column
    /// `cols[basis[k]]`. `None` when (numerically) singular.
    fn factor(inst: &Instance, basis: &[u32]) -> Option<Lu> {
        let m = inst.m;
        let mut a = vec![0.0; m * m];
        for (k, &b) in basis.iter().enumerate() {
            for &(i, v) in &inst.cols[b as usize] {
                a[i as usize * m + k] = v;
            }
        }
        let mut piv = vec![0u32; m];
        for k in 0..m {
            let mut p = k;
            let mut best = a[k * m + k].abs();
            for i in k + 1..m {
                let v = a[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-10 {
                return None;
            }
            piv[k] = p as u32;
            if p != k {
                for j in 0..m {
                    a.swap(k * m + j, p * m + j);
                }
            }
            let d = a[k * m + k];
            for i in k + 1..m {
                let l = a[i * m + k] / d;
                if l != 0.0 {
                    a[i * m + k] = l;
                    for j in k + 1..m {
                        a[i * m + j] -= l * a[k * m + j];
                    }
                } else {
                    a[i * m + k] = 0.0;
                }
            }
        }
        Some(Lu { m, lu: a, piv })
    }

    /// Solves `B·x = v` in place.
    fn ftran(&self, v: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            let p = self.piv[k] as usize;
            if p != k {
                v.swap(k, p);
            }
        }
        for k in 0..m {
            let t = v[k];
            if t != 0.0 {
                for (i, vi) in v.iter_mut().enumerate().skip(k + 1) {
                    *vi -= self.lu[i * m + k] * t;
                }
            }
        }
        for k in (0..m).rev() {
            let t = v[k] / self.lu[k * m + k];
            v[k] = t;
            if t != 0.0 {
                for (i, vi) in v.iter_mut().enumerate().take(k) {
                    *vi -= self.lu[i * m + k] * t;
                }
            }
        }
    }

    /// Solves `Bᵀ·y = v` in place.
    fn btran(&self, v: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            let mut t = v[k];
            for (i, &vi) in v.iter().enumerate().take(k) {
                t -= self.lu[i * m + k] * vi;
            }
            v[k] = t / self.lu[k * m + k];
        }
        for k in (0..m).rev() {
            let mut t = v[k];
            for (i, &vi) in v.iter().enumerate().skip(k + 1) {
                t -= self.lu[i * m + k] * vi;
            }
            v[k] = t;
        }
        for k in (0..m).rev() {
            let p = self.piv[k] as usize;
            if p != k {
                v.swap(k, p);
            }
        }
    }
}

/// One product-form update: basis column `r` was replaced by a column
/// whose FTRAN'd image was `w` (`wr = w[r]`, `rest` the other nonzeros).
struct Eta {
    r: u32,
    wr: f64,
    rest: Vec<(u32, f64)>,
}

impl Eta {
    fn ftran(&self, v: &mut [f64]) {
        let t = v[self.r as usize] / self.wr;
        v[self.r as usize] = t;
        if t != 0.0 {
            for &(i, w) in &self.rest {
                v[i as usize] -= w * t;
            }
        }
    }

    fn btran(&self, v: &mut [f64]) {
        let mut t = v[self.r as usize];
        for &(i, w) in &self.rest {
            t -= w * v[i as usize];
        }
        v[self.r as usize] = t / self.wr;
    }
}

enum PrimalOutcome {
    Optimal,
    Unbounded,
    Error,
}

/// Mutable solver state over a shared [`Instance`]: working bounds,
/// basis, factorization, and counters. Reusable across B&B nodes — each
/// [`Ctx::solve_cold`] / [`Ctx::solve_warm`] fully resets what it needs,
/// so a worker thread can keep one `Ctx` hot for its whole lifetime.
pub(crate) struct Ctx {
    inst: Arc<Instance>,
    lo: Vec<f64>,
    up: Vec<f64>,
    vstat: Vec<VStat>,
    basis: Vec<u32>,
    /// Column → basis row (−1 when nonbasic).
    pos: Vec<i32>,
    lu: Option<Lu>,
    etas: Vec<Eta>,
    /// Values of the basic variables, row-aligned with `basis`.
    xb: Vec<f64>,
    scratch: Vec<f64>,
    ybuf: Vec<f64>,
    pub(crate) stats: SolverStats,
    /// Dantzig-iteration budget multiplier before switching to Bland's
    /// rule (test hook; production value 50).
    pub(crate) dantzig_factor: usize,
    /// Hard iteration-cap override (test hook for the `Error` path).
    pub(crate) iter_cap_override: Option<usize>,
}

impl Ctx {
    pub(crate) fn new(inst: Arc<Instance>) -> Ctx {
        let m = inst.m;
        let total = inst.total;
        Ctx {
            lo: inst.lo.clone(),
            up: inst.up.clone(),
            vstat: vec![VStat::Lower; total],
            basis: vec![0; m],
            pos: vec![-1; total],
            lu: None,
            etas: Vec::new(),
            xb: vec![0.0; m],
            scratch: vec![0.0; m],
            ybuf: vec![0.0; m],
            stats: SolverStats::default(),
            dantzig_factor: 50,
            iter_cap_override: None,
            inst,
        }
    }

    /// Resets working bounds to the instance's and applies the node's
    /// tightenings. Artificial bounds always come back to `[0, 0]`.
    pub(crate) fn set_bounds(&mut self, changes: &[(usize, f64, f64)]) {
        self.lo.copy_from_slice(&self.inst.lo);
        self.up.copy_from_slice(&self.inst.up);
        for &(j, l, u) in changes {
            self.lo[j] = l;
            self.up[j] = u;
        }
    }

    /// Nonbasic resting value of column `j` (callers guarantee the chosen
    /// bound is finite).
    fn rest_value(&self, j: usize) -> f64 {
        match self.vstat[j] {
            VStat::Lower => self.lo[j],
            VStat::Upper => self.up[j],
            VStat::Basic => self.xb[self.pos[j] as usize],
        }
    }

    /// Full FTRAN: factorization then eta file in creation order.
    fn full_ftran(&self, v: &mut [f64]) {
        if let Some(lu) = &self.lu {
            lu.ftran(v);
        }
        for e in &self.etas {
            e.ftran(v);
        }
    }

    /// Full BTRAN: eta file in reverse order, then the factorization.
    fn full_btran(&self, v: &mut [f64]) {
        for e in self.etas.iter().rev() {
            e.btran(v);
        }
        if let Some(lu) = &self.lu {
            lu.btran(v);
        }
    }

    /// Scatters sparse column `j` into `out` and FTRANs it.
    fn ftran_col(&self, j: usize, out: &mut [f64]) {
        out.fill(0.0);
        for &(i, v) in &self.inst.cols[j] {
            out[i as usize] = v;
        }
        self.full_ftran(out);
    }

    /// `y = B⁻ᵀ·cost_B` into `self.ybuf`.
    fn compute_y(&mut self, cost: &[f64]) {
        let mut y = std::mem::take(&mut self.ybuf);
        for (k, &b) in self.basis.iter().enumerate() {
            y[k] = cost[b as usize];
        }
        self.full_btran(&mut y);
        self.ybuf = y;
    }

    /// Reduced cost of column `j` given `self.ybuf` holds `y`.
    fn reduced_cost(&self, cost: &[f64], j: usize) -> f64 {
        let mut d = cost[j];
        for &(i, v) in &self.inst.cols[j] {
            d -= self.ybuf[i as usize] * v;
        }
        d
    }

    /// Recomputes `xb = B⁻¹·(rhs − A_N·x_N)` from the current vstat.
    fn compute_xb(&mut self) {
        // Deliberately a fresh allocation: this can run from `pivot` while
        // a caller holds the shared scratch buffer.
        let mut b = self.inst.rhs.clone();
        for j in 0..self.inst.total {
            if self.vstat[j] == VStat::Basic {
                continue;
            }
            let v = match self.vstat[j] {
                VStat::Lower => self.lo[j],
                VStat::Upper => self.up[j],
                VStat::Basic => unreachable!(),
            };
            if v != 0.0 {
                for &(i, a) in &self.inst.cols[j] {
                    b[i as usize] -= a * v;
                }
            }
        }
        self.full_ftran(&mut b);
        self.xb.copy_from_slice(&b);
    }

    /// Rebuilds the LU from the current basis and clears the eta file.
    /// `false` when the basis matrix is singular.
    fn refactor(&mut self) -> bool {
        self.stats.refactorizations += 1;
        self.etas.clear();
        match Lu::factor(&self.inst, &self.basis) {
            Some(lu) => {
                self.lu = Some(lu);
                true
            }
            None => {
                self.lu = None;
                false
            }
        }
    }

    /// Applies a pivot: column `q` enters at basis row `r` with value
    /// `value`; `w` is the FTRAN'd entering column. `leaving_stat` is the
    /// bound the leaving variable rests on — it must be recorded *before*
    /// the eta-cap refactorization below, whose `compute_xb` rebuilds the
    /// basic values from every nonbasic resting value and would otherwise
    /// still see the leaving variable as basic and drop its contribution.
    fn pivot(&mut self, r: usize, q: usize, value: f64, w: &[f64], leaving_stat: VStat) {
        let leaving = self.basis[r] as usize;
        self.pos[leaving] = -1;
        self.vstat[leaving] = leaving_stat;
        self.basis[r] = q as u32;
        self.pos[q] = r as i32;
        self.vstat[q] = VStat::Basic;
        self.xb[r] = value;
        let rest: Vec<(u32, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v.abs() > 1e-12)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        self.etas.push(Eta {
            r: r as u32,
            wr: w[r],
            rest,
        });
        if self.etas.len() >= MAX_ETAS {
            // Refactorization failure after a legal pivot would mean the
            // updated basis went numerically singular; recompute from the
            // column data and keep going — primal/dual loops detect a
            // truly broken factorization via their own safeguards.
            let _ = self.refactor();
            self.compute_xb();
        }
    }

    /// Snaps a slightly out-of-bound basic value back to its bound.
    fn snap(&mut self, i: usize) {
        let b = self.basis[i] as usize;
        if self.xb[i] < self.lo[b] && self.xb[i] > self.lo[b] - 1e-9 {
            self.xb[i] = self.lo[b];
        } else if self.xb[i] > self.up[b] && self.xb[i] < self.up[b] + 1e-9 {
            self.xb[i] = self.up[b];
        }
    }

    /// Cold start: crash an all-logical basis, run phase 1 with the
    /// artificial pair of each violated row, then phase 2.
    pub(crate) fn solve_cold(&mut self) -> LpOutcome {
        self.stats.cold_solves += 1;
        let inst = Arc::clone(&self.inst);
        let m = inst.m;

        // Reset any prior node's state.
        self.etas.clear();
        self.pos.iter_mut().for_each(|p| *p = -1);
        for j in 0..inst.total {
            self.vstat[j] = if self.lo[j].is_finite() {
                VStat::Lower
            } else {
                VStat::Upper
            };
        }

        if m == 0 {
            // No constraints: every profitable bounded column goes to its
            // better bound; unbounded if a profitable column has u = ∞.
            for j in 0..inst.n {
                let c = inst.cost[j];
                if c < -EPS {
                    if self.up[j].is_infinite() {
                        return LpOutcome::Unbounded;
                    }
                    self.vstat[j] = VStat::Upper;
                } else if c > EPS && self.lo[j].is_infinite() {
                    return LpOutcome::Unbounded;
                }
            }
            self.lu = None;
            return LpOutcome::Optimal;
        }

        // Residual of each row at the nonbasic resting point (logical and
        // artificial columns rest at 0, so only structurals contribute).
        let mut resid = self.inst.rhs.clone();
        for j in 0..inst.n {
            let v = match self.vstat[j] {
                VStat::Lower => self.lo[j],
                VStat::Upper => self.up[j],
                VStat::Basic => unreachable!(),
            };
            if v != 0.0 {
                for &(i, a) in &inst.cols[j] {
                    resid[i as usize] -= a * v;
                }
            }
        }

        let mut need_phase1 = false;
        for (i, &r) in resid.iter().enumerate() {
            let li = inst.n + i;
            let slot = if self.lo[li] - FEAS_TOL <= r && r <= self.up[li] + FEAS_TOL {
                self.xb[i] = r.clamp(self.lo[li], self.up[li]);
                li
            } else if r > 0.0 {
                let aj = inst.art_start + 2 * i;
                self.up[aj] = f64::INFINITY;
                self.xb[i] = r;
                need_phase1 = true;
                aj
            } else {
                let aj = inst.art_start + 2 * i + 1;
                self.up[aj] = f64::INFINITY;
                self.xb[i] = -r;
                need_phase1 = true;
                aj
            };
            self.basis[i] = slot as u32;
            self.pos[slot] = i as i32;
            self.vstat[slot] = VStat::Basic;
        }
        if !self.refactor() {
            return LpOutcome::Error; // all-unit basis: cannot happen
        }

        if need_phase1 {
            let t0 = Instant::now();
            let mut p1cost = vec![0.0; inst.total];
            p1cost[inst.art_start..].fill(1.0);
            let out = self.primal(&p1cost, true);
            self.stats.time_phase1 += t0.elapsed();
            match out {
                PrimalOutcome::Optimal => {}
                PrimalOutcome::Unbounded | PrimalOutcome::Error => return LpOutcome::Error,
            }
            let mut infeas = 0.0;
            for (i, &b) in self.basis.iter().enumerate() {
                if b as usize >= inst.art_start {
                    infeas += self.xb[i].max(0.0);
                }
            }
            // Re-fix artificials; basic ones either carry the infeasibility
            // (reported below) or sit harmlessly at ~0 on redundant rows.
            for j in inst.art_start..inst.total {
                self.up[j] = 0.0;
            }
            if infeas > PHASE1_TOL {
                return LpOutcome::Infeasible;
            }
            self.drive_out_artificials();
        }

        let t0 = Instant::now();
        let cost = inst.cost.clone();
        let out = self.primal(&cost, false);
        self.stats.time_phase2 += t0.elapsed();
        match out {
            PrimalOutcome::Optimal => LpOutcome::Optimal,
            PrimalOutcome::Unbounded => LpOutcome::Unbounded,
            PrimalOutcome::Error => LpOutcome::Error,
        }
    }

    /// After phase 1: pivot basic artificials out where possible (or
    /// leave redundant rows harmlessly basic at zero).
    fn drive_out_artificials(&mut self) {
        let inst = Arc::clone(&self.inst);
        for r in 0..inst.m {
            if (self.basis[r] as usize) < inst.art_start {
                continue;
            }
            // ρ = r-th row of B⁻¹; α_j = ρ·A_j is the pivot element.
            let mut rho = std::mem::take(&mut self.ybuf);
            rho.fill(0.0);
            rho[r] = 1.0;
            self.full_btran(&mut rho);
            let mut enter = None;
            for j in 0..inst.ncols {
                if self.vstat[j] == VStat::Basic {
                    continue;
                }
                let mut alpha = 0.0;
                for &(i, v) in &inst.cols[j] {
                    alpha += rho[i as usize] * v;
                }
                if alpha.abs() > PRICE_TOL {
                    enter = Some(j);
                    break;
                }
            }
            self.ybuf = rho;
            if let Some(q) = enter {
                // Zero-step pivot: q becomes basic at its resting value.
                let value = self.rest_value(q);
                let mut w = std::mem::take(&mut self.scratch);
                self.ftran_col(q, &mut w);
                self.pivot(r, q, value, &w, VStat::Lower);
                self.scratch = w;
            }
        }
    }

    /// Bounded-variable primal simplex minimizing `cost`. Artificial
    /// columns never enter (phase 1 starts with them basic and only drives
    /// them out, which is safe because a feasible problem's restricted
    /// phase-1 optimum is still 0).
    fn primal(&mut self, cost: &[f64], phase1: bool) -> PrimalOutcome {
        let inst = Arc::clone(&self.inst);
        let m = inst.m;
        let budget_dantzig = self.dantzig_factor * (m + inst.ncols);
        let hard_cap = match self.iter_cap_override {
            Some(cap) => cap,
            None => budget_dantzig + 500 * (m + inst.ncols),
        };
        let mut iters = 0usize;
        loop {
            iters += 1;
            if iters >= hard_cap.max(1) {
                return PrimalOutcome::Error;
            }
            let bland = iters > budget_dantzig;

            self.compute_y(cost);
            // Entering: at-lower with d < 0 (increase) or at-upper with
            // d > 0 (decrease).
            let mut entering: Option<(usize, f64)> = None; // (col, direction)
            let mut best = PRICE_TOL;
            for j in 0..inst.ncols {
                if self.vstat[j] == VStat::Basic || self.lo[j] == self.up[j] {
                    continue;
                }
                let d = self.reduced_cost(cost, j);
                let (viol, dir) = match self.vstat[j] {
                    VStat::Lower => (-d, 1.0),
                    VStat::Upper => (d, -1.0),
                    VStat::Basic => unreachable!(),
                };
                if viol > best {
                    entering = Some((j, dir));
                    if bland {
                        break;
                    }
                    best = viol;
                }
            }
            let Some((q, dir)) = entering else {
                return PrimalOutcome::Optimal;
            };

            let mut w = std::mem::take(&mut self.scratch);
            self.ftran_col(q, &mut w);

            // Ratio test: step t ≥ 0 of the entering variable away from
            // its bound. Basic i changes by −t·dir·w[i].
            let mut t_max = self.up[q] - self.lo[q]; // bound-flip distance
            let mut leave: Option<(usize, VStat)> = None; // (row, bound hit)
            for (i, &wi) in w.iter().enumerate() {
                let delta = dir * wi;
                let b = self.basis[i] as usize;
                if delta > EPS {
                    if self.lo[b].is_finite() {
                        let t = (self.xb[i] - self.lo[b]) / delta;
                        if t < t_max - EPS
                            || (t < t_max + EPS
                                && leave.is_some_and(|(li, _)| self.basis[i] < self.basis[li]))
                        {
                            t_max = t.max(0.0);
                            leave = Some((i, VStat::Lower));
                        }
                    }
                } else if delta < -EPS && self.up[b].is_finite() {
                    let t = (self.up[b] - self.xb[i]) / (-delta);
                    if t < t_max - EPS
                        || (t < t_max + EPS
                            && leave.is_some_and(|(li, _)| self.basis[i] < self.basis[li]))
                    {
                        t_max = t.max(0.0);
                        leave = Some((i, VStat::Upper));
                    }
                }
            }
            if t_max.is_infinite() {
                self.scratch = w;
                return PrimalOutcome::Unbounded;
            }

            match leave {
                None => {
                    // Bound flip: entering crosses to its other bound.
                    self.stats.bound_flips += 1;
                    for (i, &wi) in w.iter().enumerate() {
                        if wi != 0.0 {
                            self.xb[i] -= t_max * dir * wi;
                            self.snap(i);
                        }
                    }
                    self.vstat[q] = match self.vstat[q] {
                        VStat::Lower => VStat::Upper,
                        VStat::Upper => VStat::Lower,
                        VStat::Basic => unreachable!(),
                    };
                }
                Some((r, hit)) => {
                    if phase1 {
                        self.stats.phase1_pivots += 1;
                    } else {
                        self.stats.phase2_pivots += 1;
                    }
                    let value = match self.vstat[q] {
                        VStat::Lower => self.lo[q] + t_max,
                        VStat::Upper => self.up[q] - t_max,
                        VStat::Basic => unreachable!(),
                    };
                    for (i, &wi) in w.iter().enumerate() {
                        if i != r && wi != 0.0 {
                            self.xb[i] -= t_max * dir * wi;
                            self.snap(i);
                        }
                    }
                    self.pivot(r, q, value, &w, hit);
                }
            }
            self.scratch = w;
        }
    }

    /// Warm start: install `from` (or keep the current basis when `None`,
    /// the diving case), repair primal feasibility with the dual simplex,
    /// then run a phase-2 primal cleanup. Falls back to a cold solve when
    /// the basis is singular or the dual budget runs out.
    pub(crate) fn solve_warm(&mut self, from: Option<&BasisState>) -> LpOutcome {
        let inst = Arc::clone(&self.inst);
        if inst.m == 0 {
            return self.solve_cold();
        }
        if let Some(bs) = from {
            self.basis.copy_from_slice(&bs.basis);
            self.vstat.copy_from_slice(&bs.vstat);
            self.pos.iter_mut().for_each(|p| *p = -1);
            for (r, &b) in self.basis.iter().enumerate() {
                self.pos[b as usize] = r as i32;
            }
            if !self.refactor() {
                return self.solve_cold();
            }
        }
        // A parent basis can leave a variable nonbasic on a bound the
        // child no longer has (branching replaced ∞ by a finite bound, or
        // vice versa the rest state references a bound that moved).
        for j in 0..inst.ncols {
            match self.vstat[j] {
                VStat::Lower if !self.lo[j].is_finite() => self.vstat[j] = VStat::Upper,
                VStat::Upper if !self.up[j].is_finite() => self.vstat[j] = VStat::Lower,
                _ => {}
            }
        }
        self.compute_xb();

        let t0 = Instant::now();
        let out = self.dual();
        self.stats.time_dual += t0.elapsed();
        let out = match out {
            DualOutcome::Feasible => {
                let t1 = Instant::now();
                let cost = inst.cost.clone();
                let o = self.primal(&cost, false);
                self.stats.time_phase2 += t1.elapsed();
                match o {
                    PrimalOutcome::Optimal => LpOutcome::Optimal,
                    PrimalOutcome::Unbounded => LpOutcome::Unbounded,
                    PrimalOutcome::Error => LpOutcome::Error,
                }
            }
            DualOutcome::Infeasible => LpOutcome::Infeasible,
            DualOutcome::GiveUp => return self.solve_cold(),
        };
        if out == LpOutcome::Optimal || out == LpOutcome::Infeasible {
            self.stats.warm_solves += 1;
        }
        out
    }

    /// Dual simplex: repeatedly kick the most-violated basic variable to
    /// its violated bound, entering the best price-ratio nonbasic column.
    fn dual(&mut self) -> DualOutcome {
        let inst = Arc::clone(&self.inst);
        let m = inst.m;
        let budget = 30 * (m + inst.ncols) + 10;
        let cost = &inst.cost;
        for _ in 0..budget {
            // Leaving: most infeasible basic (ties → lowest column id).
            let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, below)
            for i in 0..m {
                let b = self.basis[i] as usize;
                let (viol, below) = if self.xb[i] < self.lo[b] - FEAS_TOL {
                    (self.lo[b] - self.xb[i], true)
                } else if self.xb[i] > self.up[b] + FEAS_TOL {
                    (self.xb[i] - self.up[b], false)
                } else {
                    continue;
                };
                let better = match leave {
                    None => true,
                    Some((li, lv, _)) => {
                        viol > lv + EPS || (viol > lv - EPS && self.basis[i] < self.basis[li])
                    }
                };
                if better {
                    leave = Some((i, viol, below));
                }
            }
            let Some((r, _, below)) = leave else {
                return DualOutcome::Feasible;
            };
            self.stats.dual_pivots += 1;

            // ρ = r-th row of B⁻¹; y for reduced costs.
            let mut rho = vec![0.0; m];
            rho[r] = 1.0;
            self.full_btran(&mut rho);
            self.compute_y(cost);

            let mut enter: Option<(usize, f64)> = None; // (col, ratio)
            for j in 0..inst.ncols {
                if self.vstat[j] == VStat::Basic || self.lo[j] == self.up[j] {
                    continue;
                }
                let mut alpha = 0.0;
                for &(i, v) in &inst.cols[j] {
                    alpha += rho[i as usize] * v;
                }
                let eligible = if below {
                    (self.vstat[j] == VStat::Lower && alpha < -PRICE_TOL)
                        || (self.vstat[j] == VStat::Upper && alpha > PRICE_TOL)
                } else {
                    (self.vstat[j] == VStat::Lower && alpha > PRICE_TOL)
                        || (self.vstat[j] == VStat::Upper && alpha < -PRICE_TOL)
                };
                if !eligible {
                    continue;
                }
                let ratio = self.reduced_cost(cost, j).abs() / alpha.abs();
                let better = match enter {
                    None => true,
                    Some((_, br)) => ratio < br - EPS,
                };
                if better {
                    enter = Some((j, ratio));
                }
            }
            let Some((q, _)) = enter else {
                // No column can absorb the violation: LP is infeasible.
                return DualOutcome::Infeasible;
            };

            let mut w = std::mem::take(&mut self.scratch);
            self.ftran_col(q, &mut w);
            if w[r].abs() <= EPS {
                self.scratch = w;
                if self.etas.is_empty() {
                    return DualOutcome::GiveUp;
                }
                if !self.refactor() {
                    return DualOutcome::GiveUp;
                }
                self.compute_xb();
                continue;
            }
            let b = self.basis[r] as usize;
            let target = if below { self.lo[b] } else { self.up[b] };
            let t = (self.xb[r] - target) / w[r];
            let value = self.rest_value(q) + t;
            for (i, &wi) in w.iter().enumerate() {
                if i != r && wi != 0.0 {
                    self.xb[i] -= t * wi;
                }
            }
            self.pivot(
                r,
                q,
                value,
                &w,
                if below { VStat::Lower } else { VStat::Upper },
            );
            self.scratch = w;
        }
        DualOutcome::GiveUp
    }

    /// Current structural values in model space.
    pub(crate) fn structural_values(&self) -> Vec<f64> {
        (0..self.inst.n).map(|j| self.rest_value(j)).collect()
    }

    /// Objective of the current point, in the model's own sense.
    pub(crate) fn objective(&self) -> f64 {
        let x = self.structural_values();
        self.inst.model_objective(&x)
    }

    /// Constraint duals (model sense) at phase-2 optimality:
    /// `y = B⁻ᵀ·c_B`, sign-flipped back when the model was a negated
    /// maximization. No per-row corrections are needed because rows are
    /// never normalized or flipped at build time.
    pub(crate) fn duals(&mut self) -> Vec<f64> {
        if self.inst.m == 0 {
            return Vec::new();
        }
        let cost = Arc::clone(&self.inst).cost.clone();
        self.compute_y(&cost);
        self.ybuf
            .iter()
            .map(|&y| if self.inst.negated { -y } else { y })
            .collect()
    }

    /// Snapshot of the current basis for warm-starting a child node.
    pub(crate) fn basis_state(&self) -> BasisState {
        BasisState {
            basis: self.basis.clone(),
            vstat: self.vstat.clone(),
        }
    }

    /// Converts an outcome into a full [`Solution`] for the model.
    pub(crate) fn extract_solution(&self, outcome: LpOutcome) -> Solution {
        let n = self.inst.n;
        match outcome {
            LpOutcome::Optimal => {
                let values = self.structural_values();
                let objective = self.inst.model_objective(&values);
                Solution {
                    status: Status::Optimal,
                    objective,
                    values,
                }
            }
            LpOutcome::Infeasible => Solution::sentinel(Status::Infeasible, n),
            LpOutcome::Unbounded => Solution {
                status: Status::Unbounded,
                objective: if self.inst.negated {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                },
                values: vec![f64::NAN; n],
            },
            LpOutcome::Error => Solution::sentinel(Status::Error, n),
        }
    }
}

enum DualOutcome {
    Feasible,
    Infeasible,
    GiveUp,
}

/// Relaxes integer/binary kinds to continuous (for LP relaxations).
pub fn relax(model: &Model) -> Model {
    let mut m = model.clone();
    for v in &mut m.vars {
        v.kind = VarKind::Continuous;
    }
    m
}

/// Convenience: the value of `v` rounded if its kind is integral.
pub fn rounded_value(model: &Model, sol: &Solution, v: crate::expr::Var) -> f64 {
    match model.vars[v.0].kind {
        VarKind::Continuous => sol.value(v),
        _ => sol.value(v).round(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn textbook_max_lp() {
        // max 3x + 2y st x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4,0), obj 12.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.le(x + y, 4.0);
        m.le(x + 3.0 * y, 6.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 12.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 4.0).abs() < 1e-6);
        assert!(s.value(y).abs() < 1e-6);
    }

    #[test]
    fn min_with_ge_constraints() {
        // min 2x + 3y st x + y ≥ 10, x ≥ 2, y ≥ 3 → x=7,y=3, obj 23.
        let mut m = Model::new();
        let x = m.continuous("x", 2.0, f64::INFINITY);
        let y = m.continuous("y", 3.0, f64::INFINITY);
        m.ge(x + y, 10.0);
        m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 23.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 7.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 4, x − y = 1 → x=2,y=1, obj 3.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.eq(x + 2.0 * y, 4.0);
        m.eq(x - y, 1.0);
        m.set_objective(Sense::Minimize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(1.0 * x, 1.0);
        m.ge(1.0 * x, 2.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.ge(x - y, 1.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.solve().status, Status::Unbounded);
    }

    #[test]
    fn bounded_above_is_not_unbounded() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 5.0);
        m.set_objective(Sense::Maximize, 2.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.value(x) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x ≥ −3 → −3.
        let mut m = Model::new();
        let x = m.continuous("x", -3.0, 10.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 3.0).abs() < 1e-6);
        assert!((s.value(x) + 3.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 2.0);
        m.set_objective(Sense::Minimize, 1.0 * x + 100.0);
        let s = m.solve();
        assert!((s.objective - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        let z = m.nonneg("z");
        m.le(x + y + z, 1.0);
        m.le(x + y, 1.0);
        m.le(1.0 * x, 1.0);
        m.set_objective(Sense::Maximize, 2.0 * x + 1.0 * y + 1.0 * z);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = Model::new();
        let x = m.continuous("x", 1.0, 4.0);
        let y = m.continuous("y", 0.0, 3.0);
        m.le(2.0 * x + y, 7.0);
        m.ge(x + y, 2.0);
        m.set_objective(Sense::Maximize, x + 2.0 * y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!(m.is_feasible(&s.values, 1e-6));
        // Optimum: y=3, then x ≤ 2 → obj 8.
        assert!((s.objective - 8.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.eq(x + y, 2.0);
        m.eq(x + y, 2.0);
        m.eq(x - y, 0.0);
        m.set_objective(Sense::Minimize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    // --- bounded-variable-specific behaviour ---

    #[test]
    fn bound_flip_without_pivot() {
        // max x + y st x + y ≤ 10, x ≤ 3, y ≤ 4 (bounds, not rows)
        // → x=3, y=4, obj 7; reaching it requires nonbasic bound flips.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 3.0);
        let y = m.continuous("y", 0.0, 4.0);
        m.le(x + y, 10.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn basic_variable_leaves_at_upper() {
        // max 2x + y st x − y ≤ 1, x ≤ 4, y ≤ 2 → x=3,y=2? check: x−y≤1 →
        // x ≤ 3; obj 8.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 4.0);
        let y = m.continuous("y", 0.0, 2.0);
        m.le(x - y, 1.0);
        m.set_objective(Sense::Maximize, 2.0 * x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 8.0).abs() < 1e-6, "obj={}", s.objective);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn binaries_relaxed_without_extra_rows() {
        // 40 relaxed binaries, one knapsack row: the LP must solve fast
        // and land on the fractional knapsack optimum.
        let mut m = Model::new();
        let vars: Vec<_> = (0..40)
            .map(|i| m.continuous(format!("x{i}"), 0.0, 1.0))
            .collect();
        let w = crate::expr::LinExpr::sum(vars.iter().map(|&v| 1.0 * v));
        m.le(w, 10.5);
        let obj = crate::expr::LinExpr::sum(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| ((i % 5 + 1) as f64) * v),
        );
        m.set_objective(Sense::Maximize, obj);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        // 8 items of value 5, then 2 of value 4, then 0.5 of value 4:
        // = 40 + 8 + 2 = 50? Compute exactly: capacities of 10.5 units of
        // weight 1; best values: 8×5 + 2.5×4 = 50.
        assert!((s.objective - 50.0).abs() < 1e-6, "obj={}", s.objective);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut m = Model::new();
        let x = m.continuous("x", 2.5, 2.5);
        let y = m.continuous("y", 0.0, 10.0);
        m.le(x + y, 5.0);
        m.set_objective(Sense::Maximize, 3.0 * x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 2.5).abs() < 1e-6);
        assert!((s.value(y) - 2.5).abs() < 1e-6);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_via_bounds_and_row() {
        // x ∈ [0, 2], y ∈ [0, 2], x + y ≥ 5 → infeasible.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 2.0);
        let y = m.continuous("y", 0.0, 2.0);
        m.ge(x + y, 5.0);
        m.set_objective(Sense::Minimize, x + y);
        assert_eq!(m.solve().status, Status::Infeasible);
    }

    #[test]
    fn duals_match_finite_differences() {
        // max 3x + 2y st x + y ≤ 4, x + 3y ≤ 6: optimum (4, 0) with the
        // first row binding (dual 3) and the second slack (dual 0).
        let build = |r1: f64, r2: f64| {
            let mut m = Model::new();
            let x = m.nonneg("x");
            let y = m.nonneg("y");
            m.le(x + y, r1);
            m.le(x + 3.0 * y, r2);
            m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
            m
        };
        let (sol, duals) = solve_lp_with_duals(&build(4.0, 6.0));
        assert_eq!(sol.status, Status::Optimal);
        let duals = duals.unwrap();
        assert!((duals[0] - 3.0).abs() < 1e-6, "{duals:?}");
        assert!(duals[1].abs() < 1e-6, "{duals:?}");
        // Finite difference on the binding row agrees.
        let d = 1e-3;
        let bumped = build(4.0 + d, 6.0).solve();
        assert!(((bumped.objective - sol.objective) / d - duals[0]).abs() < 1e-6);
    }

    #[test]
    fn duals_for_min_with_ge_row() {
        // min 2x + 3y st x + y ≥ 10 (binding): dual = 2 (the cheaper
        // variable absorbs extra requirement).
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.ge(x + y, 10.0);
        m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
        let (sol, duals) = solve_lp_with_duals(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert!((duals.unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn duals_for_equality_row() {
        // min x + y st x + 2y = 4, x − y = 1 → duals from y = cB·B⁻¹:
        // finite-difference check on the first equality.
        let build = |r: f64| {
            let mut m = Model::new();
            let x = m.nonneg("x");
            let y = m.nonneg("y");
            m.eq(x + 2.0 * y, r);
            m.eq(x - y, 1.0);
            m.set_objective(Sense::Minimize, x + y);
            m
        };
        let (sol, duals) = solve_lp_with_duals(&build(4.0));
        let duals = duals.unwrap();
        let d = 1e-3;
        let bumped = build(4.0 + d).solve();
        assert!(
            ((bumped.objective - sol.objective) / d - duals[0]).abs() < 1e-5,
            "dual {} vs fd {}",
            duals[0],
            (bumped.objective - sol.objective) / d
        );
    }

    #[test]
    fn duals_with_negative_rhs_row() {
        // A row whose rhs is negative: −x ≤ −2 ⇔ x ≥ 2; dual of the
        // *original* row must match finite differences on it.
        let build = |r: f64| {
            let mut m = Model::new();
            let x = m.continuous("x", 0.0, 10.0);
            m.le(-1.0 * x, r);
            m.set_objective(Sense::Minimize, 5.0 * x);
            m
        };
        let (sol, duals) = solve_lp_with_duals(&build(-2.0));
        let duals = duals.unwrap();
        let d = 1e-3;
        let bumped = build(-2.0 + d).solve();
        assert!(
            ((bumped.objective - sol.objective) / d - duals[0]).abs() < 1e-5,
            "dual {} vs fd {}",
            duals[0],
            (bumped.objective - sol.objective) / d
        );
    }

    #[test]
    fn minimize_pushes_to_upper_when_profitable() {
        // min −x with x ∈ [0, 7] and a slack row: x ends at its upper
        // bound without the row binding.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 7.0);
        let y = m.nonneg("y");
        m.le(x + y, 100.0);
        m.set_objective(Sense::Minimize, -1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 7.0).abs() < 1e-6);
        assert!((s.objective + 7.0).abs() < 1e-6);
    }

    // --- dual sign conventions: {min, max} × {≤, =, ≥}, all checked
    // against finite differences so the convention is pinned down by
    // behaviour, not by prose.

    fn dual_fd_check(sense: Sense, cmp: Cmp) {
        let build = |rhs: f64| {
            let mut m = Model::new();
            let x = m.continuous("x", 0.0, 50.0);
            let y = m.continuous("y", 0.0, 50.0);
            let expr = x + 2.0 * y;
            match cmp {
                Cmp::Le => m.le(expr, rhs),
                Cmp::Ge => m.ge(expr, rhs),
                Cmp::Eq => m.eq(expr, rhs),
            };
            // A second, non-binding row keeps the problem 2-dimensional.
            m.le(x + y, 90.0);
            let obj = 3.0 * x + 5.0 * y;
            m.set_objective(sense, obj);
            m
        };
        let rhs0 = 40.0;
        let (sol, duals) = solve_lp_with_duals(&build(rhs0));
        assert_eq!(sol.status, Status::Optimal, "{sense:?} {cmp:?}");
        let duals = duals.unwrap();
        let d = 1e-4;
        let bumped = build(rhs0 + d).solve();
        assert_eq!(bumped.status, Status::Optimal);
        let fd = (bumped.objective - sol.objective) / d;
        assert!(
            (fd - duals[0]).abs() < 1e-4,
            "{sense:?} {cmp:?}: dual {} vs finite difference {}",
            duals[0],
            fd
        );
    }

    #[test]
    fn dual_sign_min_le() {
        dual_fd_check(Sense::Minimize, Cmp::Le);
    }

    #[test]
    fn dual_sign_min_ge() {
        dual_fd_check(Sense::Minimize, Cmp::Ge);
    }

    #[test]
    fn dual_sign_min_eq() {
        dual_fd_check(Sense::Minimize, Cmp::Eq);
    }

    #[test]
    fn dual_sign_max_le() {
        dual_fd_check(Sense::Maximize, Cmp::Le);
    }

    #[test]
    fn dual_sign_max_ge() {
        dual_fd_check(Sense::Maximize, Cmp::Ge);
    }

    #[test]
    fn dual_sign_max_eq() {
        dual_fd_check(Sense::Maximize, Cmp::Eq);
    }

    #[test]
    fn min_ge_binding_dual_is_nonnegative() {
        // The satellite's headline case: minimization, binding ≥ row →
        // the shadow price of one more unit of requirement is a *cost*,
        // i.e. non-negative in the model's own sense.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.ge(2.0 * x + y, 8.0);
        m.set_objective(Sense::Minimize, 3.0 * x + 4.0 * y);
        let (sol, duals) = solve_lp_with_duals(&m);
        assert_eq!(sol.status, Status::Optimal);
        let duals = duals.unwrap();
        assert!(
            duals[0] >= 0.0,
            "binding ≥ dual must be ≥ 0, got {}",
            duals[0]
        );
        assert!((duals[0] - 1.5).abs() < 1e-6, "{duals:?}");
    }

    // --- degenerate stress / anti-cycling ---

    #[test]
    fn bland_rule_terminates_on_degenerate_lp() {
        // Force Bland's rule from the very first iteration (the test hook
        // zeroes the Dantzig budget) on a degeneracy-heavy LP and demand
        // the exact optimum anyway.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        let z = m.nonneg("z");
        m.le(x + y + z, 1.0);
        m.le(x + y, 1.0);
        m.le(1.0 * x, 1.0);
        m.le(y + z, 1.0);
        m.set_objective(Sense::Maximize, 2.0 * x + 1.0 * y + 1.0 * z);
        let inst = Arc::new(Instance::build(&m));
        let mut ctx = Ctx::new(Arc::clone(&inst));
        ctx.dantzig_factor = 0; // Bland from iteration 1
        let out = ctx.solve_cold();
        assert_eq!(out, LpOutcome::Optimal);
        assert!(
            (ctx.objective() - 2.0).abs() < 1e-6,
            "obj={}",
            ctx.objective()
        );
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic cycling LP (degenerate at the origin). Dantzig
        // pricing alone can cycle on it; the Bland switch must save us.
        let mut m = Model::new();
        let x1 = m.nonneg("x1");
        let x2 = m.nonneg("x2");
        let x3 = m.nonneg("x3");
        let x4 = m.nonneg("x4");
        m.le(0.25 * x1 - 60.0 * x2 - 0.04 * x3 + 9.0 * x4, 0.0);
        m.le(0.5 * x1 - 90.0 * x2 - 0.02 * x3 + 3.0 * x4, 0.0);
        m.le(1.0 * x3, 1.0);
        m.set_objective(
            Sense::Minimize,
            -0.75 * x1 + 150.0 * x2 - 0.02 * x3 + 6.0 * x4,
        );
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 0.05).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn iteration_cap_reports_error_not_panic() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.le(x + y, 4.0);
        m.ge(x + y, 1.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        let inst = Arc::new(Instance::build(&m));
        let mut ctx = Ctx::new(inst);
        ctx.iter_cap_override = Some(1); // no pivot can ever complete
        let out = ctx.solve_cold();
        assert_eq!(out, LpOutcome::Error);
        assert_eq!(ctx.extract_solution(out).status, Status::Error);
    }

    // --- empty constraint rows (malformed-adjacent but legal) ---

    #[test]
    fn empty_row_feasible_is_ignored() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 5.0);
        m.le(crate::expr::LinExpr::sum(std::iter::empty()), 3.0); // 0 ≤ 3
        m.set_objective(Sense::Maximize, 1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn empty_row_infeasible_detected() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 5.0);
        m.ge(crate::expr::LinExpr::sum(std::iter::empty()), 3.0); // 0 ≥ 3
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Infeasible);
    }

    // --- warm starts ---

    #[test]
    fn warm_start_matches_cold_solve_after_bound_change() {
        // Solve, snapshot the basis, tighten one variable's bounds the way
        // branching would, and check dual-simplex warm restart lands on
        // exactly the cold solve's optimum.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 4.0);
        let y = m.continuous("y", 0.0, 4.0);
        let z = m.continuous("z", 0.0, 4.0);
        m.le(x + y + z, 6.0);
        m.le(2.0 * x + y, 5.0);
        m.ge(x + z, 1.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y + 1.5 * z);
        let inst = Arc::new(Instance::build(&m));

        let mut parent = Ctx::new(Arc::clone(&inst));
        assert_eq!(parent.solve_cold(), LpOutcome::Optimal);
        let snapshot = parent.basis_state();
        let parent_obj = parent.objective();

        // Child: x ≤ 1 (as if branching down on x).
        let mut warm = Ctx::new(Arc::clone(&inst));
        warm.set_bounds(&[(0, 0.0, 1.0)]);
        assert_eq!(warm.solve_warm(Some(&snapshot)), LpOutcome::Optimal);

        let mut cold = Ctx::new(Arc::clone(&inst));
        cold.set_bounds(&[(0, 0.0, 1.0)]);
        assert_eq!(cold.solve_cold(), LpOutcome::Optimal);

        assert!(
            (warm.objective() - cold.objective()).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective(),
            cold.objective()
        );
        assert!(
            warm.objective() <= parent_obj + 1e-9,
            "child bound can only tighten"
        );
        assert!(warm.stats.warm_solves >= 1);
    }

    #[test]
    fn warm_start_detects_child_infeasibility() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 4.0);
        let y = m.continuous("y", 0.0, 4.0);
        m.ge(x + y, 6.0);
        m.set_objective(Sense::Minimize, x + y);
        let inst = Arc::new(Instance::build(&m));
        let mut parent = Ctx::new(Arc::clone(&inst));
        assert_eq!(parent.solve_cold(), LpOutcome::Optimal);
        let snapshot = parent.basis_state();

        // Child: x ≤ 1 and y ≤ 1 → x + y ≤ 2 < 6.
        let mut child = Ctx::new(Arc::clone(&inst));
        child.set_bounds(&[(0, 0.0, 1.0), (1, 0.0, 1.0)]);
        assert_eq!(child.solve_warm(Some(&snapshot)), LpOutcome::Infeasible);
    }

    #[test]
    fn eta_refactorization_stays_exact() {
        // A chain long enough to force several refactorizations; optimum
        // must match the assignment-like closed form.
        let k = 30;
        let mut m = Model::new();
        let vars: Vec<_> = (0..k)
            .map(|i| m.continuous(format!("x{i}"), 0.0, 2.0))
            .collect();
        for w in vars.windows(2) {
            m.le(w[0] + w[1], 3.0);
        }
        let obj = crate::expr::LinExpr::sum(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (1.0 + ((i * 7) % 5) as f64) * v),
        );
        m.set_objective(Sense::Maximize, obj);
        let (s, stats) = solve_lp_with_stats(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!(m.is_feasible(&s.values, 1e-6));
        // Cross-check against a fresh Dantzig-free (Bland) solve, which
        // follows a completely different pivot sequence.
        let inst = Arc::new(Instance::build(&m));
        let mut ctx = Ctx::new(inst);
        ctx.dantzig_factor = 0;
        assert_eq!(ctx.solve_cold(), LpOutcome::Optimal);
        assert!((ctx.objective() - s.objective).abs() < 1e-6);
        assert!(stats.total_pivots() > 0);
    }
}
