//! Linear expressions over decision variables.
//!
//! Mirrors the modeling surface of algebraic MIP front-ends (the paper uses
//! Julia/JuMP + Gurobi): variables combine with `+`, `-` and scalar `*`
//! into [`LinExpr`]s that become objectives and constraint left-hand sides.

use std::ops::{Add, Mul, Neg, Sub};

/// A decision variable handle (index into its [`crate::model::Model`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub usize);

/// A linear expression `Σ coeff·var + constant`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// Terms as (variable, coefficient) pairs; may contain duplicates until
    /// [`LinExpr::simplified`].
    pub terms: Vec<(Var, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// A single-term expression `coeff·var`.
    pub fn term(var: Var, coeff: f64) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// Adds `coeff·var` in place.
    pub fn add_term(&mut self, var: Var, coeff: f64) {
        self.terms.push((var, coeff));
    }

    /// Returns an equivalent expression with one entry per variable
    /// (coefficients summed, zero coefficients dropped) sorted by variable.
    pub fn simplified(&self) -> LinExpr {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(Var, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| *c != 0.0);
        LinExpr {
            terms: out,
            constant: self.constant,
        }
    }

    /// Evaluates the expression at `values` (indexed by variable).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }

    /// Sums an iterator of expressions.
    pub fn sum(items: impl IntoIterator<Item = LinExpr>) -> LinExpr {
        let mut acc = LinExpr::zero();
        for e in items {
            acc.terms.extend(e.terms);
            acc.constant += e.constant;
        }
        acc
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
        self
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1.0
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::term(self, rhs)
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        LinExpr::term(rhs, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_simplifies() {
        let x = Var(0);
        let y = Var(1);
        let e = (2.0 * x + y + 3.0) + (x * -2.0) - 1.0;
        let s = e.simplified();
        // 2x - 2x cancels; y + 2 remains.
        assert_eq!(s.terms, vec![(y, 1.0)]);
        assert_eq!(s.constant, 2.0);
    }

    #[test]
    fn eval() {
        let x = Var(0);
        let y = Var(1);
        let e = 3.0 * x + 2.0 * y + 1.0;
        assert_eq!(e.eval(&[2.0, 0.5]), 8.0);
    }

    #[test]
    fn sum_of_terms() {
        let vars: Vec<Var> = (0..4).map(Var).collect();
        let e = LinExpr::sum(vars.iter().map(|&v| 1.0 * v)).simplified();
        assert_eq!(e.terms.len(), 4);
        assert_eq!(e.eval(&[1.0, 1.0, 1.0, 1.0]), 4.0);
    }

    #[test]
    fn negation_and_subtraction() {
        let x = Var(0);
        let e = -(2.0 * x + 4.0);
        assert_eq!(e.eval(&[1.0]), -6.0);
        let d = (x - Var(1)).simplified();
        assert_eq!(d.eval(&[5.0, 3.0]), 2.0);
    }
}
