//! Bridge from [`SolverStats`] to the observability registry.
//!
//! The solver keeps its own deterministic counters ([`SolverStats`])
//! because they must be comparable across runs and threads; this module
//! mirrors one solve's counters into a [`Registry`] so they surface next
//! to the controller's metrics in the same Prometheus/JSON exports —
//! the paper tracks Gurobi's node and iteration counts the same way.

use std::time::Duration;

use flexwan_obs::{Registry, LATENCY_SECONDS_BUCKETS};

use crate::model::SolverStats;

/// Records one solve's [`SolverStats`] into `registry`.
///
/// Pivot counters are labeled by simplex phase, solve counters by start
/// kind (`warm`/`cold`); phase wall times land in per-phase latency
/// histograms and the warm-start hit rate of the *most recent* solve is
/// published as a gauge.
pub fn record_solver_stats(registry: &Registry, stats: &SolverStats) {
    registry
        .counter_with("solver_pivots_total", &[("phase", "phase1")])
        .add(stats.phase1_pivots);
    registry
        .counter_with("solver_pivots_total", &[("phase", "phase2")])
        .add(stats.phase2_pivots);
    registry
        .counter_with("solver_pivots_total", &[("phase", "dual")])
        .add(stats.dual_pivots);
    registry
        .counter("solver_bound_flips_total")
        .add(stats.bound_flips);
    registry
        .counter("solver_refactorizations_total")
        .add(stats.refactorizations);
    registry
        .counter_with("solver_solves_total", &[("start", "cold")])
        .add(stats.cold_solves);
    registry
        .counter_with("solver_solves_total", &[("start", "warm")])
        .add(stats.warm_solves);
    registry.counter("solver_nodes_total").add(stats.nodes);
    registry.counter("solver_cuts_total").add(stats.cuts);
    registry
        .gauge("solver_warm_start_hit_rate")
        .set(stats.warm_start_hit_rate());
    observe_phase(registry, "phase1", stats.time_phase1);
    observe_phase(registry, "phase2", stats.time_phase2);
    observe_phase(registry, "dual", stats.time_dual);
    observe_phase(registry, "total", stats.time_total);
}

fn observe_phase(registry: &Registry, phase: &str, t: Duration) {
    registry
        .histogram_with(
            "solver_phase_seconds",
            &[("phase", phase)],
            LATENCY_SECONDS_BUCKETS,
        )
        .observe(t.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mirror_into_labeled_series() {
        let reg = Registry::new();
        let stats = SolverStats {
            phase1_pivots: 3,
            phase2_pivots: 5,
            dual_pivots: 7,
            bound_flips: 2,
            refactorizations: 1,
            cold_solves: 1,
            warm_solves: 3,
            nodes: 9,
            cuts: 4,
            time_phase1: Duration::from_micros(10),
            time_phase2: Duration::from_micros(20),
            time_dual: Duration::from_micros(30),
            time_total: Duration::from_micros(70),
        };
        record_solver_stats(&reg, &stats);
        let prom = reg.snapshot().to_prometheus();
        assert!(
            prom.contains("solver_pivots_total{phase=\"dual\"} 7"),
            "{prom}"
        );
        assert!(
            prom.contains("solver_solves_total{start=\"warm\"} 3"),
            "{prom}"
        );
        assert!(prom.contains("solver_nodes_total 9"), "{prom}");
        assert!(prom.contains("solver_warm_start_hit_rate 0.75"), "{prom}");
        // A second solve accumulates counters, overwrites the rate gauge.
        record_solver_stats(&reg, &stats);
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("solver_nodes_total 18"), "{prom}");
        assert!(prom.contains("solver_warm_start_hit_rate 0.75"), "{prom}");
    }
}
