//! Branch & bound for mixed-integer programs.
//!
//! Best-first search on the LP-relaxation bound; branching on the most
//! fractional integer variable, with branches expressed as tightened
//! variable bounds. The paper reports Gurobi closes its MIPs via LP
//! relaxation "with a gap of less than 0.1 %" — our exact solver proves
//! full optimality on the (small) instances it is used for.
//!
//! Three mechanics keep the tree cheap:
//!
//! 1. **Warm starts.** Every node carries an `Arc` snapshot of its
//!    parent's optimal basis; the child re-optimizes with the dual
//!    simplex after its single bound change instead of rebuilding the
//!    tableau from scratch (`Ctx::solve_warm`).
//! 2. **Diving.** A popped node is driven depth-first for up to
//!    `DIVE_CAP` consecutive branchings inside one `Ctx` — the
//!    current factorization is reused verbatim (no basis copy at all) —
//!    emitting the unexplored sibling of each dive step back to the heap.
//! 3. **Deterministic parallelism.** Open nodes are popped in batches of
//!    `BATCH` and processed by worker threads over the `flexwan-util`
//!    channels. Each node is evaluated against the *same* incumbent
//!    snapshot and results are applied in pop order, so the search — and
//!    therefore the reported solution — is identical for any thread
//!    count, including 1.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::model::{Model, Sense, Solution, SolveOptions, SolverStats, Status, VarKind};
use crate::simplex::{relax, solve_lp_collecting, BasisState, Ctx, Instance, LpOutcome};

/// Nodes popped (and processed) per coordination round. Fixed regardless
/// of thread count so the search tree does not depend on parallelism.
const BATCH: usize = 8;
/// Maximum consecutive in-`Ctx` branchings before a node returns its
/// remaining frontier to the shared heap.
const DIVE_CAP: usize = 24;

/// A search node: tightened bounds over the base model plus the parent's
/// final basis for warm-starting.
#[derive(Clone)]
struct Node {
    /// LP bound of the parent (priority).
    bound: f64,
    /// (var index, new lower, new upper) deltas relative to the base model.
    bounds: Vec<(usize, f64, f64)>,
    depth: usize,
    basis: Option<Arc<BasisState>>,
}

/// Heap ordering: best bound first; among equal bounds, deepest node
/// first (diving finds an incumbent quickly, which unlocks pruning);
/// among those, lowest insertion sequence — a total, deterministic order.
struct Prioritized {
    key: f64,
    seq: u64,
    node: Node,
}

impl PartialEq for Prioritized {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.node.depth == other.node.depth && self.seq == other.seq
    }
}
impl Eq for Prioritized {}
impl PartialOrd for Prioritized {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Prioritized {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest key popped first,
        // then the deepest node, then the oldest insertion.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.depth.cmp(&other.node.depth))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Everything a worker needs to evaluate a node, shared read-only.
struct Shared {
    inst: Arc<Instance>,
    int_vars: Vec<usize>,
    int_tol: f64,
    minimize: bool,
}

impl Shared {
    fn better(&self, a: f64, b: f64) -> bool {
        if self.minimize {
            a < b - 1e-9
        } else {
            a > b + 1e-9
        }
    }
}

/// Outcome of processing (diving) one popped node.
#[derive(Default)]
struct NodeResult {
    /// Unexplored siblings / frontier children to return to the heap.
    opened: Vec<Node>,
    /// Integral solution found during the dive: (objective, values).
    candidate: Option<(f64, Vec<f64>)>,
    /// LPs solved beyond the popped node itself (dive steps).
    extra_nodes: u64,
    root_unbounded: bool,
    error: bool,
    stats: SolverStats,
}

/// Effective absolute bounds for the node's delta list, or `None` when a
/// variable's domain became empty (infeasible branch).
fn merge_bounds(inst: &Instance, deltas: &[(usize, f64, f64)]) -> Option<Vec<(usize, f64, f64)>> {
    let mut merged: Vec<(usize, f64, f64)> = Vec::with_capacity(deltas.len());
    for &(v, lo, hi) in deltas {
        match merged.iter_mut().find(|e| e.0 == v) {
            Some(e) => {
                e.1 = e.1.max(lo);
                e.2 = e.2.min(hi);
            }
            None => {
                merged.push((v, inst.base_lo(v).max(lo), inst.base_up(v).min(hi)));
            }
        }
    }
    if merged.iter().any(|&(_, lo, hi)| lo > hi) {
        None
    } else {
        Some(merged)
    }
}

/// Evaluates one popped node: solve its relaxation (warm from the parent
/// basis when available), then dive best-guess-first up to [`DIVE_CAP`]
/// branchings, emitting every unexplored sibling. Pure in
/// `(node, incumbent snapshot)` — the `Ctx` is fully reset — which is
/// what makes batch-parallel execution deterministic.
fn process_node(ctx: &mut Ctx, sh: &Shared, node: &Node, snapshot: Option<f64>) -> NodeResult {
    let mut res = NodeResult::default();
    ctx.stats = SolverStats::default();
    let mut bounds = node.bounds.clone();
    let mut depth = node.depth;
    let local_best = snapshot;
    let mut first = true;
    let mut dives = 0usize;
    while let Some(merged) = merge_bounds(&sh.inst, &bounds) {
        ctx.set_bounds(&merged);
        let outcome = if first {
            match &node.basis {
                Some(bs) => ctx.solve_warm(Some(bs)),
                None => ctx.solve_cold(),
            }
        } else {
            // Dive continuation: the basis of the LP we just solved is
            // still installed; only the branched bound moved.
            ctx.solve_warm(None)
        };
        if !first {
            res.extra_nodes += 1;
        }
        first = false;
        match outcome {
            LpOutcome::Infeasible => break,
            LpOutcome::Unbounded => {
                if depth == 0 {
                    res.root_unbounded = true;
                }
                break;
            }
            LpOutcome::Error => {
                res.error = true;
                break;
            }
            LpOutcome::Optimal => {}
        }
        let obj = ctx.objective();
        if let Some(b) = local_best {
            if !sh.better(obj, b) {
                break;
            }
        }
        let values = ctx.structural_values();
        // Most fractional integer variable (ties resolved identically to
        // the historical dense solver: the last maximum wins).
        let frac = sh
            .int_vars
            .iter()
            .map(|&v| {
                let x = values[v];
                let f = (x - x.round()).abs();
                (v, x, f)
            })
            .filter(|&(_, _, f)| f > sh.int_tol)
            .max_by(|a, b| {
                let da = (a.2 - 0.5).abs();
                let db = (b.2 - 0.5).abs();
                db.partial_cmp(&da).unwrap_or(Ordering::Equal)
            });
        let Some((v, x, _)) = frac else {
            // Integral: round residue and record as candidate incumbent.
            let mut vals = values;
            for &iv in &sh.int_vars {
                vals[iv] = vals[iv].round();
            }
            res.candidate = Some((obj, vals));
            break;
        };
        let down = (v, f64::NEG_INFINITY, x.floor());
        let up = (v, x.ceil(), f64::INFINITY);
        if dives >= DIVE_CAP {
            let bs = Arc::new(ctx.basis_state());
            for delta in [down, up] {
                let mut child = bounds.clone();
                child.push(delta);
                res.opened.push(Node {
                    bound: obj,
                    bounds: child,
                    depth: depth + 1,
                    basis: Some(Arc::clone(&bs)),
                });
            }
            break;
        }
        dives += 1;
        // Dive toward the nearer integer; the sibling goes to the heap
        // with this LP's basis for its own warm start.
        let fpart = x - x.floor();
        let (dive, sibling) = if fpart > 0.5 { (up, down) } else { (down, up) };
        let mut sib_bounds = bounds.clone();
        sib_bounds.push(sibling);
        res.opened.push(Node {
            bound: obj,
            bounds: sib_bounds,
            depth: depth + 1,
            basis: Some(Arc::new(ctx.basis_state())),
        });
        bounds.push(dive);
        depth += 1;
    }
    res.stats = ctx.stats;
    res
}

/// Solves a MIP by branch & bound. Called through [`Model::solve_with`]
/// when integer variables are present.
pub fn solve_mip(model: &Model, opts: &SolveOptions) -> Solution {
    let mut stats = SolverStats::default();
    solve_mip_with_stats(model, opts, &mut stats)
}

/// [`solve_mip`] accumulating counters into `stats`.
pub(crate) fn solve_mip_with_stats(
    model: &Model,
    opts: &SolveOptions,
    stats: &mut SolverStats,
) -> Solution {
    solve_mip_with_root(model, opts, stats, None)
}

/// [`solve_mip_with_stats`] with an optional root warm start: a basis
/// captured on a previous solve of (a mutation of) the same model, which
/// the root node re-optimizes with the dual simplex instead of a cold
/// two-phase start. The basis is extended over any cover-cut rows added
/// at the root (see [`BasisState::extended`]); a stale or singular basis
/// degrades to a cold solve inside [`Ctx::solve_warm`], never to a wrong
/// answer.
pub(crate) fn solve_mip_with_root(
    model: &Model,
    opts: &SolveOptions,
    stats: &mut SolverStats,
    root_basis: Option<&BasisState>,
) -> Solution {
    let n_model = model.num_vars();
    if model.check_data().is_err() {
        return Solution::sentinel(Status::Error, n_model);
    }
    let minimize = model.sense != Some(Sense::Maximize);
    // Work on the relaxation; integer kinds live in `model`.
    let mut base = relax(model);

    // Cut-and-branch: strengthen the root with violated knapsack cover
    // cuts (valid for every integer point, so they apply to all nodes).
    for _round in 0..4 {
        let root = solve_lp_collecting(&base, stats, None);
        if root.status != Status::Optimal {
            break;
        }
        let cuts = crate::cuts::cover_cuts(model, &root, 16);
        if cuts.is_empty() {
            break;
        }
        stats.cuts += cuts.len() as u64;
        for c in cuts {
            base.le(c.expr, c.rhs);
        }
    }

    let sh = Shared {
        inst: Arc::new(Instance::build(&base)),
        int_vars: model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind != VarKind::Continuous)
            .map(|(i, _)| i)
            .collect(),
        int_tol: opts.int_tol,
        minimize,
    };
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(4)
    } else {
        opts.threads
    };

    let root = Node {
        bound: if minimize {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        },
        bounds: Vec::new(),
        depth: 0,
        // A caller-supplied basis only fits if it was captured with the
        // model's current variable count; extend it over the cut rows
        // appended to `base` above.
        basis: root_basis
            .filter(|bs| bs.num_structurals() == n_model && bs.num_rows() <= base.num_constraints())
            .map(|bs| Arc::new(bs.extended(base.num_constraints()))),
    };
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(Prioritized {
        key: f64::NEG_INFINITY,
        seq,
        node: root,
    });

    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0u64;
    let mut limited = false;
    let mut errored = false;

    'search: while !heap.is_empty() {
        // Pop a deterministic batch, pruning against the incumbent.
        let mut batch: Vec<Node> = Vec::with_capacity(BATCH);
        while batch.len() < BATCH {
            let Some(Prioritized { node, .. }) = heap.pop() else {
                break;
            };
            nodes += 1;
            if nodes > opts.max_nodes as u64 {
                limited = true;
                break 'search;
            }
            if let Some(inc) = &incumbent {
                if node.bound.is_finite() && !sh.better(node.bound, inc.objective) {
                    continue;
                }
            }
            batch.push(node);
        }
        if batch.is_empty() {
            continue;
        }
        let snapshot = incumbent.as_ref().map(|s| s.objective);

        let results: Vec<NodeResult> = if threads <= 1 || batch.len() == 1 {
            let mut ctx = Ctx::new(Arc::clone(&sh.inst));
            batch
                .iter()
                .map(|node| process_node(&mut ctx, &sh, node, snapshot))
                .collect()
        } else {
            run_batch_parallel(&sh, &batch, snapshot, threads)
        };

        // Apply results in pop order — identical to the sequential search.
        for res in results {
            nodes += res.extra_nodes;
            stats.merge(&res.stats);
            if res.root_unbounded {
                return Solution {
                    status: Status::Unbounded,
                    objective: if minimize {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    },
                    values: vec![f64::NAN; n_model],
                };
            }
            if res.error {
                errored = true;
            }
            if let Some((obj, vals)) = res.candidate {
                let accept = incumbent
                    .as_ref()
                    .is_none_or(|inc| sh.better(obj, inc.objective));
                if accept {
                    incumbent = Some(Solution {
                        status: Status::Optimal,
                        objective: obj,
                        values: vals,
                    });
                }
            }
            for node in res.opened {
                let keep = match &incumbent {
                    Some(inc) => sh.better(node.bound, inc.objective),
                    None => true,
                };
                if keep {
                    seq += 1;
                    let key = if minimize { node.bound } else { -node.bound };
                    heap.push(Prioritized { key, seq, node });
                }
            }
        }
    }

    stats.nodes = nodes;
    if limited {
        return match incumbent {
            Some(mut s) => {
                s.status = Status::NodeLimit;
                s
            }
            None => Solution::sentinel(Status::NodeLimit, n_model),
        };
    }
    match incumbent {
        Some(s) => s,
        None if errored => Solution::sentinel(Status::Error, n_model),
        None => Solution::sentinel(Status::Infeasible, n_model),
    }
}

/// Fans a batch out over worker threads via the `flexwan-util` channels
/// and returns results ordered by batch index.
fn run_batch_parallel(
    sh: &Shared,
    batch: &[Node],
    snapshot: Option<f64>,
    threads: usize,
) -> Vec<NodeResult> {
    let workers = threads.min(batch.len());
    let (task_tx, task_rx) = flexwan_util::sync::unbounded::<(usize, Node)>();
    let (res_tx, res_rx) = flexwan_util::sync::unbounded::<(usize, NodeResult)>();
    for (i, node) in batch.iter().enumerate() {
        let _ = task_tx.send((i, node.clone()));
    }
    drop(task_tx);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                let mut ctx = Ctx::new(Arc::clone(&sh.inst));
                for (i, node) in task_rx.iter() {
                    let res = process_node(&mut ctx, sh, &node, snapshot);
                    let _ = res_tx.send((i, res));
                }
            });
        }
    });
    drop(res_tx);
    let mut slots: Vec<Option<NodeResult>> = (0..batch.len()).map(|_| None).collect();
    for (i, res) in res_rx.iter() {
        slots[i] = Some(res);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker returned every batch slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn integer_rounding_differs_from_lp() {
        // max x + y st 2x + 3y ≤ 12, 6x + 5y ≤ 30, x,y ∈ ℤ≥0.
        // LP optimum is fractional; best integer solution obj = 5 (e.g. 3,2).
        let mut m = Model::new();
        let x = m.integer("x", 0, 100);
        let y = m.integer("y", 0, 100);
        m.le(2.0 * x + 3.0 * y, 12.0);
        m.le(6.0 * x + 5.0 * y, 30.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6, "obj={}", s.objective);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn knapsack_small() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30], cap 50 → 220.
        let mut m = Model::new();
        let items: Vec<_> = (0..3).map(|i| m.binary(format!("x{i}"))).collect();
        m.le(10.0 * items[0] + (20.0 * items[1] + 30.0 * items[2]), 50.0);
        m.set_objective(
            Sense::Maximize,
            60.0 * items[0] + (100.0 * items[1] + 120.0 * items[2]),
        );
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 220.0).abs() < 1e-6);
        assert_eq!(s.int_value(items[0]), 0);
        assert_eq!(s.int_value(items[1]), 1);
        assert_eq!(s.int_value(items[2]), 1);
    }

    #[test]
    fn assignment_problem_3x3() {
        // min cost assignment; cost matrix rows→cols.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new();
        let mut x = Vec::new();
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| m.binary(format!("x{i}{j}"))).collect();
            x.push(row);
        }
        for row in &x {
            let e = crate::expr::LinExpr::sum(row.iter().map(|&v| 1.0 * v));
            m.eq(e, 1.0);
        }
        for j in 0..3 {
            let e = crate::expr::LinExpr::sum(x.iter().map(|row| 1.0 * row[j]));
            m.eq(e, 1.0);
        }
        let obj = crate::expr::LinExpr::sum(
            (0..3)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .map(|(i, j)| cost[i][j] * x[i][j]),
        );
        m.set_objective(Sense::Minimize, obj);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        // Optimal: (0,1)+(1,0)+(2,2) = 1+2+2 = 5.
        assert!((s.objective - 5.0).abs() < 1e-6, "obj={}", s.objective);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new();
        let x = m.integer("x", 0, 10);
        // 2x = 5 has no integer solution; LP relaxation is feasible (2.5).
        m.eq(2.0 * x, 5.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3y + x st y ∈ ℤ, y ≥ 1.3 (so y ≥ 2), x ≥ 2.6 − y continuous.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.ge(1.0 * y, 1.3);
        m.ge(x + y, 2.6);
        m.set_objective(Sense::Minimize, 3.0 * y + x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(y), 2);
        assert!((s.value(x) - 0.6).abs() < 1e-6);
        assert!((s.objective - 6.6).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..12).map(|i| m.binary(format!("b{i}"))).collect();
        let w: Vec<f64> = (0..12).map(|i| (i * 7 % 13 + 3) as f64).collect();
        let e = crate::expr::LinExpr::sum(xs.iter().zip(&w).map(|(&x, &wi)| wi * x));
        m.le(e.clone(), 40.0);
        m.set_objective(Sense::Maximize, e);
        let s = m.solve_with(&SolveOptions {
            max_nodes: 0,
            ..Default::default()
        });
        // With no node budget we cannot prove optimality.
        assert_eq!(s.status, Status::NodeLimit);
    }

    #[test]
    fn equality_mip_with_multiple_formats() {
        // A miniature of the paper's transponder count problem: pick
        // integer counts n100, n200, n400 with 100·n1+200·n2+400·n4 ≥ 700,
        // minimizing count — optimum 2 (400+400 = 800 ≥ 700).
        let mut m = Model::new();
        let n1 = m.integer("n100", 0, 8);
        let n2 = m.integer("n200", 0, 8);
        let n4 = m.integer("n400", 0, 8);
        m.ge(100.0 * n1 + (200.0 * n2 + 400.0 * n4), 700.0);
        m.set_objective(Sense::Minimize, n1 + n2 + n4);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6, "obj={}", s.objective);
        assert_eq!(s.int_value(n4), 2);
    }

    // --- warm starts + parallel determinism ---

    fn awkward_knapsack() -> Model {
        let mut m = Model::new();
        let xs: Vec<_> = (0..14).map(|i| m.binary(format!("b{i}"))).collect();
        let w: Vec<f64> = (0..14).map(|i| ((i * 11) % 17 + 4) as f64).collect();
        let v: Vec<f64> = (0..14).map(|i| ((i * 5) % 13 + 2) as f64).collect();
        let we = crate::expr::LinExpr::sum(xs.iter().zip(&w).map(|(&x, &wi)| wi * x));
        m.le(we, 55.0);
        let ve = crate::expr::LinExpr::sum(xs.iter().zip(&v).map(|(&x, &vi)| vi * x));
        m.set_objective(Sense::Maximize, ve);
        m
    }

    #[test]
    fn parallel_search_is_deterministic() {
        let m = awkward_knapsack();
        let one = m.solve_with(&SolveOptions {
            threads: 1,
            ..Default::default()
        });
        let four = m.solve_with(&SolveOptions {
            threads: 4,
            ..Default::default()
        });
        assert_eq!(one.status, Status::Optimal);
        assert_eq!(four.status, Status::Optimal);
        // Bit-identical, not merely within tolerance: the searches must
        // have taken the same path.
        assert_eq!(one.objective.to_bits(), four.objective.to_bits());
        assert_eq!(one.values, four.values);
    }

    #[test]
    fn warm_starts_actually_fire() {
        let m = awkward_knapsack();
        let (s, stats) = m.solve_with_stats(&SolveOptions::default());
        assert_eq!(s.status, Status::Optimal);
        assert!(stats.nodes >= 1);
        assert!(stats.warm_solves > 0, "B&B never warm-started: {stats:?}");
        assert!(stats.warm_start_hit_rate() > 0.0);
    }
}
