//! Branch & bound for mixed-integer programs.
//!
//! Best-first search on the LP-relaxation bound; branching on the most
//! fractional integer variable, with branches expressed as tightened
//! variable bounds. The paper reports Gurobi closes its MIPs via LP
//! relaxation "with a gap of less than 0.1 %" — our exact solver proves
//! full optimality on the (small) instances it is used for.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::model::{Model, Sense, Solution, SolveOptions, Status, VarKind};
use crate::simplex::{relax, solve_lp};

/// A search node: tightened bounds over the base model.
#[derive(Debug, Clone)]
struct Node {
    /// LP bound of the parent (priority).
    bound: f64,
    /// (var index, new lower, new upper) deltas relative to the base model.
    bounds: Vec<(usize, f64, f64)>,
    depth: usize,
}

/// Max-heap ordering by *best* bound: for minimization, lowest bound
/// first; among equal bounds, deepest node first (diving finds an
/// incumbent quickly, which unlocks pruning).
struct Prioritized {
    key: f64,
    node: Node,
}

impl PartialEq for Prioritized {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.node.depth == other.node.depth
    }
}
impl Eq for Prioritized {}
impl PartialOrd for Prioritized {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Prioritized {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest key popped first,
        // then the deepest node.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.depth.cmp(&other.node.depth))
    }
}

/// Solves a MIP by branch & bound. Called through
/// [`Model::solve_with`] when integer variables are present.
pub fn solve_mip(model: &Model, opts: &SolveOptions) -> Solution {
    let minimize = model.sense != Some(Sense::Maximize);
    // Work on the relaxation; integer kinds live in `model`.
    let mut base = relax(model);

    // Cut-and-branch: strengthen the root with violated knapsack cover
    // cuts (valid for every integer point, so they apply to all nodes).
    for _round in 0..4 {
        let root = solve_lp(&base);
        if root.status != Status::Optimal {
            break;
        }
        let cuts = crate::cuts::cover_cuts(model, &root, 16);
        if cuts.is_empty() {
            break;
        }
        for c in cuts {
            base.le(c.expr, c.rhs);
        }
    }
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind != VarKind::Continuous)
        .map(|(i, _)| i)
        .collect();

    let root = Node { bound: if minimize { f64::NEG_INFINITY } else { f64::INFINITY }, bounds: Vec::new(), depth: 0 };
    let mut heap = BinaryHeap::new();
    heap.push(Prioritized { key: f64::NEG_INFINITY, node: root });

    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;
    let better = |a: f64, b: f64| if minimize { a < b - 1e-9 } else { a > b + 1e-9 };

    while let Some(Prioritized { node, .. }) = heap.pop() {
        nodes += 1;
        if nodes > opts.max_nodes {
            return match incumbent {
                Some(mut s) => {
                    s.status = Status::NodeLimit;
                    s
                }
                None => Solution {
                    status: Status::NodeLimit,
                    objective: f64::NAN,
                    values: vec![f64::NAN; model.num_vars()],
                },
            };
        }
        // Prune against the incumbent using the parent's bound.
        if let Some(inc) = &incumbent {
            if node.bound.is_finite() && !better(node.bound, inc.objective) {
                continue;
            }
        }
        // Apply bound deltas and solve the relaxation.
        let mut lp = base.clone();
        for &(v, lo, hi) in &node.bounds {
            let vd = &mut lp.vars[v];
            vd.lower = vd.lower.max(lo);
            vd.upper = vd.upper.min(hi);
            if vd.lower > vd.upper {
                // Empty domain: infeasible branch.
                continue;
            }
        }
        if node.bounds.iter().any(|&(v, _, _)| lp.vars[v].lower > lp.vars[v].upper) {
            continue;
        }
        let sol = solve_lp(&lp);
        match sol.status {
            Status::Infeasible => continue,
            Status::Unbounded => {
                // An unbounded relaxation at the root means the MIP itself
                // is unbounded (or infeasible; we report unbounded as LP
                // theory prescribes for rational data).
                if node.depth == 0 {
                    return Solution {
                        status: Status::Unbounded,
                        objective: sol.objective,
                        values: sol.values,
                    };
                }
                continue;
            }
            _ => {}
        }
        // Bound prune.
        if let Some(inc) = &incumbent {
            if !better(sol.objective, inc.objective) {
                continue;
            }
        }
        // Find the most fractional integer variable.
        let frac = int_vars
            .iter()
            .map(|&v| {
                let x = sol.values[v];
                let f = (x - x.round()).abs();
                (v, x, f)
            })
            .filter(|&(_, _, f)| f > opts.int_tol)
            .max_by(|a, b| {
                // Most fractional: distance to nearest half, inverted.
                let da = (a.2 - 0.5).abs();
                let db = (b.2 - 0.5).abs();
                db.partial_cmp(&da).unwrap_or(Ordering::Equal)
            });
        match frac {
            None => {
                // Integral: round residue and accept as incumbent.
                let mut vals = sol.values.clone();
                for &v in &int_vars {
                    vals[v] = vals[v].round();
                }
                let cand = Solution { status: Status::Optimal, objective: sol.objective, values: vals };
                let accept = incumbent
                    .as_ref()
                    .is_none_or(|inc| better(cand.objective, inc.objective));
                if accept {
                    incumbent = Some(cand);
                }
            }
            Some((v, x, _)) => {
                let down_hi = x.floor();
                let up_lo = x.ceil();
                let mut down = node.bounds.clone();
                down.push((v, f64::NEG_INFINITY, down_hi));
                let mut up = node.bounds;
                up.push((v, up_lo, f64::INFINITY));
                let key = if minimize { sol.objective } else { -sol.objective };
                heap.push(Prioritized {
                    key,
                    node: Node { bound: sol.objective, bounds: down, depth: node.depth + 1 },
                });
                heap.push(Prioritized {
                    key,
                    node: Node { bound: sol.objective, bounds: up, depth: node.depth + 1 },
                });
            }
        }
    }

    incumbent.unwrap_or(Solution {
        status: Status::Infeasible,
        objective: f64::NAN,
        values: vec![f64::NAN; model.num_vars()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn integer_rounding_differs_from_lp() {
        // max x + y st 2x + 3y ≤ 12, 6x + 5y ≤ 30, x,y ∈ ℤ≥0.
        // LP optimum is fractional; best integer solution obj = 5 (e.g. 3,2).
        let mut m = Model::new();
        let x = m.integer("x", 0, 100);
        let y = m.integer("y", 0, 100);
        m.le(2.0 * x + 3.0 * y, 12.0);
        m.le(6.0 * x + 5.0 * y, 30.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6, "obj={}", s.objective);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn knapsack_small() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30], cap 50 → 220.
        let mut m = Model::new();
        let items: Vec<_> = (0..3).map(|i| m.binary(format!("x{i}"))).collect();
        m.le(
            10.0 * items[0] + (20.0 * items[1] + 30.0 * items[2]),
            50.0,
        );
        m.set_objective(
            Sense::Maximize,
            60.0 * items[0] + (100.0 * items[1] + 120.0 * items[2]),
        );
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 220.0).abs() < 1e-6);
        assert_eq!(s.int_value(items[0]), 0);
        assert_eq!(s.int_value(items[1]), 1);
        assert_eq!(s.int_value(items[2]), 1);
    }

    #[test]
    fn assignment_problem_3x3() {
        // min cost assignment; cost matrix rows→cols.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new();
        let mut x = Vec::new();
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| m.binary(format!("x{i}{j}"))).collect();
            x.push(row);
        }
        for row in &x {
            let e = crate::expr::LinExpr::sum(row.iter().map(|&v| 1.0 * v));
            m.eq(e, 1.0);
        }
        for j in 0..3 {
            let e = crate::expr::LinExpr::sum(x.iter().map(|row| 1.0 * row[j]));
            m.eq(e, 1.0);
        }
        let obj = crate::expr::LinExpr::sum(
            (0..3).flat_map(|i| (0..3).map(move |j| (i, j))).map(|(i, j)| cost[i][j] * x[i][j]),
        );
        m.set_objective(Sense::Minimize, obj);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        // Optimal: (0,1)+(1,0)+(2,2) = 1+2+2 = 5.
        assert!((s.objective - 5.0).abs() < 1e-6, "obj={}", s.objective);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new();
        let x = m.integer("x", 0, 10);
        // 2x = 5 has no integer solution; LP relaxation is feasible (2.5).
        m.eq(2.0 * x, 5.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3y + x st y ∈ ℤ, y ≥ 1.3 (so y ≥ 2), x ≥ 2.6 − y continuous.
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.ge(1.0 * y, 1.3);
        m.ge(x + y, 2.6);
        m.set_objective(Sense::Minimize, 3.0 * y + x);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(y), 2);
        assert!((s.value(x) - 0.6).abs() < 1e-6);
        assert!((s.objective - 6.6).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..12).map(|i| m.binary(format!("b{i}"))).collect();
        let w: Vec<f64> = (0..12).map(|i| (i * 7 % 13 + 3) as f64).collect();
        let e = crate::expr::LinExpr::sum(xs.iter().zip(&w).map(|(&x, &wi)| wi * x));
        m.le(e.clone(), 40.0);
        m.set_objective(Sense::Maximize, e);
        let s = m.solve_with(&SolveOptions { max_nodes: 0, ..Default::default() });
        // With no node budget we cannot prove optimality.
        assert_eq!(s.status, Status::NodeLimit);
    }

    #[test]
    fn equality_mip_with_multiple_formats() {
        // A miniature of the paper's transponder count problem: pick
        // integer counts n100, n200, n400 with 100·n1+200·n2+400·n4 ≥ 700,
        // minimizing count — optimum 2 (400+400 = 800 ≥ 700).
        let mut m = Model::new();
        let n1 = m.integer("n100", 0, 8);
        let n2 = m.integer("n200", 0, 8);
        let n4 = m.integer("n400", 0, 8);
        m.ge(100.0 * n1 + (200.0 * n2 + 400.0 * n4), 700.0);
        m.set_objective(Sense::Minimize, n1 + n2 + n4);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6, "obj={}", s.objective);
        assert_eq!(s.int_value(n4), 2);
    }
}
