//! Incremental re-solve driver: mutate a solved model, re-solve warm.
//!
//! [`IncrementalSolver`] owns a [`Model`] plus the basis of its last
//! successful LP (or MIP root-relaxation) solve. Between solves the model
//! may be mutated through the row-stable primitives —
//! [`add_constraint`](IncrementalSolver::add_constraint),
//! [`deactivate_row`](IncrementalSolver::deactivate_row),
//! [`change_rhs`](IncrementalSolver::change_rhs),
//! [`set_var_bounds`](IncrementalSolver::set_var_bounds),
//! [`set_objective`](IncrementalSolver::set_objective) — and the next
//! [`solve`](IncrementalSolver::solve) starts the dual simplex from the
//! stored basis instead of a cold two-phase start.
//!
//! **Why the stored basis stays valid across every supported mutation.**
//! The simplex standard form has one logical and one artificial pair per
//! row, laid out `[0,n)` structural / `[n,n+m)` logical / `[n+m,n+3m)`
//! artificial. Deactivating a row rebuilds it as the empty row `0 = 0`
//! (its logical column sits happily at 0), changing an rhs or a bound
//! only moves data the dual simplex is designed to chase, and appended
//! rows get their own logical columns as basic variables
//! (`BasisState::extended`) — an identity sub-basis that keeps the
//! basis matrix nonsingular. In every case the basis matrix of the
//! mutated instance is structurally valid, merely (possibly) primal
//! infeasible, which is exactly the dual simplex's job to repair. A
//! basis the machinery cannot repair (singular refactorization, dual
//! budget exhausted) silently degrades to a cold solve — never to a
//! wrong answer.
//!
//! Adding *variables* is the one mutation that invalidates the layout;
//! the solver detects the changed count and quietly drops the basis.

use std::sync::Arc;

use crate::branch_bound::solve_mip_with_root;
use crate::expr::{LinExpr, Var};
use crate::model::{
    Cmp, Model, RowId, Sense, Solution, SolveOptions, SolverStats, Status, VarKind,
};
use crate::simplex::{relax, BasisState, Ctx, Instance, LpOutcome};

/// A model plus the basis of its last solve, re-solved warm after
/// mutations. See the module docs for the validity argument.
pub struct IncrementalSolver {
    model: Model,
    basis: Option<BasisState>,
}

impl IncrementalSolver {
    /// Wraps a model for incremental solving. The first
    /// [`solve`](IncrementalSolver::solve) is necessarily cold.
    pub fn new(model: Model) -> Self {
        IncrementalSolver { model, basis: None }
    }

    /// The wrapped model (read-only).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Mutable access to the wrapped model, for mutations beyond the
    /// passthroughs below (opening groups, adding variables, …). Adding
    /// variables drops the stored basis at the next solve; everything
    /// row-shaped keeps it.
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Appends a constraint (see [`Model::add_constraint`]); the stored
    /// basis is extended over the new row at the next solve.
    pub fn add_constraint(&mut self, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) -> RowId {
        self.model.add_constraint(expr.into(), cmp, rhs)
    }

    /// Replaces a row's right-hand side (see [`Model::change_rhs`]).
    pub fn change_rhs(&mut self, row: RowId, rhs: f64) {
        self.model.change_rhs(row, rhs);
    }

    /// Deactivates a row in place (see [`Model::deactivate_row`]).
    pub fn deactivate_row(&mut self, row: RowId) {
        self.model.deactivate_row(row);
    }

    /// Re-arms a deactivated row (see [`Model::activate_row`]).
    pub fn activate_row(&mut self, row: RowId) {
        self.model.activate_row(row);
    }

    /// Deactivates a batch of rows in one pass — the multi-row ban a
    /// simultaneous k-fiber cut issues (every conflict row of every cut
    /// fiber plus the affected capacity rows). Semantically identical
    /// to deactivating each row in turn; batching exists so callers ban
    /// a whole cut set as one mutation instead of k sequential ones.
    pub fn deactivate_rows(&mut self, rows: &[RowId]) {
        for &r in rows {
            self.model.deactivate_row(r);
        }
    }

    /// Re-arms a batch of deactivated rows (the inverse of
    /// [`deactivate_rows`](Self::deactivate_rows), used when a
    /// multi-fiber mutation is reverted).
    pub fn activate_rows(&mut self, rows: &[RowId]) {
        for &r in rows {
            self.model.activate_row(r);
        }
    }

    /// Replaces a variable's bounds (see [`Model::set_var_bounds`]).
    pub fn set_var_bounds(&mut self, v: Var, lower: f64, upper: f64) {
        self.model.set_var_bounds(v, lower, upper);
    }

    /// Replaces the objective. The basis stays: a changed objective
    /// leaves the point primal feasible and the phase-2 primal cleanup
    /// re-optimizes from it.
    pub fn set_objective(&mut self, sense: Sense, expr: impl Into<LinExpr>) {
        self.model.set_objective(sense, expr);
    }

    /// Adds a fresh variable that enters the given existing rows with the
    /// given coefficients — column generation over the standing model.
    /// Every row keeps its handle, index, group tag, and dual position;
    /// only the variable layout changes, so the stored basis is dropped
    /// and the next solve is cold. This is still a *mutation* of the
    /// standing model (nothing is re-enumerated or re-built), and the
    /// solve after next warm-starts from the refreshed basis as usual.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
        entries: &[(RowId, f64)],
    ) -> Var {
        let v = self.model.add_var(name, kind, lower, upper);
        for &(row, coeff) in entries {
            self.model.add_term(row, v, coeff);
        }
        v
    }

    /// Appends `coeff · v` to an existing row (see [`Model::add_term`]).
    /// Row handles and the stored basis both survive: appending a term
    /// for an existing variable is row data the dual simplex re-chases,
    /// exactly like a changed rhs.
    pub fn add_term(&mut self, row: RowId, v: Var, coeff: f64) {
        self.model.add_term(row, v, coeff);
    }

    /// Discards the stored basis; the next solve is cold. Useful when a
    /// caller knows the model drifted too far for the warm start to help.
    pub fn invalidate_basis(&mut self) {
        self.basis = None;
    }

    /// Whether a basis is stored (the next solve will attempt a warm
    /// start).
    pub fn has_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// Solves the current model — warm from the stored basis when one
    /// fits, cold otherwise — and captures the resulting basis for the
    /// next call. MIPs warm-start their root relaxation and hand the
    /// refreshed root basis to branch & bound.
    pub fn solve(&mut self, opts: &SolveOptions) -> (Solution, SolverStats) {
        let mut stats = SolverStats::default();
        let started = std::time::Instant::now();
        let sol = if self.model.validate().is_err() {
            Solution::sentinel(Status::Error, self.model.num_vars())
        } else if self.model.is_mip() {
            self.solve_mip(opts, &mut stats)
        } else {
            self.solve_lp(&mut stats)
        };
        stats.time_total = started.elapsed();
        (sol, stats)
    }

    /// The stored basis re-targeted at the model's current shape, or
    /// `None` when the variable count changed (layout broken).
    fn prepared_basis(&self) -> Option<BasisState> {
        let bs = self.basis.as_ref()?;
        if bs.num_structurals() != self.model.num_vars()
            || bs.num_rows() > self.model.num_constraints()
        {
            return None;
        }
        Some(bs.extended(self.model.num_constraints()))
    }

    fn solve_lp(&mut self, stats: &mut SolverStats) -> Solution {
        let inst = Arc::new(Instance::build(&self.model));
        let mut ctx = Ctx::new(inst);
        let outcome = match self.prepared_basis() {
            Some(bs) => ctx.solve_warm(Some(&bs)),
            None => ctx.solve_cold(),
        };
        stats.merge(&ctx.stats);
        if outcome == LpOutcome::Optimal {
            self.basis = Some(ctx.basis_state());
        } else {
            self.basis = None;
        }
        ctx.extract_solution(outcome)
    }

    fn solve_mip(&mut self, opts: &SolveOptions, stats: &mut SolverStats) -> Solution {
        let Some(prepared) = self.prepared_basis() else {
            // No usable basis: take the exact same path as a plain
            // `Model::solve_with_stats` so a fresh solver is bit-identical
            // to the non-incremental API (a basis hint at the B&B root
            // can legitimately steer the search to an alternate optimum).
            let sol = solve_mip_with_root(&self.model, opts, stats, None);
            // Harvest a root-relaxation basis for future warm re-solves;
            // bookkeeping only, so its pivots stay out of the reported
            // stats and the solution above is untouched.
            let inst = Arc::new(Instance::build(&relax(&self.model)));
            let mut ctx = Ctx::new(inst);
            self.basis = (ctx.solve_cold() == LpOutcome::Optimal).then(|| ctx.basis_state());
            return sol;
        };
        // Refresh the root-relaxation basis first: it both proves the
        // relaxation is still optimizable from the stored basis and gives
        // branch & bound a root basis matching the *current* model.
        let relaxed = relax(&self.model);
        let inst = Arc::new(Instance::build(&relaxed));
        let mut ctx = Ctx::new(inst);
        let outcome = ctx.solve_warm(Some(&prepared));
        stats.merge(&ctx.stats);
        match outcome {
            LpOutcome::Optimal => {
                let bs = ctx.basis_state();
                self.basis = Some(bs.clone());
                solve_mip_with_root(&self.model, opts, stats, Some(&bs))
            }
            // Relaxation infeasible ⇒ MIP infeasible; relaxation
            // unbounded / errored mirrors the cold B&B root outcomes.
            _ => {
                self.basis = None;
                ctx.extract_solution(outcome)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarKind;

    fn assert_same_solution(a: &Solution, b: &Solution) {
        assert_eq!(a.status, b.status);
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "{} vs {}",
            a.objective,
            b.objective
        );
        assert_eq!(a.values, b.values);
    }

    /// A small LP with a unique optimum at every stage.
    fn lp() -> (Model, RowId, RowId) {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        let r0 = m.le(x + y, 4.0);
        let r1 = m.le(x + 3.0 * y, 6.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        (m, r0, r1)
    }

    #[test]
    fn warm_rhs_change_matches_scratch_lp() {
        let (m, r0, _) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        let (first, s1) = inc.solve(&SolveOptions::default());
        assert_eq!(first.status, Status::Optimal);
        assert_eq!(s1.cold_solves, 1);

        inc.change_rhs(r0, 2.0);
        let (warm, s2) = inc.solve(&SolveOptions::default());
        assert!(s2.warm_solves > 0 && s2.cold_solves == 0, "{s2:?}");

        let mut scratch = m;
        scratch.change_rhs(r0, 2.0);
        assert_same_solution(&warm, &scratch.solve());
    }

    #[test]
    fn warm_added_row_matches_scratch_lp() {
        let (m, _, _) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        let x = Var(0);
        inc.add_constraint(1.0 * x, Cmp::Le, 1.5);
        let (warm, s) = inc.solve(&SolveOptions::default());
        assert!(s.warm_solves > 0 && s.cold_solves == 0, "{s:?}");

        let mut scratch = m;
        scratch.le(1.0 * x, 1.5);
        assert_same_solution(&warm, &scratch.solve());
    }

    #[test]
    fn warm_deactivated_row_matches_scratch_lp() {
        // Deactivate the row whose slack is basic at the first optimum
        // (x=4, y=0 leaves x+3y ≤ 6 slack): the basis matrix keeps full
        // rank, so the re-solve stays warm. Swap the objective so the
        // deactivated row's absence actually moves the optimum.
        let (m, _, r1) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        let (x, y) = (Var(0), Var(1));
        inc.deactivate_row(r1);
        inc.set_objective(Sense::Maximize, 1.0 * x + 4.0 * y);
        let (warm, s) = inc.solve(&SolveOptions::default());
        assert!(s.cold_solves == 0, "{s:?}");

        let mut scratch = m;
        scratch.deactivate_row(r1);
        scratch.set_objective(Sense::Maximize, 1.0 * x + 4.0 * y);
        assert_same_solution(&warm, &scratch.solve());

        // And back again.
        inc.activate_row(r1);
        let (rearmed, _) = inc.solve(&SolveOptions::default());
        let mut orig = scratch;
        orig.activate_row(r1);
        assert_same_solution(&rearmed, &orig.solve());
    }

    #[test]
    fn batched_row_bans_match_sequential_and_revert() {
        // Deactivate both rows as one batch (the multi-fiber ban), then
        // re-arm them as one batch: each stage must match a from-scratch
        // build with the same active set.
        let (m, r0, r1) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        // Minimize while both rows are down (maximizing over nonnegative
        // x, y with no rows left would be unbounded).
        let (x, y) = (Var(0), Var(1));
        inc.deactivate_rows(&[r0, r1]);
        inc.set_objective(Sense::Minimize, 1.0 * x + 1.0 * y);
        let (banned, _) = inc.solve(&SolveOptions::default());
        let mut scratch = m.clone();
        scratch.deactivate_row(r0);
        scratch.deactivate_row(r1);
        scratch.set_objective(Sense::Minimize, 1.0 * x + 1.0 * y);
        assert_same_solution(&banned, &scratch.solve());

        inc.activate_rows(&[r0, r1]);
        inc.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        let (rearmed, _) = inc.solve(&SolveOptions::default());
        assert_same_solution(&rearmed, &m.clone().solve());
    }

    #[test]
    fn deactivating_a_load_bearing_row_degrades_cold_but_stays_correct() {
        // Deactivating the binding row strips the basic structural
        // column's only support in that row: the stored basis goes
        // singular and solve_warm falls back to a cold solve. The answer
        // must still match a from-scratch build.
        let (m, r0, _) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        inc.deactivate_row(r0);
        let (resolved, _) = inc.solve(&SolveOptions::default());
        let mut scratch = m;
        scratch.deactivate_row(r0);
        assert_same_solution(&resolved, &scratch.solve());
    }

    #[test]
    fn warm_objective_swap_matches_scratch_lp() {
        let (m, _, _) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        let (x, y) = (Var(0), Var(1));
        inc.set_objective(Sense::Minimize, 1.0 * x - 2.0 * y);
        let (warm, s) = inc.solve(&SolveOptions::default());
        assert!(s.cold_solves == 0, "{s:?}");

        let mut scratch = m;
        scratch.set_objective(Sense::Minimize, 1.0 * x - 2.0 * y);
        assert_same_solution(&warm, &scratch.solve());
    }

    #[test]
    fn warm_var_bound_change_matches_scratch_lp() {
        let (m, _, _) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        inc.set_var_bounds(Var(0), 0.0, 1.0);
        let (warm, s) = inc.solve(&SolveOptions::default());
        assert!(s.warm_solves > 0 && s.cold_solves == 0, "{s:?}");

        let mut scratch = m;
        scratch.set_var_bounds(Var(0), 0.0, 1.0);
        assert_same_solution(&warm, &scratch.solve());
    }

    #[test]
    fn mutation_to_infeasible_and_back() {
        let (m, r0, _) = lp();
        let mut inc = IncrementalSolver::new(m);
        inc.solve(&SolveOptions::default());
        inc.change_rhs(r0, -1.0); // x + y ≤ −1 with x,y ≥ 0: infeasible
        let (bad, _) = inc.solve(&SolveOptions::default());
        assert_eq!(bad.status, Status::Infeasible);
        assert!(
            !inc.has_basis(),
            "failed solve must not leave a stale basis"
        );
        inc.change_rhs(r0, 4.0);
        let (good, _) = inc.solve(&SolveOptions::default());
        assert_eq!(good.status, Status::Optimal);
        assert!((good.objective - 12.0).abs() < 1e-9);
    }

    #[test]
    fn added_variable_drops_basis_safely() {
        let (m, _, _) = lp();
        let mut inc = IncrementalSolver::new(m);
        inc.solve(&SolveOptions::default());
        let z = inc.model_mut().add_var("z", VarKind::Continuous, 0.0, 2.0);
        let (x, y) = (Var(0), Var(1));
        inc.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y + z);
        let (sol, s) = inc.solve(&SolveOptions::default());
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            s.cold_solves > 0,
            "layout changed: must re-solve cold, got {s:?}"
        );
        assert!((sol.objective - 14.0).abs() < 1e-9);
    }

    #[test]
    fn added_column_matches_scratch_and_rewarms() {
        // Column generation: a new variable enters two existing rows.
        let (m, r0, r1) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        let z = inc.add_column(
            "z",
            VarKind::Continuous,
            0.0,
            f64::INFINITY,
            &[(r0, 1.0), (r1, 1.0)],
        );
        let (x, y) = (Var(0), Var(1));
        inc.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y + 4.0 * z);
        let (sol, s) = inc.solve(&SolveOptions::default());
        assert!(
            s.cold_solves > 0,
            "layout changed: must re-solve cold, got {s:?}"
        );

        let mut scratch = Model::new();
        let sx = scratch.nonneg("x");
        let sy = scratch.nonneg("y");
        let sz = scratch.nonneg("z");
        scratch.le(sx + sy + sz, 4.0);
        scratch.le(sx + 3.0 * sy + sz, 6.0);
        scratch.set_objective(Sense::Maximize, 3.0 * sx + 2.0 * sy + 4.0 * sz);
        assert_same_solution(&sol, &scratch.solve());

        // The refreshed basis covers the new layout: next solve is warm.
        inc.change_rhs(r0, 3.0);
        let (warm, s2) = inc.solve(&SolveOptions::default());
        assert!(s2.warm_solves > 0 && s2.cold_solves == 0, "{s2:?}");
        scratch.change_rhs(RowId(0), 3.0);
        assert_same_solution(&warm, &scratch.solve());
    }

    #[test]
    fn appended_term_on_existing_var_matches_scratch() {
        // x enters r1 with an extra coefficient after the first solve; the
        // stored basis either survives (repaired) or degrades cold — the
        // answer must match a from-scratch build either way.
        let (m, _, r1) = lp();
        let mut inc = IncrementalSolver::new(m.clone());
        inc.solve(&SolveOptions::default());

        inc.add_term(r1, Var(0), 1.0); // x + 3y ≤ 6 becomes 2x + 3y ≤ 6
        let (sol, _) = inc.solve(&SolveOptions::default());

        let mut scratch = Model::new();
        let sx = scratch.nonneg("x");
        let sy = scratch.nonneg("y");
        scratch.le(sx + sy, 4.0);
        scratch.le(2.0 * sx + 3.0 * sy, 6.0);
        scratch.set_objective(Sense::Maximize, 3.0 * sx + 2.0 * sy);
        assert_same_solution(&sol, &scratch.solve());
    }

    /// MIP path: knapsack, then tighten the capacity and re-solve.
    #[test]
    fn warm_mip_matches_scratch() {
        let mut m = Model::new();
        let items: Vec<_> = (0..6).map(|i| m.binary(format!("x{i}"))).collect();
        let w = [10.0, 20.0, 30.0, 14.0, 7.0, 11.0];
        let v = [60.0, 100.0, 120.0, 70.0, 30.0, 40.0];
        let we = LinExpr::sum(items.iter().zip(&w).map(|(&x, &wi)| wi * x));
        let cap = m.le(we, 50.0);
        let ve = LinExpr::sum(items.iter().zip(&v).map(|(&x, &vi)| vi * x));
        m.set_objective(Sense::Maximize, ve);

        let mut inc = IncrementalSolver::new(m.clone());
        let (first, _) = inc.solve(&SolveOptions::default());
        assert_same_solution(&first, &m.solve());

        inc.change_rhs(cap, 31.0);
        let (warm, s) = inc.solve(&SolveOptions::default());
        assert!(s.warm_solves > 0, "{s:?}");
        let mut scratch = m;
        scratch.change_rhs(cap, 31.0);
        let cold = scratch.solve();
        // The warm search may visit nodes in a different order and land on
        // a different *alternate* optimum, so values are compared by
        // optimality, not bit pattern: equal objective, both feasible.
        assert_eq!(warm.status, cold.status);
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert!(scratch.is_feasible(&warm.values, 1e-6));
        assert!(scratch.is_feasible(&cold.values, 1e-6));
    }

    #[test]
    fn malformed_mutation_fails_closed() {
        let (m, r0, _) = lp();
        let mut inc = IncrementalSolver::new(m);
        inc.solve(&SolveOptions::default());
        inc.change_rhs(r0, f64::NAN);
        let (sol, _) = inc.solve(&SolveOptions::default());
        assert_eq!(sol.status, Status::Error);
    }
}
