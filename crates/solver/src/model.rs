//! Optimization model: variables, linear constraints, objective.
//!
//! The stand-in for the Gurobi/JuMP modeling layer the paper uses (§7).
//! A [`Model`] with only continuous variables is solved by the two-phase
//! simplex ([`crate::simplex`]); models with integer or binary variables go
//! through branch & bound ([`crate::branch_bound`]).

use std::time::Duration;

use crate::expr::{LinExpr, Var};

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer in {0, 1}.
    Binary,
}

/// A variable definition.
#[derive(Debug, Clone)]
pub struct VarDef {
    /// Diagnostic name.
    pub name: String,
    /// Domain kind.
    pub kind: VarKind,
    /// Lower bound. Must be finite (the planning formulations are all
    /// bounded below); a non-finite value marks the model malformed and
    /// solving it yields [`Status::Error`] instead of a panic.
    pub lower: f64,
    /// Upper bound; `f64::INFINITY` for unbounded-above.
    pub upper: f64,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Stable handle to a constraint row, returned by
/// [`Model::add_constraint`] (and the `le`/`ge`/`eq` shorthands).
///
/// Row handles stay valid for the lifetime of the model: rows are never
/// removed, only [deactivated](Model::deactivate_row), so a `RowId` also
/// indexes the dual vector returned by the LP entry points — deactivated
/// rows keep their slot (with a zero dual) and row indices never shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub usize);

/// Handle to a named constraint group (see [`Model::group`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub usize);

/// A linear constraint `expr cmp rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side (constant folded into `rhs` at solve time).
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
    /// Group this row belongs to, if any.
    pub group: Option<GroupId>,
    /// Whether the row participates in solves. Inactive rows keep their
    /// index (so handles and dual positions stay stable) but impose no
    /// restriction.
    pub active: bool,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Solver outcome status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// No feasible solution exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Branch & bound hit its node limit before proving optimality; the
    /// incumbent (if any) is returned.
    NodeLimit,
    /// The model is malformed (NaN/infinite coefficients, empty variable
    /// domains declared at build time, missing objective) or the solver hit
    /// an internal safety limit. No meaningful solution exists; callers
    /// should treat this like an exception, not like infeasibility.
    Error,
}

/// A solution: status, objective value, and per-variable values.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Outcome status.
    pub status: Status,
    /// Objective value (meaningful for `Optimal` and `NodeLimit` with
    /// incumbent).
    pub objective: f64,
    /// Variable values indexed by [`Var`].
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of `v` in the solution.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }

    /// Value of `v` rounded to the nearest integer (for integer variables).
    pub fn int_value(&self, v: Var) -> i64 {
        self.values[v.0].round() as i64
    }

    /// A solution carrying a terminal `status` and no usable values.
    pub(crate) fn sentinel(status: Status, num_vars: usize) -> Solution {
        Solution {
            status,
            objective: f64::NAN,
            values: vec![f64::NAN; num_vars],
        }
    }
}

/// Counters and phase timings collected by the simplex / branch & bound
/// machinery during one solve. Returned by [`Model::solve_with_stats`] and
/// surfaced through the bench harness (`solver_stats` binary) so warm-start
/// effectiveness and pivot counts are observable, as the paper observes
/// Gurobi's node/iteration counts.
///
/// All counters are deterministic for a given model; the `time_*` fields
/// are wall-clock measurements and vary run to run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Primal simplex pivots spent in phase 1 (feasibility search).
    pub phase1_pivots: u64,
    /// Primal simplex pivots spent in phase 2 (optimality search).
    pub phase2_pivots: u64,
    /// Dual simplex pivots spent re-optimizing warm-started bases.
    pub dual_pivots: u64,
    /// Nonbasic bound flips (steps that moved a variable across its domain
    /// without a basis change).
    pub bound_flips: u64,
    /// Basis refactorizations (LU from scratch; between two of these the
    /// basis inverse is maintained as an eta file).
    pub refactorizations: u64,
    /// LP solves started from scratch (two-phase primal).
    pub cold_solves: u64,
    /// LP solves warm-started from an inherited basis (dual simplex).
    pub warm_solves: u64,
    /// Branch & bound nodes explored (1 for a pure LP solve path).
    pub nodes: u64,
    /// Knapsack cover cuts added at the branch & bound root.
    pub cuts: u64,
    /// Wall time inside primal phase 1.
    pub time_phase1: Duration,
    /// Wall time inside primal phase 2.
    pub time_phase2: Duration,
    /// Wall time inside the dual simplex (warm starts).
    pub time_dual: Duration,
    /// Wall time of the whole solve.
    pub time_total: Duration,
}

impl SolverStats {
    /// Fraction of LP solves that reused an inherited basis instead of
    /// solving from scratch. `0.0` when no LP was solved.
    pub fn warm_start_hit_rate(&self) -> f64 {
        let total = self.warm_solves + self.cold_solves;
        if total == 0 {
            0.0
        } else {
            self.warm_solves as f64 / total as f64
        }
    }

    /// Total simplex pivots across all phases.
    pub fn total_pivots(&self) -> u64 {
        self.phase1_pivots + self.phase2_pivots + self.dual_pivots
    }

    /// Accumulates `other` into `self` (used when merging per-node or
    /// per-worker counters into a solve-wide total).
    pub fn merge(&mut self, other: &SolverStats) {
        self.phase1_pivots += other.phase1_pivots;
        self.phase2_pivots += other.phase2_pivots;
        self.dual_pivots += other.dual_pivots;
        self.bound_flips += other.bound_flips;
        self.refactorizations += other.refactorizations;
        self.cold_solves += other.cold_solves;
        self.warm_solves += other.warm_solves;
        self.nodes += other.nodes;
        self.cuts += other.cuts;
        self.time_phase1 += other.time_phase1;
        self.time_phase2 += other.time_phase2;
        self.time_dual += other.time_dual;
        self.time_total += other.time_total;
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "nodes {:>8}  cuts {:>4}  warm {:>8}  cold {:>6}  hit-rate {:>5.1}%",
            self.nodes,
            self.cuts,
            self.warm_solves,
            self.cold_solves,
            100.0 * self.warm_start_hit_rate()
        )?;
        writeln!(
            f,
            "pivots: phase1 {:>8}  phase2 {:>8}  dual {:>8}  flips {:>6}  refactor {:>6}",
            self.phase1_pivots,
            self.phase2_pivots,
            self.dual_pivots,
            self.bound_flips,
            self.refactorizations
        )?;
        write!(
            f,
            "time:   phase1 {:>8.2?}  phase2 {:>8.2?}  dual {:>8.2?}  total {:>8.2?}",
            self.time_phase1, self.time_phase2, self.time_dual, self.time_total
        )
    }
}

/// Options controlling the solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Integrality tolerance for branch & bound.
    pub int_tol: f64,
    /// Maximum branch & bound nodes explored.
    pub max_nodes: usize,
    /// Worker threads for parallel branch & bound node exploration.
    /// `0` picks a small default from the machine's parallelism. The
    /// search is deterministic: any thread count returns the identical
    /// solution (nodes are dispatched in fixed-size batches popped in a
    /// deterministic best-bound order and their results applied in that
    /// same order).
    pub threads: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            int_tol: 1e-6,
            max_nodes: 200_000,
            threads: 0,
        }
    }
}

/// An optimization model under construction.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Option<Sense>,
    /// Problems recorded while building (bad bounds etc.); a non-empty
    /// list makes every solve return [`Status::Error`] instead of
    /// panicking mid-pivot on garbage data.
    pub(crate) malformed: Vec<String>,
    /// Interned group names plus the rows tagged into each group, in
    /// insertion order.
    pub(crate) groups: Vec<(String, Vec<RowId>)>,
    /// Group new constraints are tagged into (set by [`Model::group`]).
    pub(crate) current_group: Option<GroupId>,
    /// Debug-only duplicate-diagnostic-name detector: variable names are
    /// how infeasibilities and solver traces are read, so two variables
    /// sharing a name is almost always an enumeration bug upstream.
    #[cfg(debug_assertions)]
    pub(crate) seen_names: std::collections::HashSet<String>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable with explicit kind and bounds.
    ///
    /// Bad bounds (non-finite lower, NaN upper, `lower > upper`) do not
    /// panic: they mark the model malformed, and solving it reports
    /// [`Status::Error`]. Malformed models routinely arise from NaN-tainted
    /// upstream computations, and a solver must fail closed on them.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
    ) -> Var {
        let v = Var(self.vars.len());
        let name = name.into();
        if !lower.is_finite() {
            self.malformed
                .push(format!("variable {name:?}: non-finite lower bound {lower}"));
        }
        if upper.is_nan() {
            self.malformed
                .push(format!("variable {name:?}: NaN upper bound"));
        }
        // `partial_cmp` is `None` for NaN bounds: those also count as an
        // empty domain here, in addition to the NaN records above.
        let ordered = matches!(
            lower.partial_cmp(&upper),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !ordered {
            self.malformed.push(format!(
                "variable {name:?}: empty domain [{lower}, {upper}]"
            ));
        }
        let (lower, upper) = match kind {
            VarKind::Binary => (0.0, 1.0),
            _ => (lower, upper),
        };
        #[cfg(debug_assertions)]
        debug_assert!(
            self.seen_names.insert(name.clone()),
            "duplicate variable name {name:?}: diagnostic names must be unique"
        );
        self.vars.push(VarDef {
            name,
            kind,
            lower,
            upper,
        });
        v
    }

    /// Adds a continuous variable in `[lower, upper]`.
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.add_var(name, VarKind::Continuous, lower, upper)
    }

    /// Adds a non-negative continuous variable.
    pub fn nonneg(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY)
    }

    /// Adds an integer variable in `[lower, upper]`.
    pub fn integer(&mut self, name: impl Into<String>, lower: i64, upper: i64) -> Var {
        self.add_var(name, VarKind::Integer, lower as f64, upper as f64)
    }

    /// Adds a binary variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints ever added (active plus deactivated).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of constraints currently restricting the feasible set.
    pub fn num_active_constraints(&self) -> usize {
        self.constraints.iter().filter(|c| c.active).count()
    }

    /// Whether the model has any integer/binary variable.
    pub fn is_mip(&self) -> bool {
        self.vars.iter().any(|v| v.kind != VarKind::Continuous)
    }

    /// Adds the constraint `expr cmp rhs` and returns its stable handle.
    /// The row is tagged into the current [group](Model::group), if one is
    /// open.
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) -> RowId {
        let e = expr.simplified();
        for (v, _) in &e.terms {
            assert!(
                v.0 < self.vars.len(),
                "constraint references unknown variable"
            );
        }
        let row = RowId(self.constraints.len());
        let group = self.current_group;
        if let Some(g) = group {
            self.groups[g.0].1.push(row);
        }
        self.constraints.push(Constraint {
            expr: e,
            cmp,
            rhs,
            group,
            active: true,
        });
        row
    }

    /// Adds `expr ≤ rhs`.
    pub fn le(&mut self, expr: impl Into<LinExpr>, rhs: f64) -> RowId {
        self.add_constraint(expr.into(), Cmp::Le, rhs)
    }

    /// Adds `expr ≥ rhs`.
    pub fn ge(&mut self, expr: impl Into<LinExpr>, rhs: f64) -> RowId {
        self.add_constraint(expr.into(), Cmp::Ge, rhs)
    }

    /// Adds `expr = rhs`.
    pub fn eq(&mut self, expr: impl Into<LinExpr>, rhs: f64) -> RowId {
        self.add_constraint(expr.into(), Cmp::Eq, rhs)
    }

    /// Opens (creating or re-opening) the named constraint group:
    /// subsequent [`Model::add_constraint`] calls tag their rows into it
    /// until another `group` call or [`Model::end_group`]. Returns the
    /// group's handle.
    pub fn group(&mut self, name: impl Into<String>) -> GroupId {
        let name = name.into();
        let g = match self.groups.iter().position(|(n, _)| *n == name) {
            Some(i) => GroupId(i),
            None => {
                self.groups.push((name, Vec::new()));
                GroupId(self.groups.len() - 1)
            }
        };
        self.current_group = Some(g);
        g
    }

    /// Closes the current group: subsequent constraints are untagged.
    pub fn end_group(&mut self) {
        self.current_group = None;
    }

    /// Looks up a group handle by name.
    pub fn find_group(&self, name: &str) -> Option<GroupId> {
        self.groups.iter().position(|(n, _)| n == name).map(GroupId)
    }

    /// The name a group was created with.
    pub fn group_name(&self, g: GroupId) -> &str {
        &self.groups[g.0].0
    }

    /// The rows tagged into `g`, in insertion order (including rows since
    /// deactivated).
    pub fn group_rows(&self, g: GroupId) -> &[RowId] {
        &self.groups[g.0].1
    }

    /// The constraint behind a row handle.
    pub fn row(&self, row: RowId) -> &Constraint {
        &self.constraints[row.0]
    }

    /// Replaces a row's right-hand side. A non-finite value marks the
    /// model malformed (solves then fail closed), mirroring
    /// [`Model::add_var`]'s treatment of bad bounds.
    pub fn change_rhs(&mut self, row: RowId, rhs: f64) {
        if !rhs.is_finite() {
            self.malformed
                .push(format!("constraint {}: rhs changed to {rhs}", row.0));
        }
        self.constraints[row.0].rhs = rhs;
    }

    /// Appends `coeff · v` to an existing row's left-hand side — the
    /// column half of the mutation vocabulary: a variable created after
    /// the row was built can enter it without rebuilding the model. The
    /// row keeps its handle, index, group tag, and dual position. A
    /// non-finite coefficient marks the model malformed (solves then
    /// fail closed), mirroring [`Model::change_rhs`].
    pub fn add_term(&mut self, row: RowId, v: Var, coeff: f64) {
        assert!(
            v.0 < self.vars.len(),
            "row term references unknown variable"
        );
        if !coeff.is_finite() {
            self.malformed.push(format!(
                "constraint {}: appended coefficient of {:?} is {coeff}",
                row.0, self.vars[v.0].name
            ));
        }
        let expr = &mut self.constraints[row.0].expr;
        expr.add_term(v, coeff);
        *expr = expr.simplified();
    }

    /// Removes a row from the feasible-set definition without removing
    /// its slot: handles, row indices, and dual positions all stay valid,
    /// which is what lets a warm-started basis survive the mutation.
    pub fn deactivate_row(&mut self, row: RowId) {
        self.constraints[row.0].active = false;
    }

    /// Re-arms a row previously deactivated.
    pub fn activate_row(&mut self, row: RowId) {
        self.constraints[row.0].active = true;
    }

    /// Replaces a variable's bounds (binary variables stay clamped to
    /// `{0,1}` domains by their kind at solve time; this still records
    /// malformed bounds like [`Model::add_var`]).
    pub fn set_var_bounds(&mut self, v: Var, lower: f64, upper: f64) {
        let name = &self.vars[v.0].name;
        if !lower.is_finite() {
            self.malformed
                .push(format!("variable {name:?}: non-finite lower bound {lower}"));
        }
        if upper.is_nan() {
            self.malformed
                .push(format!("variable {name:?}: NaN upper bound"));
        }
        if !matches!(
            lower.partial_cmp(&upper),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ) {
            self.malformed.push(format!(
                "variable {name:?}: empty domain [{lower}, {upper}]"
            ));
        }
        self.vars[v.0].lower = lower;
        self.vars[v.0].upper = upper;
    }

    /// Left-hand-side value of a row under `values` (the row's activity).
    pub fn row_activity(&self, row: RowId, values: &[f64]) -> f64 {
        self.constraints[row.0].expr.eval(values)
    }

    /// Slack of a row under `values`: distance to the binding direction
    /// (`rhs − lhs` for `≤` and `=`, `lhs − rhs` for `≥`); non-negative
    /// iff the inequality row is satisfied.
    pub fn row_slack(&self, row: RowId, values: &[f64]) -> f64 {
        let c = &self.constraints[row.0];
        let lhs = c.expr.eval(values);
        match c.cmp {
            Cmp::Le | Cmp::Eq => c.rhs - lhs,
            Cmp::Ge => lhs - c.rhs,
        }
    }

    /// Extracts the dual values of a group's rows from a full dual vector
    /// (as returned by [`crate::solve_lp_with_duals`]), pairing each with
    /// its handle. Inactive rows report a zero dual.
    pub fn group_duals(&self, g: GroupId, duals: &[f64]) -> Vec<(RowId, f64)> {
        self.groups[g.0]
            .1
            .iter()
            .map(|&r| {
                (
                    r,
                    if self.constraints[r.0].active {
                        duals[r.0]
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }

    /// Sets the objective.
    pub fn set_objective(&mut self, sense: Sense, expr: impl Into<LinExpr>) {
        self.sense = Some(sense);
        self.objective = expr.into().simplified();
    }

    /// Checks the model for data that would poison the solver: non-finite
    /// bounds recorded at build time, NaN/infinite coefficients or
    /// right-hand sides, and a missing objective sense. Returns the first
    /// problem found. Called by every solve entry point so malformed
    /// models yield [`Status::Error`] rather than panics or garbage pivots.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(first) = self.malformed.first() {
            return Err(first.clone());
        }
        if self.sense.is_none() {
            return Err("objective sense not set".into());
        }
        self.check_data()
    }

    /// Data-only validation: everything [`Model::validate`] checks except
    /// the objective sense (the simplex entry points default a missing
    /// sense to minimization, so raw LP solves stay permissive).
    pub(crate) fn check_data(&self) -> Result<(), String> {
        if let Some(first) = self.malformed.first() {
            return Err(first.clone());
        }
        if !self.objective.constant.is_finite() {
            return Err(format!("objective constant is {}", self.objective.constant));
        }
        for &(v, c) in &self.objective.terms {
            if !c.is_finite() {
                return Err(format!(
                    "objective coefficient of {:?} is {c}",
                    self.vars[v.0].name
                ));
            }
        }
        for (i, con) in self.constraints.iter().enumerate() {
            if !con.rhs.is_finite() {
                return Err(format!("constraint {i}: rhs is {}", con.rhs));
            }
            if !con.expr.constant.is_finite() {
                return Err(format!("constraint {i}: constant is {}", con.expr.constant));
            }
            for &(v, c) in &con.expr.terms {
                if !c.is_finite() {
                    return Err(format!(
                        "constraint {i}: coefficient of {:?} is {c}",
                        self.vars[v.0].name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Solves with default options.
    pub fn solve(&self) -> Solution {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves with explicit options: simplex for pure LPs, branch & bound
    /// when integer variables are present.
    pub fn solve_with(&self, opts: &SolveOptions) -> Solution {
        self.solve_with_stats(opts).0
    }

    /// Like [`Model::solve_with`], additionally returning the
    /// [`SolverStats`] counter block (pivots, refactorizations, nodes,
    /// warm-start hit rate, per-phase wall time).
    pub fn solve_with_stats(&self, opts: &SolveOptions) -> (Solution, SolverStats) {
        let mut stats = SolverStats::default();
        let started = std::time::Instant::now();
        let sol = if self.validate().is_err() {
            Solution::sentinel(Status::Error, self.num_vars())
        } else if self.is_mip() {
            crate::branch_bound::solve_mip_with_stats(self, opts, &mut stats)
        } else {
            crate::simplex::solve_lp_collecting(self, &mut stats, None)
        };
        stats.time_total = started.elapsed();
        (sol, stats)
    }

    /// Checks whether `values` satisfies every constraint and bound within
    /// `tol` — used by tests and by callers validating heuristics against
    /// the exact model.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, vd) in self.vars.iter().enumerate() {
            let v = values[i];
            if v < vd.lower - tol || v > vd.upper + tol {
                return false;
            }
            if vd.kind != VarKind::Continuous && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().filter(|c| c.active).all(|c| {
            let lhs = c.expr.eval(values);
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_accounting() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.le(x + y, 5.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!(m.is_mip());
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.le(x + 2.0 * y, 8.0);
        m.set_objective(Sense::Maximize, x + y);
        assert!(m.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[3.0, 3.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[2.0, 2.5], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9)); // bound
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_foreign_vars() {
        let mut m = Model::new();
        let _x = m.nonneg("x");
        m.le(LinExpr::term(Var(5), 1.0), 1.0);
    }

    #[test]
    fn binary_bounds_forced() {
        let mut m = Model::new();
        let b = m.add_var("b", VarKind::Binary, -5.0, 5.0);
        assert_eq!(m.vars[b.0].lower, 0.0);
        assert_eq!(m.vars[b.0].upper, 1.0);
    }

    // --- malformed models must fail closed (Status::Error), never panic ---

    #[test]
    fn nan_lower_bound_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.continuous("x", f64::NAN, 5.0);
        m.le(1.0 * x, 3.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Error);
        assert!(s.objective.is_nan());
    }

    #[test]
    fn infinite_lower_bound_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.continuous("x", f64::NEG_INFINITY, 5.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn empty_variable_domain_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.continuous("x", 3.0, 1.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn nan_coefficient_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(f64::NAN * x, 1.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn nan_rhs_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(1.0 * x, f64::NAN);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn missing_objective_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(1.0 * x, 1.0);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn malformed_mip_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.integer("x", 0, 10);
        let y = m.continuous("y", f64::NAN, 1.0);
        m.le(x + y, 5.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn validate_reports_first_problem() {
        let mut m = Model::new();
        let _ = m.continuous("bad", f64::NAN, 1.0);
        let err = m.validate().unwrap_err();
        assert!(err.contains("bad"), "unhelpful error: {err}");
    }

    // --- constraint groups, row handles, and mutation primitives ---

    #[test]
    fn groups_collect_rows_in_order() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        let cap = m.group("capacity");
        let r0 = m.le(x + y, 5.0);
        let r1 = m.le(2.0 * x, 4.0);
        m.end_group();
        let r2 = m.ge(1.0 * y, 1.0); // untagged
        m.group("capacity"); // re-open
        let r3 = m.le(3.0 * y, 9.0);
        assert_eq!(m.find_group("capacity"), Some(cap));
        assert_eq!(m.group_name(cap), "capacity");
        assert_eq!(m.group_rows(cap), &[r0, r1, r3]);
        assert_eq!(m.row(r2).group, None);
        assert_eq!(m.row(r0).group, Some(cap));
        assert_eq!((r0, r1, r2, r3), (RowId(0), RowId(1), RowId(2), RowId(3)));
    }

    #[test]
    fn deactivated_rows_keep_indices_but_stop_binding() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let tight = m.le(1.0 * x, 1.0);
        m.le(1.0 * x, 10.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert!((m.solve().objective - 1.0).abs() < 1e-9);
        m.deactivate_row(tight);
        assert_eq!(m.num_constraints(), 2);
        assert_eq!(m.num_active_constraints(), 1);
        assert!((m.solve().objective - 10.0).abs() < 1e-9);
        assert!(
            m.is_feasible(&[10.0], 1e-9),
            "inactive row must not bind feasibility"
        );
        m.activate_row(tight);
        assert!((m.solve().objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn change_rhs_moves_the_optimum() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let r = m.le(1.0 * x, 3.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert!((m.solve().objective - 3.0).abs() < 1e-9);
        m.change_rhs(r, 7.0);
        assert!((m.solve().objective - 7.0).abs() < 1e-9);
        m.change_rhs(r, f64::NAN);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn set_var_bounds_validates_like_add_var() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(1.0 * x, 100.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        m.set_var_bounds(x, 0.0, 2.0);
        assert!((m.solve().objective - 2.0).abs() < 1e-9);
        m.set_var_bounds(x, 5.0, 2.0); // empty domain → malformed
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn add_term_extends_row_in_place() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let r = m.le(1.0 * x, 6.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert!((m.solve().objective - 6.0).abs() < 1e-9);
        let y = m.nonneg("y");
        m.add_term(r, y, 2.0); // x + 2y ≤ 6
        m.set_objective(Sense::Maximize, x + 5.0 * y);
        assert!((m.solve().objective - 15.0).abs() < 1e-9);
        // Merging onto an existing variable folds coefficients.
        m.add_term(r, x, 1.0); // 2x + 2y ≤ 6
        assert_eq!(m.row(r).expr.terms.len(), 2);
        m.add_term(r, x, f64::NAN);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn add_term_rejects_foreign_vars() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let r = m.le(1.0 * x, 1.0);
        m.add_term(r, Var(7), 1.0);
    }

    #[test]
    fn activity_slack_and_group_duals() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        let g = m.group("cap");
        let r0 = m.le(x + y, 4.0);
        let r1 = m.ge(1.0 * x, 1.0);
        m.end_group();
        let vals = [1.0, 2.0];
        assert!((m.row_activity(r0, &vals) - 3.0).abs() < 1e-12);
        assert!((m.row_slack(r0, &vals) - 1.0).abs() < 1e-12);
        assert!((m.row_slack(r1, &vals) - 0.0).abs() < 1e-12);
        m.deactivate_row(r1);
        let duals = [0.25, 9.0];
        assert_eq!(m.group_duals(g, &duals), vec![(r0, 0.25), (r1, 0.0)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_names_panic_in_debug() {
        let mut m = Model::new();
        m.nonneg("x");
        m.nonneg("x");
    }
}
