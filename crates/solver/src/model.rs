//! Optimization model: variables, linear constraints, objective.
//!
//! The stand-in for the Gurobi/JuMP modeling layer the paper uses (§7).
//! A [`Model`] with only continuous variables is solved by the two-phase
//! simplex ([`crate::simplex`]); models with integer or binary variables go
//! through branch & bound ([`crate::branch_bound`]).

use std::time::Duration;

use crate::expr::{LinExpr, Var};

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer in {0, 1}.
    Binary,
}

/// A variable definition.
#[derive(Debug, Clone)]
pub struct VarDef {
    /// Diagnostic name.
    pub name: String,
    /// Domain kind.
    pub kind: VarKind,
    /// Lower bound. Must be finite (the planning formulations are all
    /// bounded below); a non-finite value marks the model malformed and
    /// solving it yields [`Status::Error`] instead of a panic.
    pub lower: f64,
    /// Upper bound; `f64::INFINITY` for unbounded-above.
    pub upper: f64,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A linear constraint `expr cmp rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side (constant folded into `rhs` at solve time).
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Solver outcome status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// No feasible solution exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Branch & bound hit its node limit before proving optimality; the
    /// incumbent (if any) is returned.
    NodeLimit,
    /// The model is malformed (NaN/infinite coefficients, empty variable
    /// domains declared at build time, missing objective) or the solver hit
    /// an internal safety limit. No meaningful solution exists; callers
    /// should treat this like an exception, not like infeasibility.
    Error,
}

/// A solution: status, objective value, and per-variable values.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Outcome status.
    pub status: Status,
    /// Objective value (meaningful for `Optimal` and `NodeLimit` with
    /// incumbent).
    pub objective: f64,
    /// Variable values indexed by [`Var`].
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of `v` in the solution.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }

    /// Value of `v` rounded to the nearest integer (for integer variables).
    pub fn int_value(&self, v: Var) -> i64 {
        self.values[v.0].round() as i64
    }

    /// A solution carrying a terminal `status` and no usable values.
    pub(crate) fn sentinel(status: Status, num_vars: usize) -> Solution {
        Solution { status, objective: f64::NAN, values: vec![f64::NAN; num_vars] }
    }
}

/// Counters and phase timings collected by the simplex / branch & bound
/// machinery during one solve. Returned by [`Model::solve_with_stats`] and
/// surfaced through the bench harness (`solver_stats` binary) so warm-start
/// effectiveness and pivot counts are observable, as the paper observes
/// Gurobi's node/iteration counts.
///
/// All counters are deterministic for a given model; the `time_*` fields
/// are wall-clock measurements and vary run to run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Primal simplex pivots spent in phase 1 (feasibility search).
    pub phase1_pivots: u64,
    /// Primal simplex pivots spent in phase 2 (optimality search).
    pub phase2_pivots: u64,
    /// Dual simplex pivots spent re-optimizing warm-started bases.
    pub dual_pivots: u64,
    /// Nonbasic bound flips (steps that moved a variable across its domain
    /// without a basis change).
    pub bound_flips: u64,
    /// Basis refactorizations (LU from scratch; between two of these the
    /// basis inverse is maintained as an eta file).
    pub refactorizations: u64,
    /// LP solves started from scratch (two-phase primal).
    pub cold_solves: u64,
    /// LP solves warm-started from an inherited basis (dual simplex).
    pub warm_solves: u64,
    /// Branch & bound nodes explored (1 for a pure LP solve path).
    pub nodes: u64,
    /// Knapsack cover cuts added at the branch & bound root.
    pub cuts: u64,
    /// Wall time inside primal phase 1.
    pub time_phase1: Duration,
    /// Wall time inside primal phase 2.
    pub time_phase2: Duration,
    /// Wall time inside the dual simplex (warm starts).
    pub time_dual: Duration,
    /// Wall time of the whole solve.
    pub time_total: Duration,
}

impl SolverStats {
    /// Fraction of LP solves that reused an inherited basis instead of
    /// solving from scratch. `0.0` when no LP was solved.
    pub fn warm_start_hit_rate(&self) -> f64 {
        let total = self.warm_solves + self.cold_solves;
        if total == 0 {
            0.0
        } else {
            self.warm_solves as f64 / total as f64
        }
    }

    /// Total simplex pivots across all phases.
    pub fn total_pivots(&self) -> u64 {
        self.phase1_pivots + self.phase2_pivots + self.dual_pivots
    }

    /// Accumulates `other` into `self` (used when merging per-node or
    /// per-worker counters into a solve-wide total).
    pub fn merge(&mut self, other: &SolverStats) {
        self.phase1_pivots += other.phase1_pivots;
        self.phase2_pivots += other.phase2_pivots;
        self.dual_pivots += other.dual_pivots;
        self.bound_flips += other.bound_flips;
        self.refactorizations += other.refactorizations;
        self.cold_solves += other.cold_solves;
        self.warm_solves += other.warm_solves;
        self.nodes += other.nodes;
        self.cuts += other.cuts;
        self.time_phase1 += other.time_phase1;
        self.time_phase2 += other.time_phase2;
        self.time_dual += other.time_dual;
        self.time_total += other.time_total;
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "nodes {:>8}  cuts {:>4}  warm {:>8}  cold {:>6}  hit-rate {:>5.1}%",
            self.nodes,
            self.cuts,
            self.warm_solves,
            self.cold_solves,
            100.0 * self.warm_start_hit_rate()
        )?;
        writeln!(
            f,
            "pivots: phase1 {:>8}  phase2 {:>8}  dual {:>8}  flips {:>6}  refactor {:>6}",
            self.phase1_pivots,
            self.phase2_pivots,
            self.dual_pivots,
            self.bound_flips,
            self.refactorizations
        )?;
        write!(
            f,
            "time:   phase1 {:>8.2?}  phase2 {:>8.2?}  dual {:>8.2?}  total {:>8.2?}",
            self.time_phase1, self.time_phase2, self.time_dual, self.time_total
        )
    }
}

/// Options controlling the solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Integrality tolerance for branch & bound.
    pub int_tol: f64,
    /// Maximum branch & bound nodes explored.
    pub max_nodes: usize,
    /// Worker threads for parallel branch & bound node exploration.
    /// `0` picks a small default from the machine's parallelism. The
    /// search is deterministic: any thread count returns the identical
    /// solution (nodes are dispatched in fixed-size batches popped in a
    /// deterministic best-bound order and their results applied in that
    /// same order).
    pub threads: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { int_tol: 1e-6, max_nodes: 200_000, threads: 0 }
    }
}

/// An optimization model under construction.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Option<Sense>,
    /// Problems recorded while building (bad bounds etc.); a non-empty
    /// list makes every solve return [`Status::Error`] instead of
    /// panicking mid-pivot on garbage data.
    pub(crate) malformed: Vec<String>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable with explicit kind and bounds.
    ///
    /// Bad bounds (non-finite lower, NaN upper, `lower > upper`) do not
    /// panic: they mark the model malformed, and solving it reports
    /// [`Status::Error`]. Malformed models routinely arise from NaN-tainted
    /// upstream computations, and a solver must fail closed on them.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind, lower: f64, upper: f64) -> Var {
        let v = Var(self.vars.len());
        let name = name.into();
        if !lower.is_finite() {
            self.malformed.push(format!("variable {name:?}: non-finite lower bound {lower}"));
        }
        if upper.is_nan() {
            self.malformed.push(format!("variable {name:?}: NaN upper bound"));
        }
        // `partial_cmp` is `None` for NaN bounds: those also count as an
        // empty domain here, in addition to the NaN records above.
        let ordered = matches!(
            lower.partial_cmp(&upper),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !ordered {
            self.malformed.push(format!("variable {name:?}: empty domain [{lower}, {upper}]"));
        }
        let (lower, upper) = match kind {
            VarKind::Binary => (0.0, 1.0),
            _ => (lower, upper),
        };
        self.vars.push(VarDef { name, kind, lower, upper });
        v
    }

    /// Adds a continuous variable in `[lower, upper]`.
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.add_var(name, VarKind::Continuous, lower, upper)
    }

    /// Adds a non-negative continuous variable.
    pub fn nonneg(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY)
    }

    /// Adds an integer variable in `[lower, upper]`.
    pub fn integer(&mut self, name: impl Into<String>, lower: i64, upper: i64) -> Var {
        self.add_var(name, VarKind::Integer, lower as f64, upper as f64)
    }

    /// Adds a binary variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the model has any integer/binary variable.
    pub fn is_mip(&self) -> bool {
        self.vars.iter().any(|v| v.kind != VarKind::Continuous)
    }

    /// Adds the constraint `expr cmp rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        let e = expr.simplified();
        for (v, _) in &e.terms {
            assert!(v.0 < self.vars.len(), "constraint references unknown variable");
        }
        self.constraints.push(Constraint { expr: e, cmp, rhs });
    }

    /// Adds `expr ≤ rhs`.
    pub fn le(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr.into(), Cmp::Le, rhs);
    }

    /// Adds `expr ≥ rhs`.
    pub fn ge(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr.into(), Cmp::Ge, rhs);
    }

    /// Adds `expr = rhs`.
    pub fn eq(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr.into(), Cmp::Eq, rhs);
    }

    /// Sets the objective.
    pub fn set_objective(&mut self, sense: Sense, expr: impl Into<LinExpr>) {
        self.sense = Some(sense);
        self.objective = expr.into().simplified();
    }

    /// Checks the model for data that would poison the solver: non-finite
    /// bounds recorded at build time, NaN/infinite coefficients or
    /// right-hand sides, and a missing objective sense. Returns the first
    /// problem found. Called by every solve entry point so malformed
    /// models yield [`Status::Error`] rather than panics or garbage pivots.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(first) = self.malformed.first() {
            return Err(first.clone());
        }
        if self.sense.is_none() {
            return Err("objective sense not set".into());
        }
        self.check_data()
    }

    /// Data-only validation: everything [`Model::validate`] checks except
    /// the objective sense (the simplex entry points default a missing
    /// sense to minimization, so raw LP solves stay permissive).
    pub(crate) fn check_data(&self) -> Result<(), String> {
        if let Some(first) = self.malformed.first() {
            return Err(first.clone());
        }
        if !self.objective.constant.is_finite() {
            return Err(format!("objective constant is {}", self.objective.constant));
        }
        for &(v, c) in &self.objective.terms {
            if !c.is_finite() {
                return Err(format!("objective coefficient of {:?} is {c}", self.vars[v.0].name));
            }
        }
        for (i, con) in self.constraints.iter().enumerate() {
            if !con.rhs.is_finite() {
                return Err(format!("constraint {i}: rhs is {}", con.rhs));
            }
            if !con.expr.constant.is_finite() {
                return Err(format!("constraint {i}: constant is {}", con.expr.constant));
            }
            for &(v, c) in &con.expr.terms {
                if !c.is_finite() {
                    return Err(format!(
                        "constraint {i}: coefficient of {:?} is {c}",
                        self.vars[v.0].name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Solves with default options.
    pub fn solve(&self) -> Solution {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves with explicit options: simplex for pure LPs, branch & bound
    /// when integer variables are present.
    pub fn solve_with(&self, opts: &SolveOptions) -> Solution {
        self.solve_with_stats(opts).0
    }

    /// Like [`Model::solve_with`], additionally returning the
    /// [`SolverStats`] counter block (pivots, refactorizations, nodes,
    /// warm-start hit rate, per-phase wall time).
    pub fn solve_with_stats(&self, opts: &SolveOptions) -> (Solution, SolverStats) {
        let mut stats = SolverStats::default();
        let started = std::time::Instant::now();
        let sol = if self.validate().is_err() {
            Solution::sentinel(Status::Error, self.num_vars())
        } else if self.is_mip() {
            crate::branch_bound::solve_mip_with_stats(self, opts, &mut stats)
        } else {
            crate::simplex::solve_lp_collecting(self, &mut stats, None)
        };
        stats.time_total = started.elapsed();
        (sol, stats)
    }

    /// Checks whether `values` satisfies every constraint and bound within
    /// `tol` — used by tests and by callers validating heuristics against
    /// the exact model.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, vd) in self.vars.iter().enumerate() {
            let v = values[i];
            if v < vd.lower - tol || v > vd.upper + tol {
                return false;
            }
            if vd.kind != VarKind::Continuous && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_accounting() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.le(x + y, 5.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!(m.is_mip());
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.le(x + 2.0 * y, 8.0);
        m.set_objective(Sense::Maximize, x + y);
        assert!(m.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[3.0, 3.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[2.0, 2.5], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9)); // bound
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_foreign_vars() {
        let mut m = Model::new();
        let _x = m.nonneg("x");
        m.le(LinExpr::term(Var(5), 1.0), 1.0);
    }

    #[test]
    fn binary_bounds_forced() {
        let mut m = Model::new();
        let b = m.add_var("b", VarKind::Binary, -5.0, 5.0);
        assert_eq!(m.vars[b.0].lower, 0.0);
        assert_eq!(m.vars[b.0].upper, 1.0);
    }

    // --- malformed models must fail closed (Status::Error), never panic ---

    #[test]
    fn nan_lower_bound_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.continuous("x", f64::NAN, 5.0);
        m.le(1.0 * x, 3.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        let s = m.solve();
        assert_eq!(s.status, Status::Error);
        assert!(s.objective.is_nan());
    }

    #[test]
    fn infinite_lower_bound_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.continuous("x", f64::NEG_INFINITY, 5.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn empty_variable_domain_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.continuous("x", 3.0, 1.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn nan_coefficient_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(f64::NAN * x, 1.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn nan_rhs_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(1.0 * x, f64::NAN);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn missing_objective_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        m.le(1.0 * x, 1.0);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn malformed_mip_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.integer("x", 0, 10);
        let y = m.continuous("y", f64::NAN, 1.0);
        m.le(x + y, 5.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.solve().status, Status::Error);
    }

    #[test]
    fn validate_reports_first_problem() {
        let mut m = Model::new();
        let _ = m.continuous("bad", f64::NAN, 1.0);
        let err = m.validate().unwrap_err();
        assert!(err.contains("bad"), "unhelpful error: {err}");
    }
}
