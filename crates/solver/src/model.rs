//! Optimization model: variables, linear constraints, objective.
//!
//! The stand-in for the Gurobi/JuMP modeling layer the paper uses (§7).
//! A [`Model`] with only continuous variables is solved by the two-phase
//! simplex ([`crate::simplex`]); models with integer or binary variables go
//! through branch & bound ([`crate::branch_bound`]).

use crate::expr::{LinExpr, Var};

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer in {0, 1}.
    Binary,
}

/// A variable definition.
#[derive(Debug, Clone)]
pub struct VarDef {
    /// Diagnostic name.
    pub name: String,
    /// Domain kind.
    pub kind: VarKind,
    /// Lower bound (finite; the planning formulations are all bounded).
    pub lower: f64,
    /// Upper bound; `f64::INFINITY` for unbounded-above.
    pub upper: f64,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A linear constraint `expr cmp rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side (constant folded into `rhs` at solve time).
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Solver outcome status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// No feasible solution exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Branch & bound hit its node limit before proving optimality; the
    /// incumbent (if any) is returned.
    NodeLimit,
}

/// A solution: status, objective value, and per-variable values.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Outcome status.
    pub status: Status,
    /// Objective value (meaningful for `Optimal` and `NodeLimit` with
    /// incumbent).
    pub objective: f64,
    /// Variable values indexed by [`Var`].
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of `v` in the solution.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }

    /// Value of `v` rounded to the nearest integer (for integer variables).
    pub fn int_value(&self, v: Var) -> i64 {
        self.values[v.0].round() as i64
    }
}

/// Options controlling the solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Integrality tolerance for branch & bound.
    pub int_tol: f64,
    /// Maximum branch & bound nodes explored.
    pub max_nodes: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { int_tol: 1e-6, max_nodes: 200_000 }
    }
}

/// An optimization model under construction.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Option<Sense>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable with explicit kind and bounds.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind, lower: f64, upper: f64) -> Var {
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(lower <= upper, "empty variable domain");
        let v = Var(self.vars.len());
        let (lower, upper) = match kind {
            VarKind::Binary => (0.0, 1.0),
            _ => (lower, upper),
        };
        self.vars.push(VarDef { name: name.into(), kind, lower, upper });
        v
    }

    /// Adds a continuous variable in `[lower, upper]`.
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.add_var(name, VarKind::Continuous, lower, upper)
    }

    /// Adds a non-negative continuous variable.
    pub fn nonneg(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY)
    }

    /// Adds an integer variable in `[lower, upper]`.
    pub fn integer(&mut self, name: impl Into<String>, lower: i64, upper: i64) -> Var {
        self.add_var(name, VarKind::Integer, lower as f64, upper as f64)
    }

    /// Adds a binary variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the model has any integer/binary variable.
    pub fn is_mip(&self) -> bool {
        self.vars.iter().any(|v| v.kind != VarKind::Continuous)
    }

    /// Adds the constraint `expr cmp rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        let e = expr.simplified();
        for (v, _) in &e.terms {
            assert!(v.0 < self.vars.len(), "constraint references unknown variable");
        }
        self.constraints.push(Constraint { expr: e, cmp, rhs });
    }

    /// Adds `expr ≤ rhs`.
    pub fn le(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr.into(), Cmp::Le, rhs);
    }

    /// Adds `expr ≥ rhs`.
    pub fn ge(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr.into(), Cmp::Ge, rhs);
    }

    /// Adds `expr = rhs`.
    pub fn eq(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr.into(), Cmp::Eq, rhs);
    }

    /// Sets the objective.
    pub fn set_objective(&mut self, sense: Sense, expr: impl Into<LinExpr>) {
        self.sense = Some(sense);
        self.objective = expr.into().simplified();
    }

    /// Solves with default options.
    pub fn solve(&self) -> Solution {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves with explicit options: simplex for pure LPs, branch & bound
    /// when integer variables are present.
    pub fn solve_with(&self, opts: &SolveOptions) -> Solution {
        assert!(self.sense.is_some(), "objective must be set before solving");
        if self.is_mip() {
            crate::branch_bound::solve_mip(self, opts)
        } else {
            crate::simplex::solve_lp(self)
        }
    }

    /// Checks whether `values` satisfies every constraint and bound within
    /// `tol` — used by tests and by callers validating heuristics against
    /// the exact model.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, vd) in self.vars.iter().enumerate() {
            let v = values[i];
            if v < vd.lower - tol || v > vd.upper + tol {
                return false;
            }
            if vd.kind != VarKind::Continuous && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_accounting() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.le(x + y, 5.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!(m.is_mip());
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.integer("y", 0, 10);
        m.le(x + 2.0 * y, 8.0);
        m.set_objective(Sense::Maximize, x + y);
        assert!(m.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[3.0, 3.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[2.0, 2.5], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9)); // bound
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_foreign_vars() {
        let mut m = Model::new();
        let _x = m.nonneg("x");
        m.le(LinExpr::term(Var(5), 1.0), 1.0);
    }

    #[test]
    fn binary_bounds_forced() {
        let mut m = Model::new();
        let b = m.add_var("b", VarKind::Binary, -5.0, 5.0);
        assert_eq!(m.vars[b.0].lower, 0.0);
        assert_eq!(m.vars[b.0].upper, 1.0);
    }
}
