//! Presolve: problem reductions applied before the simplex/branch & bound
//! machinery, mirroring what production MIP solvers do first.
//!
//! Implemented reductions (applied to fixpoint):
//!
//! * **empty rows** — constraints with no variables are checked against
//!   their right-hand side and dropped (or declare infeasibility);
//! * **singleton rows** — `a·x ⋈ b` rows become variable bounds;
//! * **fixed variables** — `lower == upper` variables are substituted
//!   into every row and the objective;
//! * **bound tightening** — each row's activity bounds imply tighter
//!   variable bounds (one sweep per fixpoint round), with integral
//!   rounding for integer/binary variables;
//! * **infeasibility detection** — empty domains and unsatisfiable rows
//!   surface immediately, without a simplex run.
//!
//! [`presolve`] returns a reduced model plus the mapping needed to lift a
//! reduced-space solution back to the original variables; equivalence is
//! checked by randomized tests against the raw solver.

use crate::expr::LinExpr;
use crate::model::{Cmp, Model, Solution, Status, VarKind};

/// Outcome of presolving a model.
#[derive(Debug, Clone)]
pub enum Presolved {
    /// The problem was proven infeasible during reduction.
    Infeasible,
    /// A reduced model plus the lift-back mapping.
    Reduced(Box<Reduction>),
}

/// A reduced model and how to undo the reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced model (possibly with zero variables).
    pub model: Model,
    /// For each original variable: `Ok(new index)` if it survived,
    /// `Err(fixed value)` if it was eliminated.
    map: Vec<Result<usize, f64>>,
    /// Number of original variables.
    n_original: usize,
}

impl Reduction {
    /// Lifts a reduced-space solution back to original variable order.
    pub fn lift(&self, reduced: &Solution) -> Solution {
        let mut values = vec![0.0; self.n_original];
        for (orig, m) in self.map.iter().enumerate() {
            values[orig] = match m {
                Ok(new) => reduced.values[*new],
                Err(v) => *v,
            };
        }
        Solution {
            status: reduced.status,
            objective: reduced.objective,
            values,
        }
    }

    /// Number of variables eliminated by presolve.
    pub fn eliminated_vars(&self) -> usize {
        self.map.iter().filter(|m| m.is_err()).count()
    }
}

const TOL: f64 = 1e-9;

/// A working constraint row: sparse terms, comparison, right-hand side.
type Row = (Vec<(usize, f64)>, Cmp, f64);

/// Runs presolve to fixpoint. The reduced model optimizes the same
/// objective over the same feasible set (projected onto surviving
/// variables); its optimal objective equals the original's.
pub fn presolve(model: &Model) -> Presolved {
    // Working copies of bounds; constraints as (terms, cmp, rhs).
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    let kinds: Vec<VarKind> = model.vars.iter().map(|v| v.kind).collect();
    let mut rows: Vec<Row> = model
        .constraints
        .iter()
        .filter(|c| c.active)
        .map(|c| {
            let e = c.expr.simplified();
            (
                e.terms.iter().map(|&(v, k)| (v.0, k)).collect(),
                c.cmp,
                c.rhs - e.constant,
            )
        })
        .collect();
    let n = model.vars.len();
    let mut fixed: Vec<Option<f64>> = vec![None; n];

    let integral = |j: usize| kinds[j] != VarKind::Continuous;
    let round_bounds = |j: usize, lo: &mut f64, hi: &mut f64, int: bool| {
        let _ = j;
        if int {
            *lo = lo.ceil();
            *hi = hi.floor();
        }
    };

    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds < 100, "presolve failed to reach a fixpoint");

        // 1. Substitute fixed variables into rows.
        for (terms, _, rhs) in &mut rows {
            terms.retain(|&(j, k)| {
                if let Some(v) = fixed[j] {
                    *rhs -= k * v;
                    false
                } else {
                    true
                }
            });
        }

        // 2. Empty and singleton rows.
        let mut keep = Vec::with_capacity(rows.len());
        for (terms, cmp, rhs) in rows.drain(..) {
            match terms.len() {
                0 => {
                    let ok = match cmp {
                        Cmp::Le => 0.0 <= rhs + TOL,
                        Cmp::Ge => 0.0 >= rhs - TOL,
                        Cmp::Eq => rhs.abs() <= TOL,
                    };
                    if !ok {
                        return Presolved::Infeasible;
                    }
                    changed = true;
                }
                1 => {
                    let (j, k) = terms[0];
                    debug_assert!(k != 0.0);
                    let bound = rhs / k;
                    // a·x ≤ b  ⇔  x ≤ b/a (a>0) / x ≥ b/a (a<0).
                    match (cmp, k > 0.0) {
                        (Cmp::Le, true) | (Cmp::Ge, false) => {
                            if bound < upper[j] - TOL {
                                upper[j] = bound;
                                changed = true;
                            }
                        }
                        (Cmp::Ge, true) | (Cmp::Le, false) => {
                            if bound > lower[j] + TOL {
                                lower[j] = bound;
                                changed = true;
                            }
                        }
                        (Cmp::Eq, _) => {
                            if bound < upper[j] - TOL {
                                upper[j] = bound;
                                changed = true;
                            }
                            if bound > lower[j] + TOL {
                                lower[j] = bound;
                                changed = true;
                            }
                        }
                    }
                    round_bounds(j, &mut lower[j], &mut upper[j], integral(j));
                }
                _ => keep.push((terms, cmp, rhs)),
            }
        }
        rows = keep;

        // 3. Bound tightening from row activity.
        for (terms, cmp, rhs) in &rows {
            // Activity bounds: min/max of Σ k·x over current boxes.
            let mut act_min = 0.0f64;
            let mut act_max = 0.0f64;
            for &(j, k) in terms {
                let (lo, hi) = (lower[j], upper[j]);
                if k > 0.0 {
                    act_min += k * lo;
                    act_max += k * hi;
                } else {
                    act_min += k * hi;
                    act_max += k * lo;
                }
            }
            // Row-level infeasibility.
            match cmp {
                Cmp::Le if act_min > rhs + 1e-7 => return Presolved::Infeasible,
                Cmp::Ge if act_max < rhs - 1e-7 => return Presolved::Infeasible,
                Cmp::Eq if act_min > rhs + 1e-7 || act_max < rhs - 1e-7 => {
                    return Presolved::Infeasible
                }
                _ => {}
            }
            // Per-variable implied bounds (only for ≤ / ≥ directions that
            // constrain; Eq constrains both ways).
            for &(j, k) in terms {
                if act_min.is_infinite() && act_max.is_infinite() {
                    break;
                }
                let (lo, hi) = (lower[j], upper[j]);
                // residual activity without j:
                let (term_min, term_max) = if k > 0.0 {
                    (k * lo, k * hi)
                } else {
                    (k * hi, k * lo)
                };
                let rest_min = act_min - term_min;
                let rest_max = act_max - term_max;
                let tighten_le = *cmp != Cmp::Ge; // Le or Eq: Σ ≤ rhs
                let tighten_ge = *cmp != Cmp::Le; // Ge or Eq: Σ ≥ rhs
                if tighten_le && rest_min.is_finite() {
                    // k·x ≤ rhs − rest_min.
                    let b = (rhs - rest_min) / k;
                    if k > 0.0 {
                        if b < upper[j] - 1e-7 {
                            upper[j] = b;
                            changed = true;
                        }
                    } else if b > lower[j] + 1e-7 {
                        lower[j] = b;
                        changed = true;
                    }
                }
                if tighten_ge && rest_max.is_finite() {
                    // k·x ≥ rhs − rest_max.
                    let b = (rhs - rest_max) / k;
                    if k > 0.0 {
                        if b > lower[j] + 1e-7 {
                            lower[j] = b;
                            changed = true;
                        }
                    } else if b < upper[j] - 1e-7 {
                        upper[j] = b;
                        changed = true;
                    }
                }
                round_bounds(j, &mut lower[j], &mut upper[j], integral(j));
            }
        }

        // 4. Fix variables and detect empty domains.
        for j in 0..n {
            if fixed[j].is_some() {
                continue;
            }
            if lower[j] > upper[j] + 1e-7 {
                return Presolved::Infeasible;
            }
            if (upper[j] - lower[j]).abs() <= TOL {
                fixed[j] = Some(lower[j]);
                changed = true;
            }
        }
    }

    // Build the reduced model.
    let mut reduced = Model::new();
    let mut map: Vec<Result<usize, f64>> = Vec::with_capacity(n);
    for j in 0..n {
        match fixed[j] {
            Some(v) => map.push(Err(v)),
            None => {
                let nv = reduced.add_var(model.vars[j].name.clone(), kinds[j], lower[j], upper[j]);
                map.push(Ok(nv.0));
            }
        }
    }
    for (terms, cmp, rhs) in rows {
        let mut e = LinExpr::zero();
        for (j, k) in terms {
            let Ok(nj) = map[j] else {
                unreachable!("fixed vars substituted")
            };
            e.add_term(crate::expr::Var(nj), k);
        }
        reduced.add_constraint(e, cmp, rhs);
    }
    // Objective: substitute fixed vars into the constant.
    let mut obj = LinExpr::zero();
    let mut constant = model.objective.constant;
    for &(v, c) in &model.objective.simplified().terms {
        match map[v.0] {
            Ok(nj) => obj.add_term(crate::expr::Var(nj), c),
            Err(val) => constant += c * val,
        }
    }
    obj.constant = constant;
    reduced.set_objective(model.sense.unwrap_or(crate::model::Sense::Minimize), obj);

    Presolved::Reduced(Box::new(Reduction {
        model: reduced,
        map,
        n_original: n,
    }))
}

/// Solves `model` via presolve + the appropriate solver, lifting the
/// solution back to original variable space.
pub fn solve_presolved(model: &Model, opts: &crate::model::SolveOptions) -> Solution {
    // Malformed data (NaN coefficients, empty domains, infinite lower
    // bounds) must surface as `Status::Error`, not as a panic deep inside
    // a reduction or the simplex.
    if model.check_data().is_err() {
        return Solution::sentinel(Status::Error, model.num_vars());
    }
    match presolve(model) {
        Presolved::Infeasible => Solution {
            status: Status::Infeasible,
            objective: f64::NAN,
            values: vec![f64::NAN; model.num_vars()],
        },
        Presolved::Reduced(red) => {
            let inner = if red.model.num_vars() == 0 {
                // Everything fixed: the objective is a constant; check the
                // (already validated) rows were all dropped.
                Solution {
                    status: Status::Optimal,
                    objective: red.model.objective.constant,
                    values: Vec::new(),
                }
            } else if red.model.is_mip() {
                crate::branch_bound::solve_mip(&red.model, opts)
            } else {
                crate::simplex::solve_lp(&red.model)
            };
            red.lift(&inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Sense, SolveOptions};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new();
        let x = m.nonneg("x");
        let y = m.nonneg("y");
        m.le(2.0 * x, 10.0); // x ≤ 5
        m.ge(3.0 * y, 6.0); // y ≥ 2
        m.le(x + y, 100.0);
        m.set_objective(Sense::Maximize, x + y);
        let Presolved::Reduced(red) = presolve(&m) else {
            panic!("feasible")
        };
        assert_eq!(red.model.num_constraints(), 1, "singletons absorbed");
        let s = solve_presolved(&m, &SolveOptions::default());
        let raw = m.solve();
        assert!((s.objective - raw.objective).abs() < 1e-6);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn fixed_vars_are_substituted() {
        let mut m = Model::new();
        let x = m.continuous("x", 4.0, 4.0);
        let y = m.nonneg("y");
        m.le(x + y, 10.0); // ⇒ y ≤ 6
        m.set_objective(Sense::Maximize, 2.0 * x + y);
        let Presolved::Reduced(red) = presolve(&m) else {
            panic!("feasible")
        };
        assert_eq!(red.eliminated_vars(), 1);
        let s = solve_presolved(&m, &SolveOptions::default());
        assert!((s.value(x) - 4.0).abs() < 1e-9);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
        assert!((s.objective - 14.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible_bounds() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 2.0);
        m.ge(1.0 * x, 5.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
        assert_eq!(
            solve_presolved(&m, &SolveOptions::default()).status,
            Status::Infeasible
        );
    }

    #[test]
    fn detects_infeasible_activity() {
        // x, y ∈ [0, 1], x + y ≥ 3: impossible by activity bounds alone.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 1.0);
        let y = m.continuous("y", 0.0, 1.0);
        m.ge(x + y, 3.0);
        m.set_objective(Sense::Minimize, x + y);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn integer_bound_rounding() {
        let mut m = Model::new();
        let x = m.integer("x", 0, 10);
        m.le(2.0 * x, 7.0); // x ≤ 3.5 → x ≤ 3
        m.set_objective(Sense::Maximize, 1.0 * x);
        let Presolved::Reduced(red) = presolve(&m) else {
            panic!("feasible")
        };
        assert_eq!(red.model.vars[0].upper, 3.0);
        let s = solve_presolved(&m, &SolveOptions::default());
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fully_fixed_model() {
        let mut m = Model::new();
        let x = m.continuous("x", 2.0, 2.0);
        let y = m.continuous("y", 3.0, 3.0);
        m.le(x + y, 6.0);
        m.set_objective(Sense::Minimize, x + 2.0 * y);
        let s = solve_presolved(&m, &SolveOptions::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 8.0).abs() < 1e-9);
        assert_eq!(s.values, vec![2.0, 3.0]);
    }

    #[test]
    fn equivalence_on_random_models() {
        let mut rng = flexwan_util::rng::ChaCha8Rng::seed_from_u64(99);
        for _ in 0..40 {
            let mut m = Model::new();
            let nv = rng.gen_range(2..6);
            let vars: Vec<_> = (0..nv)
                .map(|i| {
                    if rng.gen_bool(0.4) {
                        m.integer(format!("x{i}"), 0, rng.gen_range(1..8))
                    } else {
                        m.continuous(format!("x{i}"), 0.0, rng.gen_range(1.0..8.0))
                    }
                })
                .collect();
            for _ in 0..rng.gen_range(1..5) {
                let mut e = LinExpr::zero();
                for &v in &vars {
                    if rng.gen_bool(0.7) {
                        e.add_term(v, rng.gen_range(-3.0f64..4.0));
                    }
                }
                let rhs = rng.gen_range(-2.0f64..12.0);
                match rng.gen_range(0..3) {
                    0 => m.le(e, rhs),
                    1 => m.ge(e, rhs),
                    _ => m.le(e, rhs.abs()), // equalities get tight; keep it mild
                };
            }
            let mut obj = LinExpr::zero();
            for &v in &vars {
                obj.add_term(v, rng.gen_range(-3.0f64..3.0));
            }
            m.set_objective(Sense::Maximize, obj);

            let raw = m.solve();
            let pre = solve_presolved(&m, &SolveOptions::default());
            assert_eq!(raw.status, pre.status, "status mismatch");
            if raw.status == Status::Optimal {
                assert!(
                    (raw.objective - pre.objective).abs() < 1e-5,
                    "objective mismatch: raw {} vs presolved {}",
                    raw.objective,
                    pre.objective
                );
                assert!(m.is_feasible(&pre.values, 1e-5));
            }
        }
    }

    #[test]
    fn malformed_model_is_error_not_panic() {
        let mut m = Model::new();
        let x = m.continuous("x", f64::NAN, 1.0);
        m.le(1.0 * x, 1.0);
        m.set_objective(Sense::Minimize, 1.0 * x);
        let s = solve_presolved(&m, &SolveOptions::default());
        assert_eq!(s.status, Status::Error);
        assert!(s.objective.is_nan());
    }
}
