use flexwan_solver::{LinExpr, Model, Sense, Status};

fn build(k: usize, seed: u64) -> Model {
    let mut m = Model::new();
    let mut st = seed;
    let mut rnd = move || {
        st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((st >> 33) % 5) as f64
    };
    let vars: Vec<_> = (0..k).map(|i| m.continuous(format!("x{i}"), 1.0, 3.0)).collect();
    for w in vars.windows(2) {
        m.le(w[0] + w[1], 4.0 + rnd());
    }
    for w in vars.windows(4) {
        m.le(w[0] + w[1] + (w[2] + w[3]), 9.0 + rnd());
    }
    let obj = LinExpr::sum(vars.iter().enumerate().map(|(i, &v)| (1.0 + ((i * 7) % 5) as f64) * v));
    m.set_objective(Sense::Maximize, obj);
    m
}

#[test]
fn randomized_lps_stay_feasible_and_consistent() {
    for seed in 0..30u64 {
        let m = build(150, seed);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal, "seed {seed}");
        assert!(
            m.is_feasible(&s.values, 1e-6),
            "seed {seed}: solver returned an infeasible point, obj={}",
            s.objective
        );
        // objective must match the reported values
        let recomputed: f64 = (0..150)
            .map(|i| (1.0 + ((i * 7) % 5) as f64) * s.values[i])
            .sum();
        assert!(
            (recomputed - s.objective).abs() < 1e-6,
            "seed {seed}: objective {} vs recomputed {}",
            s.objective,
            recomputed
        );
    }
}
