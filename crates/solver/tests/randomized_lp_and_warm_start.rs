//! Randomized LP regression sweep plus [`SolverStats`] warm-start
//! accounting. Grown out of an ad-hoc review scratch file: the random
//! chain LPs stay as a regression net over the sparse simplex, and the
//! branch & bound stats assertions pin the warm-start behaviour the
//! observability layer reports (`solver_solves_total{start=...}`,
//! `solver_warm_start_hit_rate`).

use flexwan_solver::{LinExpr, Model, Sense, SolveOptions, SolverStats, Status};

fn build(k: usize, seed: u64) -> Model {
    let mut m = Model::new();
    let mut st = seed;
    let mut rnd = move || {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 5) as f64
    };
    let vars: Vec<_> = (0..k)
        .map(|i| m.continuous(format!("x{i}"), 1.0, 3.0))
        .collect();
    for w in vars.windows(2) {
        m.le(w[0] + w[1], 4.0 + rnd());
    }
    for w in vars.windows(4) {
        m.le(w[0] + w[1] + (w[2] + w[3]), 9.0 + rnd());
    }
    let obj = LinExpr::sum(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (1.0 + ((i * 7) % 5) as f64) * v),
    );
    m.set_objective(Sense::Maximize, obj);
    m
}

#[test]
fn randomized_lps_stay_feasible_and_consistent() {
    for seed in 0..30u64 {
        let m = build(150, seed);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal, "seed {seed}");
        assert!(
            m.is_feasible(&s.values, 1e-6),
            "seed {seed}: solver returned an infeasible point, obj={}",
            s.objective
        );
        // objective must match the reported values
        let recomputed: f64 = (0..150)
            .map(|i| (1.0 + ((i * 7) % 5) as f64) * s.values[i])
            .sum();
        assert!(
            (recomputed - s.objective).abs() < 1e-6,
            "seed {seed}: objective {} vs recomputed {}",
            s.objective,
            recomputed
        );
    }
}

/// A strongly correlated two-row knapsack whose LP relaxation stays
/// fractional through many branchings (≈200 nodes), so almost every node
/// LP warm-starts from its parent basis; the only cold solves are the
/// cut-and-branch root rounds plus the root node itself.
fn branching_knapsack() -> Model {
    let n = 14usize;
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|i| m.binary(format!("b{i}"))).collect();
    let w1: Vec<f64> = (0..n).map(|i| 3.0 + ((i * 5) % 11) as f64).collect();
    let w2: Vec<f64> = (0..n).map(|i| 2.0 + ((i * 7) % 9) as f64).collect();
    let val: Vec<f64> = (0..n).map(|i| w1[i] + 5.0 + ((i * 3) % 4) as f64).collect();
    m.le(
        LinExpr::sum(vars.iter().zip(&w1).map(|(&v, &w)| w * v)),
        40.0,
    );
    m.le(
        LinExpr::sum(vars.iter().zip(&w2).map(|(&v, &w)| w * v)),
        30.0,
    );
    m.set_objective(
        Sense::Maximize,
        LinExpr::sum(vars.iter().zip(&val).map(|(&v, &c)| c * v)),
    );
    m
}

#[test]
fn branch_and_bound_warm_starts_node_lps() {
    let m = branching_knapsack();
    let (sol, stats) = m.solve_with_stats(&SolveOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    assert!(m.is_feasible(&sol.values, 1e-6));

    // The cut rounds and root LP are cold solves; descendants reuse the
    // parent basis.
    assert!(
        stats.nodes >= 20,
        "expected real branching, nodes = {}",
        stats.nodes
    );
    assert!(stats.cold_solves >= 1, "root LP must be a cold solve");
    assert!(
        stats.warm_solves >= 20,
        "descendant nodes must warm-start, stats: {stats}"
    );

    // Hit rate is exactly warm / (warm + cold), bounded by (0, 1), and
    // dominated by warm solves once branching happens.
    let rate = stats.warm_start_hit_rate();
    let expect = stats.warm_solves as f64 / (stats.warm_solves + stats.cold_solves) as f64;
    assert!((rate - expect).abs() < 1e-12);
    assert!(rate > 0.5, "warm starts should dominate, hit rate = {rate}");
    assert!(rate < 1.0, "the root solve is never warm");

    // Pivot accounting: the totals helper matches the per-phase fields,
    // and warm starts imply dual-simplex work.
    assert_eq!(
        stats.total_pivots(),
        stats.phase1_pivots + stats.phase2_pivots + stats.dual_pivots
    );
    assert!(
        stats.dual_pivots > 0,
        "warm starts re-optimize with the dual simplex"
    );
}

/// Stats are deterministic for a fixed model (the `time_*` fields are
/// wall-clock and explicitly excluded), and `merge` adds counters.
#[test]
fn solver_stats_are_deterministic_and_merge_adds() {
    let counters = |stats: &SolverStats| {
        (
            stats.phase1_pivots,
            stats.phase2_pivots,
            stats.dual_pivots,
            stats.bound_flips,
            stats.refactorizations,
            stats.cold_solves,
            stats.warm_solves,
            stats.nodes,
            stats.cuts,
        )
    };
    let m = branching_knapsack();
    let (_, a) = m.solve_with_stats(&SolveOptions::default());
    let (_, b) = m.solve_with_stats(&SolveOptions::default());
    assert_eq!(
        counters(&a),
        counters(&b),
        "solver counters must be run-to-run deterministic"
    );

    let mut merged = a;
    merged.merge(&b);
    assert_eq!(merged.nodes, a.nodes + b.nodes);
    assert_eq!(merged.total_pivots(), a.total_pivots() + b.total_pivots());
    assert_eq!(merged.warm_solves, a.warm_solves + b.warm_solves);
}
