//! Optical line system devices (§2, §4.2).
//!
//! The OLS between two transponders consists of MUX/AWG multiplexers whose
//! filter ports pass one channel each, ROADMs that steer wavelengths between
//! fibers, and EDFA amplifiers every 50–100 km span. The crucial FlexWAN
//! hardware change is the wavelength-selective switch ([`WssKind`]): a
//! fixed-grid WSS can only realize passbands aligned to the rigid grid,
//! while the LCoS pixel-wise WSS realizes any contiguous pixel run — this is
//! what lets the OLS passband follow the SVT's variable channel spacing.

use crate::error::OpticalError;
use crate::spectrum::{PixelRange, PixelWidth, SpectrumGrid};

/// The wavelength-selective switch technology of a MUX/ROADM (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WssKind {
    /// Legacy fixed-grid WSS: every passband must start on a multiple of
    /// the grid spacing and be exactly one grid slot wide.
    FixedGrid {
        /// The rigid grid spacing (50 GHz for 100G-WAN, 75 GHz for RADWAN).
        spacing: PixelWidth,
    },
    /// LCoS-based pixel-wise WSS: any contiguous pixel run is realizable.
    PixelWise,
}

impl WssKind {
    /// Validates that `range` is realizable as a passband on this WSS.
    pub fn validate_passband(&self, range: &PixelRange) -> Result<(), OpticalError> {
        match *self {
            WssKind::PixelWise => Ok(()),
            WssKind::FixedGrid { spacing } => {
                let g = u32::from(spacing.pixels());
                if !range.start.is_multiple_of(g) || range.width != spacing {
                    Err(OpticalError::OffGridPassband {
                        range: *range,
                        grid_pixels: spacing.pixels(),
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// One filter port of a MUX: passes exactly one configured passband (or
/// nothing, when unconfigured).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterPort {
    /// Port index on the device faceplate.
    pub port: u16,
    /// Currently configured passband, if any.
    pub passband: Option<PixelRange>,
}

/// An arrayed-waveguide-grating multiplexer with a WSS stage.
///
/// Combines the channels entering its filter ports onto the line fiber; each
/// port's passband must match the spectrum of the wavelength connected to it
/// or the signal is clipped (*channel inconsistency*, Figure 5(a)).
#[derive(Debug, Clone, PartialEq)]
pub struct Mux {
    /// WSS technology of the filter stage.
    pub wss: WssKind,
    /// Spectrum dimensioning of the line side.
    pub grid: SpectrumGrid,
    ports: Vec<FilterPort>,
}

impl Mux {
    /// A MUX with `num_ports` unconfigured filter ports.
    pub fn new(wss: WssKind, grid: SpectrumGrid, num_ports: u16) -> Self {
        let ports = (0..num_ports)
            .map(|port| FilterPort {
                port,
                passband: None,
            })
            .collect();
        Mux { wss, grid, ports }
    }

    /// The filter ports.
    pub fn ports(&self) -> &[FilterPort] {
        &self.ports
    }

    /// Configures `port`'s passband to `range` (replacing any previous
    /// passband). Fails if the port does not exist, the range leaves the
    /// band, or the WSS cannot realize it.
    pub fn set_passband(&mut self, port: u16, range: PixelRange) -> Result<(), OpticalError> {
        if !self.grid.contains(&range) {
            return Err(OpticalError::OutOfBand {
                range,
                band_pixels: self.grid.pixels(),
            });
        }
        self.wss.validate_passband(&range)?;
        let p = self
            .ports
            .get_mut(usize::from(port))
            .ok_or(OpticalError::NoSuchPort { port })?;
        p.passband = Some(range);
        Ok(())
    }

    /// Clears `port`'s passband.
    pub fn clear_passband(&mut self, port: u16) -> Result<(), OpticalError> {
        let p = self
            .ports
            .get_mut(usize::from(port))
            .ok_or(OpticalError::NoSuchPort { port })?;
        p.passband = None;
        Ok(())
    }

    /// The passband configured on `port`, if any.
    pub fn passband(&self, port: u16) -> Result<Option<PixelRange>, OpticalError> {
        self.ports
            .get(usize::from(port))
            .map(|p| p.passband)
            .ok_or(OpticalError::NoSuchPort { port })
    }

    /// Whether a wavelength occupying `channel` would pass `port` without
    /// clipping: the configured passband must contain the channel.
    pub fn passes(&self, port: u16, channel: &PixelRange) -> Result<bool, OpticalError> {
        Ok(match self.passband(port)? {
            Some(pb) => pb.contains(channel),
            None => false,
        })
    }
}

/// A reconfigurable optical add-drop multiplexer: steers pixel ranges
/// between its degrees (attached fibers).
///
/// Each degree holds a set of express passbands; a wavelength routed from
/// degree *i* to degree *j* needs a matching passband on both.
#[derive(Debug, Clone, PartialEq)]
pub struct Roadm {
    /// WSS technology of every degree.
    pub wss: WssKind,
    /// Spectrum dimensioning.
    pub grid: SpectrumGrid,
    degrees: Vec<Vec<PixelRange>>,
}

impl Roadm {
    /// A ROADM with `num_degrees` degrees and no passbands configured.
    pub fn new(wss: WssKind, grid: SpectrumGrid, num_degrees: u16) -> Self {
        Roadm {
            wss,
            grid,
            degrees: vec![Vec::new(); usize::from(num_degrees)],
        }
    }

    /// Number of degrees.
    pub fn num_degrees(&self) -> u16 {
        self.degrees.len() as u16
    }

    /// Adds an express passband on `degree`. Fails on unknown degree,
    /// off-band or off-grid ranges, or overlap with an existing passband on
    /// the same degree (which would make routing ambiguous).
    pub fn add_passband(&mut self, degree: u16, range: PixelRange) -> Result<(), OpticalError> {
        if !self.grid.contains(&range) {
            return Err(OpticalError::OutOfBand {
                range,
                band_pixels: self.grid.pixels(),
            });
        }
        self.wss.validate_passband(&range)?;
        let d = self
            .degrees
            .get_mut(usize::from(degree))
            .ok_or(OpticalError::NoSuchPort { port: degree })?;
        if d.iter().any(|existing| existing.overlaps(&range)) {
            return Err(OpticalError::SpectrumConflict { range });
        }
        d.push(range);
        Ok(())
    }

    /// Removes a previously added passband from `degree`.
    pub fn remove_passband(&mut self, degree: u16, range: PixelRange) -> Result<(), OpticalError> {
        let d = self
            .degrees
            .get_mut(usize::from(degree))
            .ok_or(OpticalError::NoSuchPort { port: degree })?;
        match d.iter().position(|r| r == &range) {
            Some(i) => {
                d.swap_remove(i);
                Ok(())
            }
            None => Err(OpticalError::DoubleRelease { range }),
        }
    }

    /// Passbands configured on `degree`.
    pub fn passbands(&self, degree: u16) -> Result<&[PixelRange], OpticalError> {
        self.degrees
            .get(usize::from(degree))
            .map(Vec::as_slice)
            .ok_or(OpticalError::NoSuchPort { port: degree })
    }

    /// Whether a wavelength occupying `channel` can be expressed between
    /// `from` and `to`: both degrees need a passband containing it.
    pub fn expresses(
        &self,
        from: u16,
        to: u16,
        channel: &PixelRange,
    ) -> Result<bool, OpticalError> {
        let has = |deg: u16| -> Result<bool, OpticalError> {
            Ok(self.passbands(deg)?.iter().any(|pb| pb.contains(channel)))
        };
        Ok(has(from)? && has(to)?)
    }
}

/// An erbium-doped fiber amplifier placed every 50–100 km span (§6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Amplifier {
    /// Gain in dB (compensates the preceding span's attenuation).
    pub gain_db: f64,
    /// Noise figure in dB (ASE noise contribution).
    pub noise_figure_db: f64,
}

impl Amplifier {
    /// A typical production EDFA: 5 dB noise figure at the given gain.
    pub fn edfa(gain_db: f64) -> Self {
        Amplifier {
            gain_db,
            noise_figure_db: 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(px: u16) -> PixelWidth {
        PixelWidth::new(px)
    }

    #[test]
    fn fixed_grid_wss_rejects_unaligned() {
        let wss = WssKind::FixedGrid { spacing: w(6) }; // 75 GHz grid
        assert!(wss.validate_passband(&PixelRange::new(0, w(6))).is_ok());
        assert!(wss.validate_passband(&PixelRange::new(6, w(6))).is_ok());
        // Misaligned start.
        assert!(wss.validate_passband(&PixelRange::new(3, w(6))).is_err());
        // Wrong width (even if aligned).
        assert!(wss.validate_passband(&PixelRange::new(0, w(8))).is_err());
    }

    #[test]
    fn pixel_wise_wss_accepts_anything() {
        let wss = WssKind::PixelWise;
        assert!(wss.validate_passband(&PixelRange::new(3, w(7))).is_ok());
        assert!(wss.validate_passband(&PixelRange::new(0, w(12))).is_ok());
    }

    #[test]
    fn mux_passband_lifecycle() {
        let mut mux = Mux::new(WssKind::PixelWise, SpectrumGrid::new(64), 4);
        let ch = PixelRange::new(8, w(8)); // 100 GHz channel
        mux.set_passband(2, ch).unwrap();
        assert_eq!(mux.passband(2).unwrap(), Some(ch));
        assert!(mux.passes(2, &ch).unwrap());
        // A wider wavelength would clip: channel inconsistency.
        assert!(!mux.passes(2, &PixelRange::new(8, w(10))).unwrap());
        // Unconfigured port passes nothing.
        assert!(!mux.passes(0, &ch).unwrap());
        mux.clear_passband(2).unwrap();
        assert_eq!(mux.passband(2).unwrap(), None);
    }

    #[test]
    fn mux_rejects_bad_port_and_band() {
        let mut mux = Mux::new(WssKind::PixelWise, SpectrumGrid::new(16), 2);
        assert!(matches!(
            mux.set_passband(5, PixelRange::new(0, w(4))),
            Err(OpticalError::NoSuchPort { port: 5 })
        ));
        assert!(matches!(
            mux.set_passband(0, PixelRange::new(14, w(4))),
            Err(OpticalError::OutOfBand { .. })
        ));
    }

    #[test]
    fn fixed_grid_mux_models_misconnection_rigidity() {
        // §9 zero-touch recovery: on a fixed-grid MUX a transponder wired to
        // the wrong filter port cannot be fixed in software...
        let mut fixed = Mux::new(
            WssKind::FixedGrid { spacing: w(6) },
            SpectrumGrid::new(48),
            4,
        );
        let wavelength = PixelRange::new(9, w(6)); // off-grid position
        assert!(fixed.set_passband(1, wavelength).is_err());
        // ...while the pixel-wise MUX retunes the port to the wavelength.
        let mut sliced = Mux::new(WssKind::PixelWise, SpectrumGrid::new(48), 4);
        sliced.set_passband(1, wavelength).unwrap();
        assert!(sliced.passes(1, &wavelength).unwrap());
    }

    #[test]
    fn roadm_express_requires_both_degrees() {
        let mut r = Roadm::new(WssKind::PixelWise, SpectrumGrid::new(64), 3);
        let ch = PixelRange::new(10, w(6));
        r.add_passband(0, ch).unwrap();
        assert!(!r.expresses(0, 1, &ch).unwrap());
        r.add_passband(1, ch).unwrap();
        assert!(r.expresses(0, 1, &ch).unwrap());
        assert!(!r.expresses(0, 2, &ch).unwrap());
    }

    #[test]
    fn roadm_rejects_overlapping_passbands_per_degree() {
        let mut r = Roadm::new(WssKind::PixelWise, SpectrumGrid::new(64), 2);
        r.add_passband(0, PixelRange::new(0, w(6))).unwrap();
        assert!(matches!(
            r.add_passband(0, PixelRange::new(4, w(6))),
            Err(OpticalError::SpectrumConflict { .. })
        ));
        // Same range on a *different* degree is fine.
        r.add_passband(1, PixelRange::new(4, w(6))).unwrap();
    }

    #[test]
    fn roadm_remove_passband() {
        let mut r = Roadm::new(WssKind::PixelWise, SpectrumGrid::new(64), 2);
        let ch = PixelRange::new(0, w(4));
        r.add_passband(0, ch).unwrap();
        r.remove_passband(0, ch).unwrap();
        assert!(r.passbands(0).unwrap().is_empty());
        assert!(r.remove_passband(0, ch).is_err());
    }

    #[test]
    fn edfa_defaults() {
        let a = Amplifier::edfa(20.0);
        assert_eq!(a.gain_db, 20.0);
        assert_eq!(a.noise_figure_db, 5.0);
    }
}
