//! Modulation formats and Shannon-Hartley helpers.
//!
//! The paper's motivation (§3.1) rests on the Shannon-Hartley theorem
//! `C = W·log2(1 + S/N)`: a wavelength's achievable data rate is bounded by
//! its channel spacing `W` and its SNR. Short paths have high SNR, so a
//! higher-order modulation (more bits per symbol) can be used; conversely a
//! higher rate at fixed spacing needs exponentially more SNR, which is why
//! FlexWAN instead widens the spacing (the SVT of §4.2).

/// A modulation format of the DSP engine inside a transponder.
///
/// `Pcs` is probabilistic constellation shaping [Cho & Winzer 2019], which
/// the SVT uses for finer-granularity data rates: it realizes a fractional
/// number of information bits per symbol on a QAM template. We store the
/// information rate in tenths of a bit per symbol (per polarization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase-shift keying: 1 bit/symbol.
    Bpsk,
    /// Quadrature phase-shift keying: 2 bits/symbol.
    Qpsk,
    /// 8-ary QAM: 3 bits/symbol.
    Qam8,
    /// 16-ary QAM: 4 bits/symbol.
    Qam16,
    /// 32-ary QAM: 5 bits/symbol.
    Qam32,
    /// 64-ary QAM: 6 bits/symbol.
    Qam64,
    /// 256-ary QAM: 8 bits/symbol.
    Qam256,
    /// Probabilistically shaped QAM carrying `decibits`/10 bits per symbol.
    Pcs {
        /// Information bits per symbol × 10 (e.g. 35 ⇒ 3.5 bits/symbol).
        decibits: u16,
    },
}

impl Modulation {
    /// Information bits carried per symbol per polarization.
    pub fn bits_per_symbol(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 2.0,
            Modulation::Qam8 => 3.0,
            Modulation::Qam16 => 4.0,
            Modulation::Qam32 => 5.0,
            Modulation::Qam64 => 6.0,
            Modulation::Qam256 => 8.0,
            Modulation::Pcs { decibits } => f64::from(decibits) / 10.0,
        }
    }

    /// The densest fixed (non-shaped) format carrying at least
    /// `bits_per_symbol`, if one exists within 256QAM.
    pub fn densest_fixed_at_least(bits_per_symbol: f64) -> Option<Modulation> {
        use Modulation::*;
        [Bpsk, Qpsk, Qam8, Qam16, Qam32, Qam64, Qam256]
            .into_iter()
            .find(|m| m.bits_per_symbol() + 1e-9 >= bits_per_symbol)
    }

    /// A PCS format carrying exactly `bits_per_symbol` (rounded to 0.1 bit).
    pub fn pcs(bits_per_symbol: f64) -> Modulation {
        assert!(bits_per_symbol > 0.0, "PCS rate must be positive");
        Modulation::Pcs {
            decibits: (bits_per_symbol * 10.0).round() as u16,
        }
    }

    /// Human-readable name (e.g. `8QAM`, `PCS-3.5b`).
    pub fn name(self) -> String {
        match self {
            Modulation::Bpsk => "BPSK".into(),
            Modulation::Qpsk => "QPSK".into(),
            Modulation::Qam8 => "8QAM".into(),
            Modulation::Qam16 => "16QAM".into(),
            Modulation::Qam32 => "32QAM".into(),
            Modulation::Qam64 => "64QAM".into(),
            Modulation::Qam256 => "256QAM".into(),
            Modulation::Pcs { decibits } => format!("PCS-{:.1}b", f64::from(decibits) / 10.0),
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Shannon-Hartley capacity `C = W·log2(1 + SNR)` in Gbps for a channel of
/// `spacing_ghz` GHz at linear signal-to-noise ratio `snr_linear`, per
/// polarization. Multiply by 2 for dual-polarization coherent systems.
pub fn shannon_capacity_gbps(spacing_ghz: f64, snr_linear: f64) -> f64 {
    assert!(spacing_ghz > 0.0 && snr_linear >= 0.0);
    spacing_ghz * (1.0 + snr_linear).log2()
}

/// Minimum linear SNR needed to carry `rate_gbps` over `spacing_ghz` GHz on
/// a dual-polarization channel, from inverting Shannon-Hartley.
pub fn shannon_required_snr(rate_gbps: f64, spacing_ghz: f64) -> f64 {
    assert!(spacing_ghz > 0.0 && rate_gbps >= 0.0);
    // Dual polarization: each polarization carries rate/2 over the spacing.
    let se_per_pol = rate_gbps / (2.0 * spacing_ghz);
    2f64.powf(se_per_pol) - 1.0
}

/// Converts a linear power ratio to decibels.
pub fn to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Converts decibels to a linear power ratio.
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

// ---- JSON wire encoding (externally tagged, as serde derived) ----

use flexwan_util::json::{self, FromJson, ToJson, Value};

impl ToJson for Modulation {
    fn to_json(&self) -> Value {
        match self {
            Modulation::Pcs { decibits } => {
                Value::obj([("Pcs", Value::obj([("decibits", decibits.to_json())]))])
            }
            unit => Value::String(format!("{unit:?}")),
        }
    }
}

impl FromJson for Modulation {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        if let Some(name) = v.as_str() {
            return match name {
                "Bpsk" => Ok(Modulation::Bpsk),
                "Qpsk" => Ok(Modulation::Qpsk),
                "Qam8" => Ok(Modulation::Qam8),
                "Qam16" => Ok(Modulation::Qam16),
                "Qam32" => Ok(Modulation::Qam32),
                "Qam64" => Ok(Modulation::Qam64),
                "Qam256" => Ok(Modulation::Qam256),
                other => Err(json::Error::new(format!("unknown modulation `{other}`"))),
            };
        }
        if let Some(pcs) = v.get("Pcs") {
            return Ok(Modulation::Pcs {
                decibits: pcs.field("decibits")?,
            });
        }
        Err(json::Error::new("expected a modulation"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_symbol_ladder() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1.0);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2.0);
        assert_eq!(Modulation::Qam8.bits_per_symbol(), 3.0);
        assert_eq!(Modulation::Qam256.bits_per_symbol(), 8.0);
        assert_eq!(Modulation::pcs(3.5).bits_per_symbol(), 3.5);
    }

    #[test]
    fn densest_fixed_selection() {
        assert_eq!(
            Modulation::densest_fixed_at_least(2.0),
            Some(Modulation::Qpsk)
        );
        assert_eq!(
            Modulation::densest_fixed_at_least(2.1),
            Some(Modulation::Qam8)
        );
        assert_eq!(
            Modulation::densest_fixed_at_least(7.2),
            Some(Modulation::Qam256)
        );
        assert_eq!(Modulation::densest_fixed_at_least(8.5), None);
    }

    #[test]
    fn names_render() {
        assert_eq!(Modulation::Qam8.name(), "8QAM");
        assert_eq!(Modulation::pcs(3.5).name(), "PCS-3.5b");
    }

    #[test]
    fn shannon_capacity_monotonic_in_snr_and_width() {
        let c1 = shannon_capacity_gbps(75.0, 3.0);
        let c2 = shannon_capacity_gbps(75.0, 7.0);
        let c3 = shannon_capacity_gbps(150.0, 3.0);
        assert!(c2 > c1);
        assert!((c3 - 2.0 * c1).abs() < 1e-9, "capacity linear in width");
        // 75 GHz at SNR=3 (linear) → 75·log2(4) = 150 Gbps per polarization.
        assert!((c1 - 150.0).abs() < 1e-9);
    }

    #[test]
    fn shannon_inverse_round_trips() {
        // 300 Gbps over 75 GHz dual-pol → 2 b/s/Hz/pol → SNR = 3.
        let snr = shannon_required_snr(300.0, 75.0);
        assert!((snr - 3.0).abs() < 1e-9);
        let cap = 2.0 * shannon_capacity_gbps(75.0, snr);
        assert!((cap - 300.0).abs() < 1e-6);
    }

    #[test]
    fn paper_motivation_800g_needs_wider_spacing() {
        // §3.1: 800 Gbps is not supportable at 75 GHz even with 256QAM
        // (SE = 5.33 b/s/Hz/pol needs SNR ≈ 39 ⇒ ~16 dB + impairments),
        // while at 112.5 GHz the required SNR drops by ~5 dB.
        let snr_75 = shannon_required_snr(800.0, 75.0);
        let snr_112 = shannon_required_snr(800.0, 112.5);
        assert!(to_db(snr_75) - to_db(snr_112) > 4.0);
    }

    #[test]
    fn db_round_trip() {
        for v in [0.1, 1.0, 3.16, 100.0] {
            assert!((from_db(to_db(v)) - v).abs() < 1e-9);
        }
    }
}
