//! Error types for the optical-layer substrate.

use crate::spectrum::PixelRange;

/// Errors raised by spectrum bookkeeping and device configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum OpticalError {
    /// A GHz value is not a positive exact multiple of the 12.5 GHz pixel.
    NotOnPixelGrid {
        /// The offending value in GHz.
        ghz: f64,
    },
    /// A pixel range extends past the end of the band.
    OutOfBand {
        /// The offending range.
        range: PixelRange,
        /// Number of pixels in the band.
        band_pixels: u32,
    },
    /// An allocation would overlap spectrum already occupied in the fiber —
    /// the *channel conflict* of Figure 5(b).
    SpectrumConflict {
        /// The range that could not be allocated.
        range: PixelRange,
    },
    /// A release covered pixels that were already free.
    DoubleRelease {
        /// The range that was (partially) already free.
        range: PixelRange,
    },
    /// A passband request is not realizable on a fixed-grid WSS (§4.2): it
    /// is not aligned to, or not exactly as wide as, the rigid grid.
    OffGridPassband {
        /// The requested passband.
        range: PixelRange,
        /// The rigid grid spacing in pixels.
        grid_pixels: u16,
    },
    /// A device port referenced by a configuration does not exist.
    NoSuchPort {
        /// The requested port index.
        port: u16,
    },
}

impl std::fmt::Display for OpticalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpticalError::NotOnPixelGrid { ghz } => {
                write!(
                    f,
                    "{ghz} GHz is not a positive multiple of the 12.5 GHz pixel grid"
                )
            }
            OpticalError::OutOfBand { range, band_pixels } => {
                write!(
                    f,
                    "pixel range {range} exceeds the {band_pixels}-pixel band"
                )
            }
            OpticalError::SpectrumConflict { range } => {
                write!(
                    f,
                    "channel conflict: pixels in {range} are already occupied"
                )
            }
            OpticalError::DoubleRelease { range } => {
                write!(f, "double release: pixels in {range} were already free")
            }
            OpticalError::OffGridPassband { range, grid_pixels } => {
                write!(
                    f,
                    "passband {range} is not realizable on a fixed {}-pixel grid WSS",
                    grid_pixels
                )
            }
            OpticalError::NoSuchPort { port } => write!(f, "no such filter port {port}"),
        }
    }
}

impl std::error::Error for OpticalError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::PixelWidth;

    #[test]
    fn display_is_informative() {
        let e = OpticalError::SpectrumConflict {
            range: PixelRange::new(4, PixelWidth::new(6)),
        };
        let s = e.to_string();
        assert!(s.contains("channel conflict"), "{s}");
        let e = OpticalError::NotOnPixelGrid { ghz: 55.0 };
        assert!(e.to_string().contains("55"));
    }
}
