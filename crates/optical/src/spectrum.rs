//! Spectrum model: the C-band sliced into 12.5 GHz pixels.
//!
//! FlexWAN's spectrum-sliced optical line system (§4.2) replaces the rigid
//! 50/75 GHz grid with an LCoS-based pixel-wise WSS whose granularity is a
//! 12.5 GHz *pixel*. A wavelength occupies a run of **contiguous** pixels
//! ([`PixelRange`]); the number of pixels is its channel spacing
//! ([`PixelWidth`]). Per-fiber occupancy is tracked with a bitmap
//! ([`SpectrumMask`]) supporting the first-fit contiguous searches used by
//! the planning and restoration algorithms.
//!
//! All spacings in the paper (50, 62.5, 75, …, 150 GHz — Table 2) are exact
//! multiples of 12.5 GHz, so the whole planning problem is integer pixel
//! arithmetic: no floating-point comparisons decide feasibility.

use crate::error::OpticalError;

/// Width of one spectrum pixel in GHz (the LCoS WSS granularity, §4.2).
pub const PIXEL_GHZ: f64 = 12.5;

/// Total C-band width modeled by default, in GHz (ITU-T C-band ≈ 4.8 THz).
pub const C_BAND_GHZ: f64 = 4800.0;

/// Default number of pixels in the C-band: 4800 / 12.5.
pub const C_BAND_PIXELS: u32 = (C_BAND_GHZ / PIXEL_GHZ) as u32;

/// A channel spacing expressed as a whole number of 12.5 GHz pixels.
///
/// Examples: 50 GHz = 4 pixels, 75 GHz = 6 pixels, 150 GHz = 12 pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PixelWidth(u16);

impl PixelWidth {
    /// Creates a spacing of `pixels` pixels. Must be non-zero.
    pub fn new(pixels: u16) -> Self {
        assert!(pixels > 0, "channel spacing must be at least one pixel");
        PixelWidth(pixels)
    }

    /// Converts a GHz spacing to pixels; fails unless it is a positive exact
    /// multiple of 12.5 GHz (the grid the hardware can realize).
    pub fn from_ghz(ghz: f64) -> Result<Self, OpticalError> {
        if ghz.is_nan() || ghz <= 0.0 {
            return Err(OpticalError::NotOnPixelGrid { ghz });
        }
        let pixels = ghz / PIXEL_GHZ;
        let rounded = pixels.round();
        if (pixels - rounded).abs() > 1e-9 || rounded < 1.0 || rounded > f64::from(u16::MAX) {
            return Err(OpticalError::NotOnPixelGrid { ghz });
        }
        Ok(PixelWidth(rounded as u16))
    }

    /// The spacing in pixels.
    pub fn pixels(self) -> u16 {
        self.0
    }

    /// The spacing in GHz.
    pub fn ghz(self) -> f64 {
        f64::from(self.0) * PIXEL_GHZ
    }
}

impl std::fmt::Display for PixelWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} GHz", self.ghz())
    }
}

/// A contiguous run of pixels `[start, start + width)` within a fiber's
/// spectrum: the spectrum occupied by one wavelength, or the passband
/// configured on one WSS/filter port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PixelRange {
    /// Index of the first pixel occupied.
    pub start: u32,
    /// Number of contiguous pixels occupied (the channel spacing).
    pub width: PixelWidth,
}

impl PixelRange {
    /// Creates the range `[start, start + width)`.
    pub fn new(start: u32, width: PixelWidth) -> Self {
        PixelRange { start, width }
    }

    /// One-past-the-last pixel index.
    pub fn end(&self) -> u32 {
        self.start + u32::from(self.width.pixels())
    }

    /// Whether two ranges share at least one pixel.
    pub fn overlaps(&self, other: &PixelRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: &PixelRange) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }

    /// Iterates over the pixel indices in the range.
    pub fn pixels(&self) -> impl Iterator<Item = u32> {
        self.start..self.end()
    }

    /// Lower frequency bound of the range relative to the band start, GHz.
    pub fn low_ghz(&self) -> f64 {
        f64::from(self.start) * PIXEL_GHZ
    }

    /// Upper frequency bound of the range relative to the band start, GHz.
    pub fn high_ghz(&self) -> f64 {
        f64::from(self.end()) * PIXEL_GHZ
    }
}

impl std::fmt::Display for PixelRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}..{})px ({:.1}-{:.1} GHz)",
            self.start,
            self.end(),
            self.low_ghz(),
            self.high_ghz()
        )
    }
}

/// The spectrum dimensioning of a fiber/band: how many pixels exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectrumGrid {
    pixels: u32,
}

impl SpectrumGrid {
    /// A grid with `pixels` pixels of 12.5 GHz each.
    pub fn new(pixels: u32) -> Self {
        assert!(pixels > 0, "spectrum grid must have at least one pixel");
        SpectrumGrid { pixels }
    }

    /// The full ITU-T C-band (4.8 THz → 384 pixels), the deployment default.
    pub fn c_band() -> Self {
        SpectrumGrid {
            pixels: C_BAND_PIXELS,
        }
    }

    /// Number of pixels in the band.
    pub fn pixels(&self) -> u32 {
        self.pixels
    }

    /// Total width of the band in GHz.
    pub fn total_ghz(&self) -> f64 {
        f64::from(self.pixels) * PIXEL_GHZ
    }

    /// Whether `range` lies entirely within the band.
    pub fn contains(&self, range: &PixelRange) -> bool {
        range.end() <= self.pixels
    }
}

impl Default for SpectrumGrid {
    fn default() -> Self {
        SpectrumGrid::c_band()
    }
}

/// Per-fiber spectrum occupancy bitmap.
///
/// Bit `i` set means pixel `i` is occupied by some wavelength. The planner
/// allocates wavelengths with [`SpectrumMask::first_fit`] /
/// [`SpectrumMask::first_fit_joint`], which by construction enforce the
/// paper's spectrum-conflict constraint (3) (each pixel used at most once
/// per fiber) and — via the joint search — the spectrum-consistency
/// constraint (4) (same pixels on every fiber of a path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpectrumMask {
    words: Vec<u64>,
    pixels: u32,
}

impl SpectrumMask {
    /// An all-free mask over `grid`.
    pub fn new(grid: SpectrumGrid) -> Self {
        let words = vec![0u64; grid.pixels().div_ceil(64) as usize];
        SpectrumMask {
            words,
            pixels: grid.pixels(),
        }
    }

    /// Number of pixels tracked by the mask.
    pub fn pixels(&self) -> u32 {
        self.pixels
    }

    fn check_range(&self, range: &PixelRange) -> Result<(), OpticalError> {
        if range.end() > self.pixels {
            return Err(OpticalError::OutOfBand {
                range: *range,
                band_pixels: self.pixels,
            });
        }
        Ok(())
    }

    /// Whether pixel `i` is occupied.
    pub fn is_occupied(&self, pixel: u32) -> bool {
        debug_assert!(pixel < self.pixels);
        self.words[(pixel / 64) as usize] & (1u64 << (pixel % 64)) != 0
    }

    /// Whether every pixel in `range` is free.
    pub fn is_free(&self, range: &PixelRange) -> bool {
        range.end() <= self.pixels && range.pixels().all(|p| !self.is_occupied(p))
    }

    /// Marks every pixel in `range` occupied; fails if any is already
    /// occupied (a channel conflict) or out of band.
    pub fn occupy(&mut self, range: &PixelRange) -> Result<(), OpticalError> {
        self.check_range(range)?;
        if !self.is_free(range) {
            return Err(OpticalError::SpectrumConflict { range: *range });
        }
        for p in range.pixels() {
            self.words[(p / 64) as usize] |= 1u64 << (p % 64);
        }
        Ok(())
    }

    /// Frees every pixel in `range`; fails if any was already free (double
    /// release indicates a bookkeeping bug) or out of band.
    pub fn release(&mut self, range: &PixelRange) -> Result<(), OpticalError> {
        self.check_range(range)?;
        if range.pixels().any(|p| !self.is_occupied(p)) {
            return Err(OpticalError::DoubleRelease { range: *range });
        }
        for p in range.pixels() {
            self.words[(p / 64) as usize] &= !(1u64 << (p % 64));
        }
        Ok(())
    }

    /// Count of occupied pixels.
    pub fn occupied_pixels(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Count of free pixels.
    pub fn free_pixels(&self) -> u32 {
        self.pixels - self.occupied_pixels()
    }

    /// Occupied spectrum in GHz.
    pub fn occupied_ghz(&self) -> f64 {
        f64::from(self.occupied_pixels()) * PIXEL_GHZ
    }

    /// Lowest-starting contiguous free run of `width` pixels, if any.
    pub fn first_fit(&self, width: PixelWidth) -> Option<PixelRange> {
        Self::first_fit_joint(&[self], width)
    }

    /// Lowest-starting contiguous run of `width` pixels that is free in
    /// **every** mask simultaneously.
    ///
    /// This is the allocation primitive for a wavelength whose optical path
    /// traverses several fibers: the paper's spectrum-consistency constraint
    /// requires the wavelength to occupy the *same* pixels on each fiber.
    pub fn first_fit_joint(masks: &[&SpectrumMask], width: PixelWidth) -> Option<PixelRange> {
        Self::first_fit_joint_aligned(masks, width, 1)
    }

    /// Like [`SpectrumMask::first_fit_joint`] but only considering start
    /// pixels that are multiples of `align`.
    ///
    /// `align = 1` is the pixel-wise WSS of FlexWAN; `align = grid width`
    /// models the rigid-grid OLS of the 100G-WAN and RADWAN baselines,
    /// where every passband must sit on the fixed grid.
    pub fn first_fit_joint_aligned(
        masks: &[&SpectrumMask],
        width: PixelWidth,
        align: u32,
    ) -> Option<PixelRange> {
        assert!(align >= 1, "alignment must be at least one pixel");
        let pixels = masks.first()?.pixels;
        debug_assert!(
            masks.iter().all(|m| m.pixels == pixels),
            "masks must share a grid"
        );
        let need = u32::from(width.pixels());
        if need > pixels {
            return None;
        }
        let mut start = 0u32;
        while start + need <= pixels {
            // Scan the candidate window; on collision jump past it (to the
            // next aligned start after the colliding pixel).
            match (start..start + need).find(|&p| masks.iter().any(|m| m.is_occupied(p))) {
                Some(p) => start = (p + 1).div_ceil(align) * align,
                None => return Some(PixelRange::new(start, width)),
            }
        }
        None
    }

    /// All maximal free runs as (start, length-in-pixels) pairs, in order.
    ///
    /// Used by fragmentation diagnostics and the restoration report.
    pub fn free_runs(&self) -> Vec<(u32, u32)> {
        let mut runs = Vec::new();
        let mut start = None;
        for p in 0..self.pixels {
            if self.is_occupied(p) {
                if let Some(s) = start.take() {
                    runs.push((s, p - s));
                }
            } else if start.is_none() {
                start = Some(p);
            }
        }
        if let Some(s) = start {
            runs.push((s, self.pixels - s));
        }
        runs
    }

    /// Largest contiguous free run length, in pixels.
    pub fn largest_free_run(&self) -> u32 {
        self.free_runs()
            .into_iter()
            .map(|(_, len)| len)
            .max()
            .unwrap_or(0)
    }
}

// ---- JSON wire encoding (same shapes the former serde derives produced) ----

use flexwan_util::json::{self, FromJson, ToJson, Value};

impl ToJson for PixelWidth {
    fn to_json(&self) -> Value {
        // Newtype struct: encodes as the bare inner number.
        self.0.to_json()
    }
}

impl FromJson for PixelWidth {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        let px = u16::from_json(v)?;
        if px == 0 {
            return Err(json::Error::new("PixelWidth must be non-zero"));
        }
        Ok(PixelWidth(px))
    }
}

impl ToJson for PixelRange {
    fn to_json(&self) -> Value {
        Value::obj([
            ("start", self.start.to_json()),
            ("width", self.width.to_json()),
        ])
    }
}

impl FromJson for PixelRange {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(PixelRange {
            start: v.field("start")?,
            width: v.field("width")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(px: u16) -> PixelWidth {
        PixelWidth::new(px)
    }

    #[test]
    fn pixel_width_ghz_round_trip() {
        for ghz in [50.0, 62.5, 75.0, 87.5, 100.0, 112.5, 125.0, 137.5, 150.0] {
            let pw = PixelWidth::from_ghz(ghz).unwrap();
            assert_eq!(pw.ghz(), ghz);
        }
    }

    #[test]
    fn pixel_width_rejects_off_grid() {
        assert!(PixelWidth::from_ghz(55.0).is_err());
        assert!(PixelWidth::from_ghz(0.0).is_err());
        assert!(PixelWidth::from_ghz(-12.5).is_err());
        assert!(PixelWidth::from_ghz(12.4).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one pixel")]
    fn pixel_width_rejects_zero() {
        let _ = PixelWidth::new(0);
    }

    #[test]
    fn range_overlap_and_contains() {
        let a = PixelRange::new(0, w(4));
        let b = PixelRange::new(4, w(4));
        let c = PixelRange::new(3, w(4));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        let big = PixelRange::new(0, w(8));
        assert!(big.contains(&a));
        assert!(big.contains(&b));
        assert!(!a.contains(&big));
    }

    #[test]
    fn range_frequency_bounds() {
        let r = PixelRange::new(4, w(6)); // 75 GHz channel starting at 50 GHz
        assert_eq!(r.low_ghz(), 50.0);
        assert_eq!(r.high_ghz(), 125.0);
    }

    #[test]
    fn c_band_has_384_pixels() {
        assert_eq!(SpectrumGrid::c_band().pixels(), 384);
        assert_eq!(SpectrumGrid::c_band().total_ghz(), 4800.0);
    }

    #[test]
    fn occupy_then_conflict() {
        let mut m = SpectrumMask::new(SpectrumGrid::new(16));
        m.occupy(&PixelRange::new(0, w(6))).unwrap();
        assert!(matches!(
            m.occupy(&PixelRange::new(5, w(4))),
            Err(OpticalError::SpectrumConflict { .. })
        ));
        // Adjacent (non-overlapping) allocation succeeds.
        m.occupy(&PixelRange::new(6, w(4))).unwrap();
        assert_eq!(m.occupied_pixels(), 10);
    }

    #[test]
    fn occupy_out_of_band() {
        let mut m = SpectrumMask::new(SpectrumGrid::new(8));
        assert!(matches!(
            m.occupy(&PixelRange::new(6, w(4))),
            Err(OpticalError::OutOfBand { .. })
        ));
    }

    #[test]
    fn release_round_trip_and_double_release() {
        let mut m = SpectrumMask::new(SpectrumGrid::new(64));
        let r = PixelRange::new(10, w(6));
        m.occupy(&r).unwrap();
        assert_eq!(m.occupied_pixels(), 6);
        m.release(&r).unwrap();
        assert_eq!(m.occupied_pixels(), 0);
        assert!(matches!(
            m.release(&r),
            Err(OpticalError::DoubleRelease { .. })
        ));
    }

    #[test]
    fn first_fit_finds_lowest_gap() {
        let mut m = SpectrumMask::new(SpectrumGrid::new(32));
        m.occupy(&PixelRange::new(0, w(4))).unwrap();
        m.occupy(&PixelRange::new(6, w(4))).unwrap();
        // Gap [4,6) is too small for 4 px; next free run starts at 10.
        assert_eq!(m.first_fit(w(4)), Some(PixelRange::new(10, w(4))));
        // But a 2 px request fits in the gap.
        assert_eq!(m.first_fit(w(2)), Some(PixelRange::new(4, w(2))));
    }

    #[test]
    fn first_fit_none_when_fragmented() {
        let mut m = SpectrumMask::new(SpectrumGrid::new(12));
        // Occupy every other pair: free runs of 2 px only.
        for s in [2u32, 6, 10] {
            m.occupy(&PixelRange::new(s, w(2))).unwrap();
        }
        assert!(m.first_fit(w(3)).is_none());
        assert_eq!(m.largest_free_run(), 2);
    }

    #[test]
    fn joint_first_fit_respects_all_masks() {
        let grid = SpectrumGrid::new(16);
        let mut a = SpectrumMask::new(grid);
        let mut b = SpectrumMask::new(grid);
        a.occupy(&PixelRange::new(0, w(6))).unwrap();
        b.occupy(&PixelRange::new(6, w(6))).unwrap();
        // Individually each has a 6 px run below 12, jointly only [12,16) —
        // too small for 6 px.
        assert_eq!(SpectrumMask::first_fit_joint(&[&a, &b], w(6)), None);
        assert_eq!(
            SpectrumMask::first_fit_joint(&[&a, &b], w(4)),
            Some(PixelRange::new(12, w(4)))
        );
    }

    #[test]
    fn joint_first_fit_crosses_word_boundary() {
        let grid = SpectrumGrid::new(384);
        let mut a = SpectrumMask::new(grid);
        a.occupy(&PixelRange::new(0, PixelWidth::new(62))).unwrap();
        // Next fit must straddle the 64-bit word boundary at pixel 64.
        assert_eq!(a.first_fit(w(6)), Some(PixelRange::new(62, w(6))));
    }

    #[test]
    fn aligned_first_fit_respects_grid() {
        let grid = SpectrumGrid::new(32);
        let mut m = SpectrumMask::new(grid);
        // Occupy [0,3): a pixel-wise fit for 4 px starts at 3; a 4-aligned
        // fit must start at 4.
        m.occupy(&PixelRange::new(0, w(3))).unwrap();
        assert_eq!(m.first_fit(w(4)), Some(PixelRange::new(3, w(4))));
        assert_eq!(
            SpectrumMask::first_fit_joint_aligned(&[&m], w(4), 4),
            Some(PixelRange::new(4, w(4)))
        );
    }

    #[test]
    fn aligned_first_fit_skips_blocked_grid_slots() {
        let grid = SpectrumGrid::new(24);
        let mut m = SpectrumMask::new(grid);
        // Pixel 5 blocks the grid slot [4,10); slots [0,6) blocked at 0.
        m.occupy(&PixelRange::new(0, w(1))).unwrap();
        m.occupy(&PixelRange::new(11, w(1))).unwrap();
        // 6-aligned, 6 wide: slot [0,6) blocked (pixel 0), [6,12) blocked
        // (pixel 11), so [12,18).
        assert_eq!(
            SpectrumMask::first_fit_joint_aligned(&[&m], w(6), 6),
            Some(PixelRange::new(12, w(6)))
        );
    }

    #[test]
    fn free_runs_reports_maximal_runs() {
        let mut m = SpectrumMask::new(SpectrumGrid::new(16));
        m.occupy(&PixelRange::new(4, w(4))).unwrap();
        assert_eq!(m.free_runs(), vec![(0, 4), (8, 8)]);
    }
}
