//! Optical-layer substrate for the FlexWAN reproduction.
//!
//! This crate models the physical building blocks of an optical backbone as
//! described in §2 and §4.2 of *FlexWAN* (SIGCOMM 2023):
//!
//! * [`spectrum`] — the C-band spectrum sliced into 12.5 GHz pixels, with
//!   contiguous pixel ranges (channels/passbands) and per-fiber occupancy
//!   masks. All planning arithmetic is integer pixel arithmetic; floating
//!   point only appears at the GHz presentation boundary.
//! * [`modulation`] — modulation formats (BPSK … 256QAM and probabilistic
//!   constellation shaping), bits/symbol, and the Shannon-Hartley helpers
//!   the paper's motivation section is built on.
//! * [`mod@format`] — a transponder *format*: one (data rate, channel spacing,
//!   optical reach) operating point together with the internal component
//!   settings (FEC overhead, baud rate, modulation) that realize it.
//! * [`transponder`] — the three transponder generations the paper
//!   compares: the fixed 100G transponder (100G-WAN), the
//!   bandwidth-variable transponder (BVT, RADWAN) and FlexWAN's
//!   spacing-variable transponder (SVT, Table 2 of the paper).
//! * [`devices`] — optical line system devices: MUX/AWG filter ports,
//!   ROADM degrees, EDFA amplifiers, and the wavelength-selective switch in
//!   both fixed-grid and pixel-wise (LCoS) flavours.
//!
//! The crate is dependency-light and fully deterministic so that the
//! planning and restoration algorithms built on top of it are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod devices;
pub mod error;
pub mod format;
pub mod modulation;
pub mod spectrum;
pub mod transponder;

pub use devices::{Amplifier, FilterPort, Mux, Roadm, WssKind};
pub use error::OpticalError;
pub use format::{FecOverhead, TransponderFormat};
pub use modulation::Modulation;
pub use spectrum::{PixelRange, PixelWidth, SpectrumGrid, SpectrumMask, PIXEL_GHZ};
pub use transponder::{Bvt, FixedGrid100G, Svt, TransponderModel};
