//! The three transponder generations compared in the paper.
//!
//! * [`FixedGrid100G`] — the fixed-rate transponder of 100G-WAN
//!   (Microsoft-style [27, 28]): one format, 100 Gbps over 50 GHz with
//!   3000 km reach.
//! * [`Bvt`] — RADWAN's bandwidth-variable transponder adapted to 75 GHz
//!   spacing (§2): 100/200/300 Gbps at BPSK/QPSK/8QAM with 5000/2000/1100 km
//!   reach. Variable *rate*, fixed *spacing*.
//! * [`Svt`] — FlexWAN's spacing-variable transponder: the full Table 2
//!   capability matrix, with both rate and spacing variable.
//!
//! All three expose the same [`TransponderModel`] interface consumed by the
//! planning and restoration algorithms, so baselines and FlexWAN run through
//! identical code paths.

use std::sync::OnceLock;

use crate::format::TransponderFormat;
use crate::spectrum::PixelWidth;

/// Capability interface of a transponder generation.
pub trait TransponderModel {
    /// Short human-readable model name.
    fn name(&self) -> &'static str;

    /// Every operating point the transponder supports, in no particular
    /// order. The slice is owned by the model and never changes.
    fn formats(&self) -> &[TransponderFormat];

    /// Operating points able to serve a path of `distance_km`
    /// (the optical-reach constraint (2) of Algorithm 1).
    fn formats_reaching(&self, distance_km: u32) -> Vec<TransponderFormat> {
        self.formats()
            .iter()
            .filter(|f| f.reaches(distance_km))
            .copied()
            .collect()
    }

    /// Highest data rate achievable at `distance_km`, if any format reaches
    /// (the curve of Figure 2(b)).
    fn max_rate_at(&self, distance_km: u32) -> Option<u32> {
        self.formats_reaching(distance_km)
            .iter()
            .map(|f| f.data_rate_gbps)
            .max()
    }

    /// Cheapest format carrying exactly `rate_gbps` over `distance_km`:
    /// minimum spacing, then maximum reach as tie-break.
    fn best_format_for(&self, rate_gbps: u32, distance_km: u32) -> Option<TransponderFormat> {
        self.formats()
            .iter()
            .filter(|f| f.data_rate_gbps == rate_gbps && f.reaches(distance_km))
            .min_by_key(|f| (f.spacing, std::cmp::Reverse(f.reach_km)))
            .copied()
    }

    /// The distinct data rates the model supports, ascending.
    fn rates(&self) -> Vec<u32> {
        let mut r: Vec<u32> = self.formats().iter().map(|f| f.data_rate_gbps).collect();
        r.sort_unstable();
        r.dedup();
        r
    }
}

fn px(ghz: f64) -> PixelWidth {
    PixelWidth::from_ghz(ghz).expect("spacing is on the 12.5 GHz grid")
}

/// The fixed-rate 100 Gbps transponder of 100G-WAN.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedGrid100G;

impl TransponderModel for FixedGrid100G {
    fn name(&self) -> &'static str {
        "100G-WAN fixed transponder"
    }

    fn formats(&self) -> &[TransponderFormat] {
        static F: OnceLock<Vec<TransponderFormat>> = OnceLock::new();
        F.get_or_init(|| vec![TransponderFormat::derive(100, px(50.0), 3000)])
    }
}

/// RADWAN's bandwidth-variable transponder at 75 GHz spacing (§2).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bvt;

impl TransponderModel for Bvt {
    fn name(&self) -> &'static str {
        "RADWAN bandwidth-variable transponder"
    }

    fn formats(&self) -> &[TransponderFormat] {
        static F: OnceLock<Vec<TransponderFormat>> = OnceLock::new();
        F.get_or_init(|| {
            vec![
                TransponderFormat::derive(100, px(75.0), 5000),
                TransponderFormat::derive(200, px(75.0), 2000),
                TransponderFormat::derive(300, px(75.0), 1100),
            ]
        })
    }
}

/// FlexWAN's spacing-variable transponder: the Table 2 capability matrix
/// measured on the production-level testbed (§6, Appendix A.2).
///
/// `(data rate Gbps, channel spacing GHz, optical reach km)`; spacings span
/// 50–150 GHz in 12.5 GHz steps. Entries marked `/` in the paper (not
/// recommended) are absent.
pub const SVT_TABLE: &[(u32, f64, u32)] = &[
    // 50 GHz
    (100, 50.0, 3000),
    (200, 50.0, 1000),
    // 62.5 GHz
    (200, 62.5, 1500),
    // 75 GHz
    (100, 75.0, 5000),
    (200, 75.0, 2000),
    (300, 75.0, 1100),
    (400, 75.0, 600),
    // 87.5 GHz
    (300, 87.5, 1500),
    (400, 87.5, 1000),
    (500, 87.5, 600),
    (600, 87.5, 300),
    // 100 GHz
    (300, 100.0, 2000),
    (400, 100.0, 1500),
    (500, 100.0, 900),
    (600, 100.0, 400),
    (700, 100.0, 200),
    // 112.5 GHz
    (400, 112.5, 1600),
    (500, 112.5, 1100),
    (600, 112.5, 500),
    (700, 112.5, 300),
    (800, 112.5, 150),
    // 125 GHz
    (400, 125.0, 1700),
    (500, 125.0, 1200),
    (600, 125.0, 600),
    (700, 125.0, 350),
    (800, 125.0, 200),
    // 137.5 GHz
    (400, 137.5, 1800),
    (500, 137.5, 1300),
    (600, 137.5, 700),
    (700, 137.5, 450),
    (800, 137.5, 250),
    // 150 GHz
    (400, 150.0, 1900),
    (500, 150.0, 1400),
    (600, 150.0, 800),
    (700, 150.0, 500),
    (800, 150.0, 300),
];

/// FlexWAN's spacing-variable transponder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Svt;

impl TransponderModel for Svt {
    fn name(&self) -> &'static str {
        "FlexWAN spacing-variable transponder"
    }

    fn formats(&self) -> &[TransponderFormat] {
        static F: OnceLock<Vec<TransponderFormat>> = OnceLock::new();
        F.get_or_init(|| {
            SVT_TABLE
                .iter()
                .map(|&(rate, ghz, reach)| TransponderFormat::derive(rate, px(ghz), reach))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svt_table_is_complete() {
        assert_eq!(Svt.formats().len(), 36);
        // Every spacing between 50 and 150 GHz present.
        let mut spacings: Vec<f64> = Svt.formats().iter().map(|f| f.spacing.ghz()).collect();
        spacings.sort_by(f64::total_cmp);
        spacings.dedup();
        assert_eq!(
            spacings,
            vec![50.0, 62.5, 75.0, 87.5, 100.0, 112.5, 125.0, 137.5, 150.0]
        );
    }

    #[test]
    fn svt_reach_decreases_with_rate_at_fixed_spacing() {
        // Within every spacing column of Table 2, higher rate ⇒ shorter reach.
        for ghz in [50.0, 62.5, 75.0, 87.5, 100.0, 112.5, 125.0, 137.5, 150.0] {
            let mut col: Vec<_> = Svt
                .formats()
                .iter()
                .filter(|f| f.spacing.ghz() == ghz)
                .map(|f| (f.data_rate_gbps, f.reach_km))
                .collect();
            col.sort_unstable();
            for pair in col.windows(2) {
                assert!(
                    pair[0].1 > pair[1].1,
                    "at {ghz} GHz: {:?} !> {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn svt_reach_increases_with_spacing_at_fixed_rate() {
        // Within every rate row of Table 2 (≥300G where multiple spacings
        // exist contiguously), wider spacing ⇒ longer reach.
        for rate in [300u32, 400, 500, 600, 700, 800] {
            let mut row: Vec<_> = Svt
                .formats()
                .iter()
                .filter(|f| f.data_rate_gbps == rate)
                .map(|f| (f.spacing, f.reach_km))
                .collect();
            row.sort_unstable_by_key(|&(s, _)| s);
            for pair in row.windows(2) {
                assert!(
                    pair[0].1 < pair[1].1,
                    "{rate}G: {:?} !< {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn fig2b_max_rate_curves() {
        // Figure 2(b): SVT dominates BVT everywhere, dramatically at short
        // distances.
        assert_eq!(Svt.max_rate_at(150), Some(800));
        assert_eq!(Svt.max_rate_at(300), Some(800));
        assert_eq!(Svt.max_rate_at(500), Some(700));
        assert_eq!(Svt.max_rate_at(800), Some(600));
        assert_eq!(Svt.max_rate_at(1400), Some(500));
        assert_eq!(Svt.max_rate_at(1900), Some(400));
        assert_eq!(Svt.max_rate_at(2000), Some(300));
        assert_eq!(Svt.max_rate_at(5000), Some(100));
        assert_eq!(Svt.max_rate_at(5001), None);

        assert_eq!(Bvt.max_rate_at(300), Some(300));
        assert_eq!(Bvt.max_rate_at(1100), Some(300));
        assert_eq!(Bvt.max_rate_at(1101), Some(200));
        assert_eq!(Bvt.max_rate_at(2001), Some(100));
        assert_eq!(Bvt.max_rate_at(5001), None);

        assert_eq!(FixedGrid100G.max_rate_at(3000), Some(100));
        assert_eq!(FixedGrid100G.max_rate_at(3001), None);

        for d in (100..=5000).step_by(100) {
            let svt = Svt.max_rate_at(d).unwrap_or(0);
            let bvt = Bvt.max_rate_at(d).unwrap_or(0);
            assert!(svt >= bvt, "SVT must dominate BVT at {d} km");
        }
    }

    #[test]
    fn best_format_prefers_narrow_spacing() {
        // 400G over 500 km: 75 GHz (reach 600) suffices — no need for 87.5+.
        let f = Svt.best_format_for(400, 500).unwrap();
        assert_eq!(f.spacing.ghz(), 75.0);
        // 400G over 1200 km: 75 (600), 87.5 (1000) too short; 100 GHz (1500).
        let f = Svt.best_format_for(400, 1200).unwrap();
        assert_eq!(f.spacing.ghz(), 100.0);
        // 800G over 400 km: impossible at any spacing (max reach 300).
        assert!(Svt.best_format_for(800, 400).is_none());
    }

    #[test]
    fn rates_listing() {
        assert_eq!(FixedGrid100G.rates(), vec![100]);
        assert_eq!(Bvt.rates(), vec![100, 200, 300]);
        assert_eq!(Svt.rates(), vec![100, 200, 300, 400, 500, 600, 700, 800]);
    }

    #[test]
    fn restoration_example_from_section_3_3() {
        // §3.3: primary path 600 km at 300 Gbps (BVT reach 1100 km).
        // Restoration path 1200 km: BVT must drop to 200 Gbps, SVT can keep
        // 300 Gbps by widening the spacing to 87.5 GHz (reach 1500 km).
        assert_eq!(Bvt.max_rate_at(1200), Some(200));
        let f = Svt.best_format_for(300, 1200).unwrap();
        assert_eq!(f.spacing.ghz(), 87.5);
    }

    #[test]
    fn section8_restoration_example() {
        // §8: wavelength planned at 500 Gbps over 1200 km occupies 125 GHz;
        // on a 2000 km restored path the SVT falls back to 300 Gbps.
        let f = Svt.best_format_for(500, 1200).unwrap();
        assert_eq!(f.spacing.ghz(), 125.0);
        assert_eq!(Svt.max_rate_at(2000), Some(300));
    }
}
