//! Transponder operating points ("formats").
//!
//! A *format* is one row of a transponder's capability table: a data rate,
//! the channel spacing the generated wavelength occupies, and the optical
//! reach up to which the signal still decodes error-free (post-FEC BER = 0).
//! For the SVT (§4.2) each format additionally records which settings of the
//! adjustable internal components realize it: FEC overhead, DSP baud rate,
//! and modulation format.

use crate::modulation::Modulation;
use crate::spectrum::PixelWidth;

/// FEC overhead as a percentage of redundant data added to the signal
/// (§4.2 names 15 % and 27 % as the SVT's selectable ratios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FecOverhead {
    percent: u8,
}

impl FecOverhead {
    /// The low-overhead FEC option (15 % redundancy).
    pub const LOW: FecOverhead = FecOverhead { percent: 15 };
    /// The high-overhead FEC option (27 % redundancy), for long reach.
    pub const HIGH: FecOverhead = FecOverhead { percent: 27 };

    /// Creates an overhead of `percent` % redundancy.
    pub fn new(percent: u8) -> Self {
        assert!(percent < 100, "FEC overhead is a redundancy percentage");
        FecOverhead { percent }
    }

    /// The redundancy percentage.
    pub fn percent(self) -> u8 {
        self.percent
    }

    /// Line-rate multiplier: information rate × this = transmitted rate.
    pub fn rate_multiplier(self) -> f64 {
        1.0 + f64::from(self.percent) / 100.0
    }
}

/// One operating point of a transponder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransponderFormat {
    /// Net (information) data rate of the wavelength, Gbps.
    pub data_rate_gbps: u32,
    /// Channel spacing occupied by the wavelength.
    pub spacing: PixelWidth,
    /// Maximum error-free transmission distance, km.
    pub reach_km: u32,
    /// Modulation format configured in the DSP.
    pub modulation: Modulation,
    /// Symbol rate, GBd.
    pub baud_gbd: f64,
    /// FEC overhead configured in the FEC module.
    pub fec: FecOverhead,
}

impl TransponderFormat {
    /// Builds a format, deriving the internal component settings
    /// (baud, modulation, FEC) from the external operating point.
    ///
    /// The derivation mirrors how coherent transponders are engineered:
    ///
    /// * the symbol rate fills the spacing minus one 12.5 GHz pixel of
    ///   guard band (50 GHz spacing → 37.5 GBd, 62.5 GHz → 50 GBd — the
    ///   two baud rates §4.2 names — 75 GHz → 62.5 GBd, …);
    /// * long-reach points use the 27 % FEC, short-reach the 15 % FEC
    ///   (more redundancy buys reach at the cost of line rate);
    /// * the modulation then carries
    ///   `rate × FEC-multiplier / (2 polarizations × baud)` bits/symbol —
    ///   realized with PCS when fractional (§4.2: baud, FEC, and modulation
    ///   are "almost fully meshed" in the SVT's DSP).
    pub fn derive(data_rate_gbps: u32, spacing: PixelWidth, reach_km: u32) -> Self {
        // One 12.5 GHz pixel of the spacing is guard band; the symbol rate
        // fills the rest.
        let baud_gbd = spacing.ghz() - 12.5;
        assert!(
            baud_gbd > 0.0,
            "spacing must exceed the 12.5 GHz guard band"
        );
        // Long reach needs the strong code. 800 km is the midpoint of the
        // SVT table's reach spread and matches the paper's description of
        // high-overhead FEC for "long traveling distances".
        let fec = if reach_km >= 800 {
            FecOverhead::HIGH
        } else {
            FecOverhead::LOW
        };
        let bits = f64::from(data_rate_gbps) * fec.rate_multiplier() / (2.0 * baud_gbd);
        let modulation = match Modulation::densest_fixed_at_least(bits) {
            // Exact fixed format if it matches within 0.05 bit; otherwise PCS.
            Some(m) if (m.bits_per_symbol() - bits).abs() < 0.05 => m,
            _ => Modulation::pcs(bits),
        };
        TransponderFormat {
            data_rate_gbps,
            spacing,
            reach_km,
            modulation,
            baud_gbd,
            fec,
        }
    }

    /// Builds a format with explicitly chosen internal settings.
    pub fn explicit(
        data_rate_gbps: u32,
        spacing: PixelWidth,
        reach_km: u32,
        modulation: Modulation,
        baud_gbd: f64,
        fec: FecOverhead,
    ) -> Self {
        TransponderFormat {
            data_rate_gbps,
            spacing,
            reach_km,
            modulation,
            baud_gbd,
            fec,
        }
    }

    /// Link spectral efficiency: data rate / spacing, in bit/s/Hz (§7.1).
    pub fn spectral_efficiency(&self) -> f64 {
        f64::from(self.data_rate_gbps) / self.spacing.ghz()
    }

    /// Whether this format can serve a path of `distance_km` (reach ≥ path,
    /// the paper's optical-reach constraint (2)).
    pub fn reaches(&self, distance_km: u32) -> bool {
        self.reach_km >= distance_km
    }

    /// Information bits per symbol per polarization implied by the
    /// (rate, baud, FEC) triple.
    pub fn bits_per_symbol(&self) -> f64 {
        f64::from(self.data_rate_gbps) * self.fec.rate_multiplier() / (2.0 * self.baud_gbd)
    }
}

impl std::fmt::Display for TransponderFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} Gbps @ {} ({}; {:.1} GBd; FEC {}%) reach {} km",
            self.data_rate_gbps,
            self.spacing,
            self.modulation,
            self.baud_gbd,
            self.fec.percent(),
            self.reach_km
        )
    }
}

// ---- JSON wire encoding (same shapes the former serde derives produced) ----

use flexwan_util::json::{self, FromJson, ToJson, Value};

impl ToJson for FecOverhead {
    fn to_json(&self) -> Value {
        Value::obj([("percent", self.percent.to_json())])
    }
}

impl FromJson for FecOverhead {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        let percent: u8 = v.field("percent")?;
        if percent >= 100 {
            return Err(json::Error::new("FEC overhead out of range"));
        }
        Ok(FecOverhead { percent })
    }
}

impl ToJson for TransponderFormat {
    fn to_json(&self) -> Value {
        Value::obj([
            ("data_rate_gbps", self.data_rate_gbps.to_json()),
            ("spacing", self.spacing.to_json()),
            ("reach_km", self.reach_km.to_json()),
            ("modulation", self.modulation.to_json()),
            ("baud_gbd", self.baud_gbd.to_json()),
            ("fec", self.fec.to_json()),
        ])
    }
}

impl FromJson for TransponderFormat {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(TransponderFormat {
            data_rate_gbps: v.field("data_rate_gbps")?,
            spacing: v.field("spacing")?,
            reach_km: v.field("reach_km")?,
            modulation: v.field("modulation")?,
            baud_gbd: v.field("baud_gbd")?,
            fec: v.field("fec")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fec_multipliers() {
        assert_eq!(FecOverhead::LOW.rate_multiplier(), 1.15);
        assert_eq!(FecOverhead::HIGH.rate_multiplier(), 1.27);
        assert_eq!(FecOverhead::new(20).percent(), 20);
    }

    #[test]
    #[should_panic(expected = "redundancy percentage")]
    fn fec_rejects_absurd_overhead() {
        let _ = FecOverhead::new(100);
    }

    #[test]
    fn derive_picks_high_fec_for_long_reach() {
        let long = TransponderFormat::derive(100, PixelWidth::from_ghz(75.0).unwrap(), 5000);
        let short = TransponderFormat::derive(600, PixelWidth::from_ghz(87.5).unwrap(), 300);
        assert_eq!(long.fec, FecOverhead::HIGH);
        assert_eq!(short.fec, FecOverhead::LOW);
    }

    #[test]
    fn derive_bits_per_symbol_consistent() {
        // Every SVT-table-like point should produce a physically plausible
        // modulation: between BPSK (1 b) and 256QAM (8 b) per symbol.
        for (rate, ghz, reach) in [
            (100, 50.0, 3000),
            (400, 75.0, 600),
            (800, 112.5, 150),
            (800, 150.0, 300),
        ] {
            let f = TransponderFormat::derive(rate, PixelWidth::from_ghz(ghz).unwrap(), reach);
            let b = f.bits_per_symbol();
            assert!(
                (0.9..=8.2).contains(&b),
                "{rate}G@{ghz}GHz gives {b} bits/symbol"
            );
            assert!((f.modulation.bits_per_symbol() - b).abs() < 0.06);
        }
    }

    #[test]
    fn spectral_efficiency_matches_paper_fixed_wan() {
        // §7.1: 100G-WAN link spectral efficiency is fixed at 2 b/s/Hz.
        let f = TransponderFormat::derive(100, PixelWidth::from_ghz(50.0).unwrap(), 3000);
        assert_eq!(f.spectral_efficiency(), 2.0);
    }

    #[test]
    fn reach_constraint() {
        let f = TransponderFormat::derive(300, PixelWidth::from_ghz(75.0).unwrap(), 1100);
        assert!(f.reaches(1100));
        assert!(f.reaches(600));
        assert!(!f.reaches(1101));
    }

    #[test]
    fn display_renders() {
        let f = TransponderFormat::derive(400, PixelWidth::from_ghz(112.5).unwrap(), 1600);
        let s = f.to_string();
        assert!(s.contains("400 Gbps"), "{s}");
        assert!(s.contains("112.5 GHz"), "{s}");
    }
}
