//! The shared optimization-model layer: typed variable spaces over which
//! the exact planning MIP (Algorithm 1), the exact restoration MIP (§8)
//! and the TE LPs are all built.
//!
//! Before this module each formulation hand-rolled its own private
//! variable registry and built every constraint row by scanning the whole
//! registry (`gammas.iter().filter(...)` per row — O(vars × rows) model
//! construction). [`WavelengthVarSpace`] enumerates the γ variables
//! *once*, in the exact order the individual formulations used, and
//! prebuilds three index buckets:
//!
//! * per **slot** (IP link for planning, affected-link slot for
//!   restoration) — capacity / transponder-count rows;
//! * per **(fiber, pixel)** — spectrum-conflict rows;
//! * per **path** (via [`GammaVar::path_index`]) — extraction and
//!   path-level queries.
//!
//! Row construction becomes a bucket lookup, so building the model is
//! linear in its nonzero count. [`FlowVarSpace`] does the same for the
//! path-based multi-commodity-flow variables of `te`.
//!
//! The enumeration order (slot-major, then candidate path, then format,
//! then aligned start pixel) and the diagnostic variable names are part of
//! the contract: `tests/opt_roundtrip.rs` pins solver outputs against
//! goldens blessed on the pre-refactor formulations.

use flexwan_optical::format::TransponderFormat;
use flexwan_optical::spectrum::PixelRange;
use flexwan_solver::{LinExpr, Model, RowId, Solution, Var};
use flexwan_topo::graph::EdgeId;
use flexwan_topo::ip::IpLinkId;
use flexwan_topo::path::Path;

use crate::planning::format_dp::reachable_formats;
use crate::scheme::Scheme;
use crate::wavelength::Wavelength;

/// Typed handle to one γ variable inside a [`WavelengthVarSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GammaId(pub usize);

/// One γ variable: a candidate wavelength of `format` starting at pixel
/// `start` on candidate path `path_index` of slot `slot`.
#[derive(Debug, Clone)]
pub struct GammaVar {
    /// Caller-defined slot: the IP-link index for planning, the
    /// affected-link slot for restoration.
    pub slot: usize,
    /// Index into the slot's candidate-path list (the `k` of `P_{e,k}`).
    pub path_index: usize,
    /// The transponder operating point.
    pub format: TransponderFormat,
    /// First occupied pixel.
    pub start: u32,
    /// The solver variable (binary).
    pub var: Var,
}

impl GammaVar {
    /// The spectrum the candidate would occupy on every fiber of its path.
    pub fn channel(&self) -> PixelRange {
        PixelRange::new(self.start, self.format.spacing)
    }
}

/// One-pass enumeration of the γ variables of a wavelength-assignment
/// formulation, with prebuilt per-slot and per-(fiber, pixel) buckets.
#[derive(Debug)]
pub struct WavelengthVarSpace {
    gammas: Vec<GammaVar>,
    paths_per_slot: Vec<Vec<Path>>,
    pixels: u32,
    by_slot: Vec<Vec<GammaId>>,
    /// `fiber.0 * pixels + pixel` → every γ occupying that pixel on that
    /// fiber. Bucket order equals γ-id order (enumeration order), so rows
    /// built from buckets are term-for-term identical to the scan-built
    /// rows they replaced.
    by_fiber_pixel: Vec<Vec<GammaId>>,
}

impl WavelengthVarSpace {
    /// Enumerates every admissible γ for `paths_per_slot` into `m`, in
    /// slot-major order. For each slot's path `ki` and each reachable
    /// format, aligned starts `q` walk the grid; `admit` filters starts
    /// (planning admits everything; restoration pre-filters against the
    /// residual spectrum — §8 constraint (9)). Variables are named
    /// `{prefix}{slot}_k{ki}_d{rate}_y{spacing_px}_q{q}`.
    pub fn enumerate(
        m: &mut Model,
        scheme: Scheme,
        pixels: u32,
        num_fibers: usize,
        prefix: &str,
        paths_per_slot: Vec<Vec<Path>>,
        mut admit: impl FnMut(&Path, &PixelRange) -> bool,
    ) -> WavelengthVarSpace {
        let align = scheme.alignment_pixels();
        let model_t = scheme.transponder();
        let mut space = WavelengthVarSpace {
            gammas: Vec::new(),
            by_slot: vec![Vec::new(); paths_per_slot.len()],
            by_fiber_pixel: vec![Vec::new(); num_fibers * pixels as usize],
            pixels,
            paths_per_slot,
        };
        for slot in 0..space.paths_per_slot.len() {
            for ki in 0..space.paths_per_slot[slot].len() {
                let path = &space.paths_per_slot[slot][ki];
                for format in reachable_formats(model_t, path.length_km) {
                    let w = u32::from(format.spacing.pixels());
                    let mut q = 0u32;
                    while q + w <= pixels {
                        let range = PixelRange::new(q, format.spacing);
                        if admit(path, &range) {
                            let var = m.binary(format!(
                                "{prefix}{slot}_k{ki}_d{}_y{}_q{q}",
                                format.data_rate_gbps,
                                format.spacing.pixels()
                            ));
                            let id = GammaId(space.gammas.len());
                            space.by_slot[slot].push(id);
                            for e in &path.edges {
                                for px in q..q + w {
                                    space.by_fiber_pixel
                                        [e.0 as usize * pixels as usize + px as usize]
                                        .push(id);
                                }
                            }
                            space.gammas.push(GammaVar {
                                slot,
                                path_index: ki,
                                format,
                                start: q,
                                var,
                            });
                        }
                        q += align;
                    }
                }
            }
        }
        space
    }

    /// Appends extra candidate paths to `slot` after the initial
    /// enumeration, enumerating their admissible γ columns into `m`
    /// exactly as [`WavelengthVarSpace::enumerate`] would have (same
    /// format walk, same aligned-start grid, same naming scheme, `ki`
    /// continuing the slot's candidate numbering). Existing γ ids keep
    /// their positions and every bucket grows strictly at its tail, so
    /// the pinned enumeration-order contract over the original space is
    /// untouched. Returns the new γ handles.
    ///
    /// This is the column-generation hook behind on-demand restoration
    /// candidates: a simultaneous-cut scenario whose detours were not
    /// pre-enumerated extends the standing space instead of rebuilding
    /// it.
    pub fn extend_slot(
        &mut self,
        m: &mut Model,
        scheme: Scheme,
        prefix: &str,
        slot: usize,
        new_paths: Vec<Path>,
        mut admit: impl FnMut(&Path, &PixelRange) -> bool,
    ) -> Vec<GammaId> {
        let align = scheme.alignment_pixels();
        let model_t = scheme.transponder();
        let pixels = self.pixels;
        let mut added = Vec::new();
        for path in new_paths {
            let ki = self.paths_per_slot[slot].len();
            self.paths_per_slot[slot].push(path);
            let path = &self.paths_per_slot[slot][ki];
            for format in reachable_formats(model_t, path.length_km) {
                let w = u32::from(format.spacing.pixels());
                let mut q = 0u32;
                while q + w <= pixels {
                    let range = PixelRange::new(q, format.spacing);
                    if admit(path, &range) {
                        let var = m.binary(format!(
                            "{prefix}{slot}_k{ki}_d{}_y{}_q{q}",
                            format.data_rate_gbps,
                            format.spacing.pixels()
                        ));
                        let id = GammaId(self.gammas.len());
                        self.by_slot[slot].push(id);
                        for e in &path.edges {
                            for px in q..q + w {
                                self.by_fiber_pixel[e.0 as usize * pixels as usize + px as usize]
                                    .push(id);
                            }
                        }
                        self.gammas.push(GammaVar {
                            slot,
                            path_index: ki,
                            format,
                            start: q,
                            var,
                        });
                        added.push(id);
                    }
                    q += align;
                }
            }
        }
        added
    }

    /// All γ variables, in enumeration order (`GammaId` order).
    pub fn gammas(&self) -> &[GammaVar] {
        &self.gammas
    }

    /// The γ behind a handle.
    pub fn get(&self, id: GammaId) -> &GammaVar {
        &self.gammas[id.0]
    }

    /// Number of slots (IP links / affected links).
    pub fn num_slots(&self) -> usize {
        self.paths_per_slot.len()
    }

    /// The candidate paths of a slot.
    pub fn paths(&self, slot: usize) -> &[Path] {
        &self.paths_per_slot[slot]
    }

    /// The path a γ rides.
    pub fn path_of(&self, g: &GammaVar) -> &Path {
        &self.paths_per_slot[g.slot][g.path_index]
    }

    /// γ handles of one slot, in enumeration order.
    pub fn slot_gammas(&self, slot: usize) -> &[GammaId] {
        &self.by_slot[slot]
    }

    /// γ handles occupying `pixel` on `fiber`, in enumeration order.
    pub fn fiber_pixel_gammas(&self, fiber: EdgeId, pixel: u32) -> &[GammaId] {
        &self.by_fiber_pixel[fiber.0 as usize * self.pixels as usize + pixel as usize]
    }

    /// `Σ_slot rate·γ` — the capacity carried on a slot.
    pub fn rate_expr(&self, slot: usize) -> LinExpr {
        LinExpr::sum(
            self.by_slot[slot].iter().map(|&id| {
                f64::from(self.gammas[id.0].format.data_rate_gbps) * self.gammas[id.0].var
            }),
        )
    }

    /// `Σ_slot γ` — the transponder count on a slot.
    pub fn count_expr(&self, slot: usize) -> LinExpr {
        LinExpr::sum(
            self.by_slot[slot]
                .iter()
                .map(|&id| 1.0 * self.gammas[id.0].var),
        )
    }

    /// An objective (or any) expression with per-γ coefficients.
    pub fn weighted_expr(&self, mut coeff: impl FnMut(&GammaVar) -> f64) -> LinExpr {
        LinExpr::sum(self.gammas.iter().map(|g| coeff(g) * g.var))
    }

    /// Emits the per-(fiber, pixel) spectrum-conflict rows `Σ γ ≤ 1` for
    /// the given fibers, returning the rows grouped per fiber (aligned
    /// with the input order). Rows with fewer than `min_terms` occupying
    /// candidates are skipped — the planning formulation emits every
    /// non-empty row, restoration only genuinely conflicting ones.
    pub fn conflict_rows(
        &self,
        m: &mut Model,
        fibers: impl IntoIterator<Item = EdgeId>,
        min_terms: usize,
    ) -> Vec<(EdgeId, Vec<RowId>)> {
        let mut out = Vec::new();
        for fiber in fibers {
            let mut rows = Vec::new();
            for w in 0..self.pixels {
                let bucket = self.fiber_pixel_gammas(fiber, w);
                if bucket.len() >= min_terms {
                    let expr = LinExpr::sum(bucket.iter().map(|&id| 1.0 * self.gammas[id.0].var));
                    rows.push(m.le(expr, 1.0));
                }
            }
            out.push((fiber, rows));
        }
        out
    }

    /// Extracts the selected wavelengths (`γ > 0.5`) of a solution, in
    /// enumeration order; `link_of_slot` maps slots back to IP links.
    pub fn extract(
        &self,
        sol: &Solution,
        mut link_of_slot: impl FnMut(usize) -> IpLinkId,
    ) -> Vec<Wavelength> {
        self.gammas
            .iter()
            .filter(|g| sol.value(g.var) > 0.5)
            .map(|g| Wavelength {
                link: link_of_slot(g.slot),
                path_index: g.path_index,
                path: self.path_of(g).clone(),
                format: g.format,
                channel: g.channel(),
            })
            .collect()
    }
}

/// Typed handle to one flow variable inside a [`FlowVarSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// One path-flow variable of the TE LPs: traffic of demand `demand`
/// carried on its candidate path `path_index`.
#[derive(Debug, Clone, Copy)]
pub struct FlowVar {
    /// Index into the traffic-demand list.
    pub demand: usize,
    /// Index into the demand's candidate-path list.
    pub path_index: usize,
    /// The solver variable (nonnegative continuous).
    pub var: Var,
}

/// One-pass enumeration of path-flow variables with per-demand and
/// per-edge buckets (the TE analogue of [`WavelengthVarSpace`]).
#[derive(Debug)]
pub struct FlowVarSpace {
    flows: Vec<FlowVar>,
    by_demand: Vec<Vec<FlowId>>,
    by_edge: Vec<Vec<FlowId>>,
}

impl FlowVarSpace {
    /// Enumerates `f_{i}_{j}` variables in demand-major order and buckets
    /// them by demand and by traversed IP-link edge.
    pub fn enumerate(
        m: &mut Model,
        paths_per_demand: &[Vec<Path>],
        num_edges: usize,
    ) -> FlowVarSpace {
        let mut space = FlowVarSpace {
            flows: Vec::new(),
            by_demand: vec![Vec::new(); paths_per_demand.len()],
            by_edge: vec![Vec::new(); num_edges],
        };
        for (i, paths) in paths_per_demand.iter().enumerate() {
            for (j, path) in paths.iter().enumerate() {
                let var = m.nonneg(format!("f_{i}_{j}"));
                let id = FlowId(space.flows.len());
                space.by_demand[i].push(id);
                for e in &path.edges {
                    space.by_edge[e.0 as usize].push(id);
                }
                space.flows.push(FlowVar {
                    demand: i,
                    path_index: j,
                    var,
                });
            }
        }
        space
    }

    /// All flow variables, in enumeration order.
    pub fn flows(&self) -> &[FlowVar] {
        &self.flows
    }

    /// `Σ_j f_ij` — total flow of one demand.
    pub fn demand_expr(&self, demand: usize) -> LinExpr {
        LinExpr::sum(
            self.by_demand[demand]
                .iter()
                .map(|&id| 1.0 * self.flows[id.0].var),
        )
    }

    /// `Σ f` over every flow whose path crosses `edge`.
    pub fn edge_expr(&self, edge: EdgeId) -> LinExpr {
        LinExpr::sum(
            self.by_edge[edge.0 as usize]
                .iter()
                .map(|&id| 1.0 * self.flows[id.0].var),
        )
    }

    /// `Σ f` over all flows — the total-throughput objective.
    pub fn total_expr(&self) -> LinExpr {
        LinExpr::sum(self.flows.iter().map(|f| 1.0 * f.var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_topo::graph::Graph;
    use flexwan_topo::ksp::k_shortest_paths;

    fn two_hop() -> (Graph, Vec<Vec<Path>>) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 100);
        g.add_edge(b, c, 100);
        let none = std::collections::HashSet::new();
        let paths = vec![k_shortest_paths(&g, a, c, 2, &none)];
        (g, paths)
    }

    #[test]
    fn buckets_agree_with_full_scans() {
        let (g, paths) = two_hop();
        let mut m = Model::new();
        let space = WavelengthVarSpace::enumerate(
            &mut m,
            Scheme::FlexWan,
            12,
            g.num_edges(),
            "g_e",
            paths,
            |_, _| true,
        );
        assert!(!space.gammas().is_empty());
        // Slot bucket == scan by slot.
        let scan: Vec<usize> = space
            .gammas()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.slot == 0)
            .map(|(i, _)| i)
            .collect();
        let bucket: Vec<usize> = space.slot_gammas(0).iter().map(|id| id.0).collect();
        assert_eq!(scan, bucket);
        // Fiber-pixel bucket == scan by coverage, for every (fiber, pixel).
        for fiber in g.edges() {
            for px in 0..12u32 {
                let scan: Vec<usize> = space
                    .gammas()
                    .iter()
                    .enumerate()
                    .filter(|(_, gm)| {
                        space.path_of(gm).uses_edge(fiber.id)
                            && gm.start <= px
                            && px < gm.start + u32::from(gm.format.spacing.pixels())
                    })
                    .map(|(i, _)| i)
                    .collect();
                let bucket: Vec<usize> = space
                    .fiber_pixel_gammas(fiber.id, px)
                    .iter()
                    .map(|id| id.0)
                    .collect();
                assert_eq!(scan, bucket, "fiber {:?} pixel {px}", fiber.id);
            }
        }
    }

    #[test]
    fn admit_filter_prunes_starts() {
        let (g, paths) = two_hop();
        let mut m = Model::new();
        let all = WavelengthVarSpace::enumerate(
            &mut m,
            Scheme::FlexWan,
            12,
            g.num_edges(),
            "g_e",
            paths.clone(),
            |_, _| true,
        );
        let mut m2 = Model::new();
        let pruned = WavelengthVarSpace::enumerate(
            &mut m2,
            Scheme::FlexWan,
            12,
            g.num_edges(),
            "h_e",
            paths,
            |_, range| range.start >= 4,
        );
        assert!(pruned.gammas().len() < all.gammas().len());
        assert!(pruned.gammas().iter().all(|g| g.start >= 4));
    }

    #[test]
    fn conflict_rows_respect_min_terms() {
        let (g, paths) = two_hop();
        let mut m1 = Model::new();
        let s1 = WavelengthVarSpace::enumerate(
            &mut m1,
            Scheme::FlexWan,
            12,
            g.num_edges(),
            "g_e",
            paths.clone(),
            |_, _| true,
        );
        let fibers: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
        let any = s1.conflict_rows(&mut m1, fibers.iter().copied(), 1);
        let mut m2 = Model::new();
        let s2 = WavelengthVarSpace::enumerate(
            &mut m2,
            Scheme::FlexWan,
            12,
            g.num_edges(),
            "g_e",
            paths,
            |_, _| true,
        );
        let pairs = s2.conflict_rows(&mut m2, fibers.iter().copied(), 2);
        let n_any: usize = any.iter().map(|(_, r)| r.len()).sum();
        let n_pairs: usize = pairs.iter().map(|(_, r)| r.len()).sum();
        assert!(n_pairs <= n_any);
        for (_, rows) in &pairs {
            for &r in rows {
                assert!(m2.row(r).expr.terms.len() >= 2);
            }
        }
    }

    #[test]
    fn flow_space_edge_buckets_match_uses_edge() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(a, c, 1);
        let none = std::collections::HashSet::new();
        let paths = vec![k_shortest_paths(&g, a, c, 3, &none)];
        let mut m = Model::new();
        let space = FlowVarSpace::enumerate(&mut m, &paths, g.num_edges());
        assert_eq!(space.flows().len(), paths[0].len());
        for e in g.edges() {
            let scan: Vec<usize> = space
                .flows()
                .iter()
                .enumerate()
                .filter(|(_, f)| paths[f.demand][f.path_index].uses_edge(e.id))
                .map(|(i, _)| i)
                .collect();
            let bucket: Vec<usize> = space.by_edge[e.id.0 as usize]
                .iter()
                .map(|id| id.0)
                .collect();
            assert_eq!(scan, bucket);
        }
    }
}
