//! Plan metrics: the quantities plotted in §7's figures.

use crate::planning::heuristic::Plan;

/// Aggregated metrics of a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Transponder pairs deployed (Figure 12(a)).
    pub transponders: usize,
    /// Spectrum usage `Σ λ·Y`, GHz (Figure 12(b)).
    pub spectrum_ghz: f64,
    /// Fiber-weighted occupied spectrum (Σ over fibers), GHz.
    pub fiber_spectrum_ghz: f64,
    /// Per-wavelength reach gaps `optical reach − path length`, km
    /// (Figure 14(a)).
    pub gaps_km: Vec<i64>,
    /// Per-wavelength link spectral efficiencies, bit/s/Hz (Figure 14(b)).
    pub spectral_efficiency: Vec<f64>,
    /// Total unmet demand, Gbps.
    pub unmet_gbps: u64,
}

/// Computes the report of a plan.
pub fn report(plan: &Plan) -> PlanReport {
    PlanReport {
        transponders: plan.transponder_count(),
        spectrum_ghz: plan.spectrum_usage_ghz(),
        fiber_spectrum_ghz: plan.spectrum.total_occupied_ghz(),
        gaps_km: plan.wavelengths.iter().map(|w| w.reach_gap_km()).collect(),
        spectral_efficiency: plan
            .wavelengths
            .iter()
            .map(|w| w.spectral_efficiency())
            .collect(),
        unmet_gbps: plan.unmet_gbps(),
    }
}

impl PlanReport {
    /// Mean spectral efficiency across wavelengths, bit/s/Hz.
    pub fn mean_spectral_efficiency(&self) -> f64 {
        mean(&self.spectral_efficiency)
    }

    /// Fraction of gaps strictly below `km` (a Figure 14(a) CDF point).
    pub fn gap_fraction_below(&self, km: i64) -> f64 {
        if self.gaps_km.is_empty() {
            return 0.0;
        }
        self.gaps_km.iter().filter(|&&g| g < km).count() as f64 / self.gaps_km.len() as f64
    }
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Empirical CDF of `values` as sorted `(value, cumulative fraction)`
/// points — the format the figure-regeneration binaries print.
pub fn cdf<T: Copy + PartialOrd>(values: &[T]) -> Vec<(T, f64)> {
    let mut sorted: Vec<T> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("CDF input must be orderable"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Percent saved going from `baseline` to `ours`, e.g.
/// `percent_saved(100.0, 43.0) = 57.0` (the paper's headline metric form).
pub fn percent_saved(baseline: f64, ours: f64) -> f64 {
    assert!(baseline > 0.0, "baseline must be positive");
    100.0 * (baseline - ours) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::heuristic::{plan, PlannerConfig};
    use crate::scheme::Scheme;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_topo::graph::Graph;
    use flexwan_topo::ip::IpTopology;

    fn tiny() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 150);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 400);
        (g, ip)
    }

    #[test]
    fn report_totals() {
        let (g, ip) = tiny();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FixedGrid100G, &g, &ip, &cfg);
        let r = report(&p);
        assert_eq!(r.transponders, 4);
        assert_eq!(r.spectrum_ghz, 200.0);
        // One fiber × 4 channels × 50 GHz.
        assert_eq!(r.fiber_spectrum_ghz, 200.0);
        assert_eq!(r.unmet_gbps, 0);
        // 100G-WAN: SE fixed at 2 (Figure 14(b)).
        assert!(r.spectral_efficiency.iter().all(|&s| s == 2.0));
        // Gaps: 3000 − 150.
        assert!(r.gaps_km.iter().all(|&gp| gp == 2850));
        assert_eq!(r.gap_fraction_below(3000), 1.0);
        assert_eq!(r.gap_fraction_below(100), 0.0);
    }

    #[test]
    fn flexwan_gap_is_small() {
        let (g, ip) = tiny();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let r = report(&plan(Scheme::FlexWan, &g, &ip, &cfg));
        // 400 G at 150 km → 75 GHz format with reach 600: gap 450 km,
        // far below 100G-WAN's 2850.
        assert!(r.gaps_km.iter().all(|&gp| gp < 1000));
        assert!(r.mean_spectral_efficiency() > 5.0);
    }

    #[test]
    fn cdf_shape() {
        let c = cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], (1.0, 0.25));
        assert_eq!(c[3], (3.0, 1.0));
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn percent_saved_math() {
        assert_eq!(percent_saved(100.0, 43.0), 57.0);
        assert_eq!(percent_saved(8.0, 8.0), 0.0);
        assert!(percent_saved(10.0, 12.0) < 0.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
