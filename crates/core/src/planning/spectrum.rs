//! Network-wide spectrum bookkeeping (phase 2 of the planning heuristic).
//!
//! One [`SpectrumMask`] per fiber; a wavelength is placed with a joint
//! first-fit across every fiber of its path, which enforces the paper's
//! constraints by construction:
//!
//! * **spectrum conflict (3)** — a pixel is occupied at most once per
//!   fiber, because allocation only succeeds on jointly free runs;
//! * **spectrum consistency (4)** — the same pixel range is occupied on
//!   every fiber of the path;
//! * **grid discipline** — fixed-grid schemes only start channels on grid
//!   boundaries (the `align` parameter).

use flexwan_optical::spectrum::{PixelRange, PixelWidth, SpectrumGrid, SpectrumMask};
use flexwan_topo::graph::EdgeId;
use flexwan_topo::path::Path;

/// Per-fiber spectrum occupancy for a whole optical topology.
#[derive(Debug, Clone)]
pub struct SpectrumState {
    grid: SpectrumGrid,
    masks: Vec<SpectrumMask>,
}

impl SpectrumState {
    /// All-free state for `num_fibers` fibers on `grid`.
    pub fn new(grid: SpectrumGrid, num_fibers: usize) -> Self {
        SpectrumState {
            grid,
            masks: vec![SpectrumMask::new(grid); num_fibers],
        }
    }

    /// The grid in use.
    pub fn grid(&self) -> SpectrumGrid {
        self.grid
    }

    /// The occupancy mask of fiber `e`.
    pub fn mask(&self, e: EdgeId) -> &SpectrumMask {
        &self.masks[e.0 as usize]
    }

    /// Finds the lowest `align`-aligned channel of `width` jointly free on
    /// every fiber of `path`, without allocating it.
    pub fn find(&self, path: &Path, width: PixelWidth, align: u32) -> Option<PixelRange> {
        let masks: Vec<&SpectrumMask> = path
            .edges
            .iter()
            .map(|e| &self.masks[e.0 as usize])
            .collect();
        SpectrumMask::first_fit_joint_aligned(&masks, width, align)
    }

    /// Finds and occupies a channel along `path`; `None` (state unchanged)
    /// when no aligned joint run exists.
    pub fn allocate(&mut self, path: &Path, width: PixelWidth, align: u32) -> Option<PixelRange> {
        let range = self.find(path, width, align)?;
        for e in &path.edges {
            self.masks[e.0 as usize]
                .occupy(&range)
                .expect("jointly free range must occupy cleanly");
        }
        Some(range)
    }

    /// Releases `range` on every fiber of `path` (e.g. when a failed
    /// wavelength's spectrum is reclaimed for restoration).
    pub fn release(&mut self, path: &Path, range: &PixelRange) {
        for e in &path.edges {
            self.masks[e.0 as usize]
                .release(range)
                .expect("release must match a prior allocation");
        }
    }

    /// Occupies an explicit `range` along `path` (used when replaying a
    /// plan into a fresh state); fails if any pixel is taken.
    pub fn occupy_exact(
        &mut self,
        path: &Path,
        range: &PixelRange,
    ) -> Result<(), flexwan_optical::OpticalError> {
        for (i, e) in path.edges.iter().enumerate() {
            if let Err(err) = self.masks[e.0 as usize].occupy(range) {
                // Roll back the fibers already occupied.
                for undone in &path.edges[..i] {
                    self.masks[undone.0 as usize]
                        .release(range)
                        .expect("rollback of fresh occupation");
                }
                return Err(err);
            }
        }
        Ok(())
    }

    /// Finds the lowest `align`-aligned channel of `width` placeable along
    /// `route`, choosing one free parallel fiber per hop; returns the
    /// channel and the chosen fibers without allocating.
    ///
    /// The spectrum-consistency constraint applies to the *chosen* fibers:
    /// the same pixel range must be free on one parallel of every hop.
    pub fn find_route(
        &self,
        route: &flexwan_topo::route::Route,
        width: PixelWidth,
        align: u32,
    ) -> Option<(PixelRange, Vec<EdgeId>)> {
        assert!(align >= 1);
        let pixels = self.grid.pixels();
        let need = u32::from(width.pixels());
        if need > pixels {
            return None;
        }
        let mut start = 0u32;
        while start + need <= pixels {
            let range = PixelRange::new(start, width);
            let mut chosen = Vec::with_capacity(route.hops.len());
            let ok = route.hops.iter().all(|hop| {
                match hop
                    .iter()
                    .find(|e| self.masks[e.0 as usize].is_free(&range))
                {
                    Some(e) => {
                        chosen.push(*e);
                        true
                    }
                    None => false,
                }
            });
            if ok {
                return Some((range, chosen));
            }
            start += align;
        }
        None
    }

    /// [`SpectrumState::find_route`] + allocation on the chosen fibers.
    pub fn allocate_route(
        &mut self,
        route: &flexwan_topo::route::Route,
        width: PixelWidth,
        align: u32,
    ) -> Option<(PixelRange, Vec<EdgeId>)> {
        let (range, chosen) = self.find_route(route, width, align)?;
        for e in &chosen {
            self.masks[e.0 as usize]
                .occupy(&range)
                .expect("found range is free");
        }
        Some((range, chosen))
    }

    /// Total occupied spectrum summed over fibers, GHz — the
    /// fiber-weighted spectrum-usage metric.
    pub fn total_occupied_ghz(&self) -> f64 {
        self.masks.iter().map(SpectrumMask::occupied_ghz).sum()
    }

    /// Highest per-fiber occupancy fraction (the bottleneck fiber).
    pub fn peak_utilization(&self) -> f64 {
        self.masks
            .iter()
            .map(|m| f64::from(m.occupied_pixels()) / f64::from(m.pixels()))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_topo::graph::Graph;

    fn chain() -> (Graph, Path) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let e1 = g.add_edge(a, b, 100);
        let e2 = g.add_edge(b, c, 100);
        let p = Path::new(&g, vec![a, b, c], vec![e1, e2]);
        (g, p)
    }

    fn w(px: u16) -> PixelWidth {
        PixelWidth::new(px)
    }

    #[test]
    fn allocate_is_consistent_across_fibers() {
        let (g, p) = chain();
        let mut s = SpectrumState::new(SpectrumGrid::new(32), g.num_edges());
        let r1 = s.allocate(&p, w(6), 1).unwrap();
        assert_eq!(r1.start, 0);
        // Both fibers show the same occupation.
        assert!(!s.mask(EdgeId(0)).is_free(&r1));
        assert!(!s.mask(EdgeId(1)).is_free(&r1));
        let r2 = s.allocate(&p, w(6), 1).unwrap();
        assert_eq!(r2.start, 6);
    }

    #[test]
    fn allocation_failure_leaves_state_untouched() {
        let (g, p) = chain();
        let mut s = SpectrumState::new(SpectrumGrid::new(8), g.num_edges());
        assert!(s.allocate(&p, w(6), 1).is_some());
        let before = s.total_occupied_ghz();
        assert!(s.allocate(&p, w(6), 1).is_none());
        assert_eq!(s.total_occupied_ghz(), before);
    }

    #[test]
    fn release_round_trip() {
        let (g, p) = chain();
        let mut s = SpectrumState::new(SpectrumGrid::new(16), g.num_edges());
        let r = s.allocate(&p, w(4), 1).unwrap();
        s.release(&p, &r);
        assert_eq!(s.total_occupied_ghz(), 0.0);
        // The freed run is reusable.
        assert_eq!(s.allocate(&p, w(4), 1), Some(r));
    }

    #[test]
    fn aligned_allocation_for_fixed_grid() {
        let (g, p) = chain();
        let mut s = SpectrumState::new(SpectrumGrid::new(24), g.num_edges());
        // A pixel-wise allocation of 3 px leaves the grid misaligned …
        let _ = s.allocate(&p, w(3), 1).unwrap();
        // … and a 6-aligned 6 px channel must start at 6, not 3.
        let r = s.allocate(&p, w(6), 6).unwrap();
        assert_eq!(r.start, 6);
    }

    #[test]
    fn occupy_exact_rolls_back_on_conflict() {
        let (g, p) = chain();
        let mut s = SpectrumState::new(SpectrumGrid::new(16), g.num_edges());
        // Occupy on the second fiber only, via a one-hop path.
        let p2 = Path::new(
            &g,
            vec![g.node_by_name("b").unwrap(), g.node_by_name("c").unwrap()],
            vec![EdgeId(1)],
        );
        let r = PixelRange::new(0, w(4));
        s.occupy_exact(&p2, &r).unwrap();
        // Whole-path exact occupation now conflicts on fiber 1 and must
        // leave fiber 0 untouched.
        assert!(s.occupy_exact(&p, &r).is_err());
        assert!(s.mask(EdgeId(0)).is_free(&r));
    }

    #[test]
    fn route_allocation_spills_to_parallel_fiber() {
        // Two parallel fibers a–b: second wavelength lands on the second
        // pair at the same pixels.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 100);
        g.add_edge(a, b, 102);
        let routes = flexwan_topo::route::k_shortest_routes(&g, a, b, 2, &Default::default());
        assert_eq!(routes.len(), 1, "one node-distinct route");
        let mut s = SpectrumState::new(SpectrumGrid::new(8), g.num_edges());
        let (r1, f1) = s.allocate_route(&routes[0], w(8), 1).unwrap();
        let (r2, f2) = s.allocate_route(&routes[0], w(8), 1).unwrap();
        assert_eq!(r1, r2, "same pixels, different pair");
        assert_ne!(f1, f2);
        assert!(
            s.allocate_route(&routes[0], w(8), 1).is_none(),
            "conduit full"
        );
    }

    #[test]
    fn route_allocation_mixes_pairs_per_hop() {
        // Hop 1 pair A full, hop 2 pair B full: the route still fits by
        // choosing (pair B, pair A).
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let e0 = g.add_edge(a, b, 50);
        let _e1 = g.add_edge(a, b, 52);
        let _e2 = g.add_edge(b, c, 60);
        let e3 = g.add_edge(b, c, 62);
        let mut s = SpectrumState::new(SpectrumGrid::new(8), g.num_edges());
        // Fill e0 and e3 fully.
        for e in [e0, e3] {
            let p = Path::new(&g, vec![g.edge(e).a, g.edge(e).b], vec![e]);
            s.occupy_exact(&p, &PixelRange::new(0, w(8))).unwrap();
        }
        let routes = flexwan_topo::route::k_shortest_routes(&g, a, c, 1, &Default::default());
        let (range, chosen) = s.find_route(&routes[0], w(8), 1).unwrap();
        assert_eq!(range.start, 0);
        assert_eq!(chosen, vec![EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn peak_utilization_tracks_bottleneck() {
        let (g, p) = chain();
        let mut s = SpectrumState::new(SpectrumGrid::new(16), g.num_edges());
        s.allocate(&p, w(8), 1).unwrap();
        assert!((s.peak_utilization() - 0.5).abs() < 1e-12);
    }
}
