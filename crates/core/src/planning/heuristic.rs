//! The scalable network-planning pipeline (DESIGN.md §3.2).
//!
//! Two phases per IP link, most-constrained links first:
//!
//! 1. **format selection** — the exact per-link DP of
//!    [`crate::planning::format_dp`] on the candidate path's length;
//! 2. **spectrum assignment** — joint first-fit across the path's fibers
//!    ([`crate::planning::spectrum`]), falling back across the K candidate
//!    paths and splitting the demand across paths when one path's spectrum
//!    is exhausted.
//!
//! A link whose demand cannot be placed on any candidate path is recorded
//! as unmet — at scale sweeps this is what bounds each scheme's maximum
//! supportable capacity (Figure 12).

use std::collections::HashSet;

use flexwan_optical::spectrum::SpectrumGrid;
use flexwan_topo::cache::RouteCache;
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::{IpLinkId, IpTopology};
use flexwan_topo::ksp::DijkstraScratch;
use flexwan_topo::route::{k_shortest_routes_scratch, Route};

use crate::planning::format_dp::select_formats;
use crate::planning::spectrum::SpectrumState;
use crate::scheme::Scheme;
use crate::wavelength::Wavelength;

/// The order in which IP links get spectrum (ablation: DESIGN.md §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOrder {
    /// Longest shortest-path first, then largest demand (default: the
    /// most-constrained links pick their spectrum while it is plentiful).
    MostConstrainedFirst,
    /// Shortest paths first (the adversarial order).
    ShortestFirst,
    /// The order links appear in the input.
    InputOrder,
    /// A seeded random shuffle.
    Random(u64),
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Number of candidate optical paths per IP link (the K of KSP).
    pub k_paths: usize,
    /// The ε of the objective `Σλ + ε·Σλ·Y`: balance between transponder
    /// count (direct cost) and spectrum usage (indirect cost).
    pub epsilon: f64,
    /// Spectrum dimensioning of every fiber.
    pub grid: SpectrumGrid,
    /// Link processing order.
    pub order: LinkOrder,
    /// Minimum channel-start alignment in pixels (1 = true pixel-wise
    /// WSS; larger values emulate coarser-granularity hardware for the
    /// pixel-granularity ablation). Fixed-grid schemes already align to
    /// their grid; the effective alignment is the maximum of the two.
    pub min_alignment: u32,
    /// Defragmentation budget: when a wavelength finds no contiguous
    /// spectrum, up to this many existing wavelengths may be hitlessly
    /// retuned to make room (0 = off; see [`crate::defrag`]).
    pub defrag_moves: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            k_paths: 3,
            epsilon: 1e-3,
            grid: SpectrumGrid::c_band(),
            order: LinkOrder::MostConstrainedFirst,
            min_alignment: 1,
            defrag_moves: 0,
        }
    }
}

/// The outcome of planning one scheme over one backbone.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The scheme planned.
    pub scheme: Scheme,
    /// Every provisioned wavelength.
    pub wavelengths: Vec<Wavelength>,
    /// Links whose demand could not be fully met, with the shortfall in
    /// Gbps.
    pub unmet: Vec<(IpLinkId, u64)>,
    /// Final per-fiber spectrum occupancy.
    pub spectrum: SpectrumState,
    /// The candidate routes computed per link (indexed by `IpLinkId.0`),
    /// kept for restoration and reporting.
    pub candidate_routes: Vec<Vec<Route>>,
}

impl Plan {
    /// Whether every demand was fully provisioned.
    pub fn is_feasible(&self) -> bool {
        self.unmet.is_empty()
    }

    /// Number of transponder pairs deployed (one per wavelength).
    pub fn transponder_count(&self) -> usize {
        self.wavelengths.len()
    }

    /// The paper's spectrum-usage metric `Σ_e Σ_k Σ_j λ^{e,k}_j · Y_j`,
    /// GHz.
    pub fn spectrum_usage_ghz(&self) -> f64 {
        self.wavelengths
            .iter()
            .map(|w| w.format.spacing.ghz())
            .sum()
    }

    /// Capacity provisioned for `link`, Gbps.
    pub fn provisioned_gbps(&self, link: IpLinkId) -> u64 {
        self.wavelengths
            .iter()
            .filter(|w| w.link == link)
            .map(|w| u64::from(w.format.data_rate_gbps))
            .sum()
    }

    /// The wavelengths provisioned for `link`.
    pub fn wavelengths_of(&self, link: IpLinkId) -> impl Iterator<Item = &Wavelength> {
        self.wavelengths.iter().filter(move |w| w.link == link)
    }

    /// Total unmet demand, Gbps.
    pub fn unmet_gbps(&self) -> u64 {
        self.unmet.iter().map(|&(_, g)| g).sum()
    }
}

/// Plans `scheme` over the backbone: the scalable counterpart of
/// Algorithm 1 (validated against the exact MIP in tests).
pub fn plan(scheme: Scheme, optical: &Graph, ip: &IpTopology, cfg: &PlannerConfig) -> Plan {
    // Candidate node-distinct routes per link (parallel fibers become
    // per-hop alternatives; see `flexwan_topo::route`), enumerated over
    // one shared Dijkstra scratch arena.
    let none = HashSet::new();
    let mut scratch = DijkstraScratch::new();
    let candidate_routes: Vec<Vec<Route>> = ip
        .links()
        .iter()
        .map(|l| k_shortest_routes_scratch(optical, l.src, l.dst, cfg.k_paths, &none, &mut scratch))
        .collect();
    plan_with_routes(scheme, optical, ip, cfg, candidate_routes)
}

/// [`plan`] with the candidate routes served by `cache`: routes depend
/// only on the graph, endpoints and `k` — not on the scheme or the
/// demand scale — so scheme/scale sweeps over one backbone enumerate
/// each link's routes once. Output is bit-identical to [`plan`].
pub fn plan_cached(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    cache: &RouteCache,
) -> Plan {
    let none = HashSet::new();
    let candidate_routes: Vec<Vec<Route>> = ip
        .links()
        .iter()
        .map(|l| (*cache.routes(optical, l.src, l.dst, cfg.k_paths, &none)).clone())
        .collect();
    plan_with_routes(scheme, optical, ip, cfg, candidate_routes)
}

/// The planning pipeline proper, over pre-enumerated candidate routes
/// (`candidate_routes[i]` serves `ip.links()[i]`).
fn plan_with_routes(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    candidate_routes: Vec<Vec<Route>>,
) -> Plan {
    assert!(cfg.k_paths >= 1, "need at least one candidate path");
    assert!(cfg.min_alignment >= 1, "alignment is at least one pixel");
    let model = scheme.transponder();
    let align = scheme.alignment_pixels().max(cfg.min_alignment);

    let mut order: Vec<usize> = (0..ip.num_links()).collect();
    match cfg.order {
        LinkOrder::MostConstrainedFirst => order.sort_by_key(|&i| {
            let len = candidate_routes[i]
                .first()
                .map_or(u32::MAX, |p| p.length_km);
            (
                std::cmp::Reverse(len),
                std::cmp::Reverse(ip.links()[i].demand_gbps),
                i,
            )
        }),
        LinkOrder::ShortestFirst => order.sort_by_key(|&i| {
            let len = candidate_routes[i]
                .first()
                .map_or(u32::MAX, |p| p.length_km);
            (len, ip.links()[i].demand_gbps, i)
        }),
        LinkOrder::InputOrder => {}
        LinkOrder::Random(seed) => {
            let mut rng = flexwan_util::rng::ChaCha8Rng::seed_from_u64(seed);
            rng.shuffle(&mut order);
        }
    }

    let mut spectrum = SpectrumState::new(cfg.grid, optical.num_edges());
    let mut wavelengths = Vec::new();
    let mut unmet = Vec::new();

    for &i in &order {
        let link = &ip.links()[i];
        let mut remaining = link.demand_gbps;
        for (k, route) in candidate_routes[i].iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let Some(formats) = select_formats(model, remaining, route.length_km, cfg.epsilon)
            else {
                continue; // no format reaches over this route
            };
            for format in formats {
                if remaining == 0 {
                    break;
                }
                let placed = spectrum
                    .allocate_route(route, format.spacing, align)
                    .or_else(|| {
                        if cfg.defrag_moves == 0 {
                            return None;
                        }
                        crate::defrag::make_room(
                            &mut spectrum,
                            &mut wavelengths,
                            route,
                            format.spacing,
                            align,
                            cfg.defrag_moves,
                            optical,
                        )
                        .map(|out| (out.channel, out.chosen_fibers))
                    });
                if let Some((channel, chosen)) = placed {
                    remaining = remaining.saturating_sub(u64::from(format.data_rate_gbps));
                    wavelengths.push(Wavelength {
                        link: link.id,
                        path_index: k,
                        path: route.realize(optical, &chosen),
                        format,
                        channel,
                    });
                }
                // On failure: try the remaining (narrower) formats of the
                // multiset, then the next candidate route.
            }
        }
        if remaining > 0 {
            unmet.push((link.id, remaining));
        }
    }

    Plan {
        scheme,
        wavelengths,
        unmet,
        spectrum,
        candidate_routes,
    }
}

/// Largest demand multiplier in `1..=max_scale` at which `scheme` still
/// fully provisions the (scaled) demand set; 0 when even scale 1 is
/// infeasible. The Figure 12 "maximum supported capacity scale".
pub fn max_feasible_scale(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    max_scale: u64,
) -> u64 {
    // One cache across the scale ladder: scaling demands leaves the
    // links' endpoints (and hence their candidate routes) unchanged.
    max_feasible_scale_cached(scheme, optical, ip, cfg, max_scale, &RouteCache::new())
}

/// [`max_feasible_scale`] sharing `cache` with the caller's wider sweep.
pub fn max_feasible_scale_cached(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    max_scale: u64,
    cache: &RouteCache,
) -> u64 {
    let mut best = 0;
    for s in 1..=max_scale {
        if plan_cached(scheme, optical, &ip.scaled(s), cfg, cache).is_feasible() {
            best = s;
        } else {
            break; // feasibility is monotone in the scale
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::PixelRange;

    /// Two-node backbone with two parallel fiber routes.
    fn two_node() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 200);
        g.add_edge(a, b, 240);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 800);
        (g, ip)
    }

    /// Triangle backbone: direct A–B fiber plus a detour via C.
    fn triangle() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 150);
        g.add_edge(a, c, 400);
        g.add_edge(c, b, 500);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 600);
        (g, ip)
    }

    fn small_cfg(pixels: u32) -> PlannerConfig {
        PlannerConfig {
            grid: SpectrumGrid::new(pixels),
            ..Default::default()
        }
    }

    #[test]
    fn flexwan_one_wavelength_for_800g_short() {
        let (g, ip) = two_node();
        let p = plan(Scheme::FlexWan, &g, &ip, &small_cfg(96));
        assert!(p.is_feasible());
        assert_eq!(p.transponder_count(), 1, "800G at 200 km is one SVT");
        assert_eq!(p.wavelengths[0].format.data_rate_gbps, 800);
        assert_eq!(p.provisioned_gbps(IpLinkId(0)), 800);
    }

    #[test]
    fn radwan_needs_three_wavelengths() {
        let (g, ip) = two_node();
        let p = plan(Scheme::Radwan, &g, &ip, &small_cfg(96));
        assert!(p.is_feasible());
        assert_eq!(p.transponder_count(), 3); // 300+300+200
        assert_eq!(p.spectrum_usage_ghz(), 225.0);
    }

    #[test]
    fn fixed_needs_eight() {
        let (g, ip) = two_node();
        let p = plan(Scheme::FixedGrid100G, &g, &ip, &small_cfg(96));
        assert!(p.is_feasible());
        assert_eq!(p.transponder_count(), 8);
        assert_eq!(p.spectrum_usage_ghz(), 400.0);
    }

    #[test]
    fn channels_never_overlap_on_a_fiber() {
        let (g, ip) = two_node();
        for scheme in Scheme::ALL {
            let p = plan(scheme, &g, &ip, &small_cfg(96));
            // Reconstruct per-fiber occupancy and check pairwise overlap.
            for e in g.edges() {
                let chans: Vec<PixelRange> = p
                    .wavelengths
                    .iter()
                    .filter(|w| w.path.uses_edge(e.id))
                    .map(|w| w.channel)
                    .collect();
                for (i, a) in chans.iter().enumerate() {
                    for b in &chans[i + 1..] {
                        assert!(!a.overlaps(b), "{scheme}: overlap {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn reach_constraint_always_satisfied() {
        let (g, ip) = triangle();
        for scheme in Scheme::ALL {
            let p = plan(scheme, &g, &ip, &small_cfg(96));
            for w in &p.wavelengths {
                assert!(
                    w.format.reach_km >= w.path.length_km,
                    "{scheme}: {w} violates reach"
                );
            }
        }
    }

    #[test]
    fn fixed_grid_alignment_respected() {
        let (g, ip) = two_node();
        let p = plan(Scheme::Radwan, &g, &ip, &small_cfg(96));
        for w in &p.wavelengths {
            assert_eq!(w.channel.start % 6, 0, "RADWAN channel off the 75 GHz grid");
            assert_eq!(w.channel.width.pixels(), 6);
        }
        let p = plan(Scheme::FixedGrid100G, &g, &ip, &small_cfg(96));
        for w in &p.wavelengths {
            assert_eq!(w.channel.start % 4, 0);
        }
    }

    #[test]
    fn demand_splits_across_parallel_fibers_when_spectrum_tight() {
        // Grid of 11 px: both 800 G wavelengths need 137.5 GHz = 11 px
        // (the route length is conservatively the 240 km parallel), so
        // each must occupy its own fiber pair of the a–b conduit.
        let (g, ip) = two_node();
        let mut ip2 = IpTopology::new();
        ip2.add_link(
            flexwan_topo::graph::NodeId(0),
            flexwan_topo::graph::NodeId(1),
            1600,
        );
        let _ = ip;
        let p = plan(Scheme::FlexWan, &g, &ip2, &small_cfg(11));
        assert!(p.is_feasible(), "unmet: {:?}", p.unmet);
        assert_eq!(p.transponder_count(), 2);
        let fibers_used: std::collections::HashSet<_> =
            p.wavelengths.iter().map(|w| w.path.edges[0]).collect();
        assert_eq!(
            fibers_used.len(),
            2,
            "demand must split across both fiber pairs"
        );
    }

    #[test]
    fn infeasible_when_spectrum_exhausted() {
        let (g, ip) = two_node(); // 800 G demand
                                  // 4 pixels = 50 GHz per fiber: no SVT format for 800 G fits.
        let p = plan(Scheme::FlexWan, &g, &ip, &small_cfg(4));
        assert!(!p.is_feasible());
        assert!(p.unmet_gbps() > 0);
    }

    #[test]
    fn unreachable_demand_reported_unmet() {
        // 6000 km path: nothing reaches.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 6000);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 100);
        for scheme in Scheme::ALL {
            let p = plan(scheme, &g, &ip, &small_cfg(96));
            assert!(!p.is_feasible(), "{scheme} should fail at 6000 km");
            assert_eq!(p.unmet_gbps(), 100);
        }
    }

    #[test]
    fn max_scale_ordering_flexwan_wins() {
        // On a tight grid FlexWAN must support a strictly larger scale
        // than RADWAN, which beats 100G-WAN (Figure 12's 8×/5×/3×
        // ordering).
        let (g, ip) = two_node();
        let cfg = small_cfg(48); // 600 GHz per fiber
        let flex = max_feasible_scale(Scheme::FlexWan, &g, &ip, &cfg, 12);
        let rad = max_feasible_scale(Scheme::Radwan, &g, &ip, &cfg, 12);
        let fixed = max_feasible_scale(Scheme::FixedGrid100G, &g, &ip, &cfg, 12);
        assert!(flex > rad, "flex {flex} ≤ radwan {rad}");
        assert!(rad >= fixed, "radwan {rad} < fixed {fixed}");
    }

    #[test]
    fn detour_used_when_direct_path_lacks_reach() {
        // Direct fiber 150 km is fine; test the reverse: a link whose
        // direct path is too long for the chosen format falls back to the
        // detour… here we instead verify the planner uses the detour when
        // the direct fiber is spectrally full.
        let (g, ip) = triangle();
        let cfg = small_cfg(10);
        // 600 G at 150 km: SVT picks 87.5 GHz (7 px). Two links of 600 G:
        // second cannot fit 7 px twice in 10 px → detour (900 km) needs
        // 150 GHz = 12 px > 10 px → unmet. With 20 px both fit directly.
        let mut ip2 = IpTopology::new();
        ip2.add_link(
            flexwan_topo::graph::NodeId(0),
            flexwan_topo::graph::NodeId(1),
            600,
        );
        ip2.add_link(
            flexwan_topo::graph::NodeId(0),
            flexwan_topo::graph::NodeId(1),
            600,
        );
        let _ = ip;
        let p10 = plan(Scheme::FlexWan, &g, &ip2, &cfg);
        assert!(!p10.is_feasible());
        let p20 = plan(Scheme::FlexWan, &g, &ip2, &small_cfg(20));
        assert!(p20.is_feasible());
    }

    #[test]
    fn deterministic() {
        let (g, ip) = triangle();
        let a = plan(Scheme::FlexWan, &g, &ip, &small_cfg(64));
        let b = plan(Scheme::FlexWan, &g, &ip, &small_cfg(64));
        assert_eq!(a.wavelengths, b.wavelengths);
    }

    #[test]
    fn cached_plan_is_bit_identical_across_schemes() {
        let (g, ip) = triangle();
        let cache = RouteCache::new();
        for scheme in Scheme::ALL {
            let cached = plan_cached(scheme, &g, &ip, &small_cfg(64), &cache);
            let plain = plan(scheme, &g, &ip, &small_cfg(64));
            assert_eq!(cached.wavelengths, plain.wavelengths);
            assert_eq!(cached.unmet, plain.unmet);
            assert_eq!(cached.candidate_routes, plain.candidate_routes);
        }
        // One link, one key: scheme 1 misses, schemes 2 and 3 hit.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
    }
}
