//! Network planning (§5, Algorithm 1): provision WAN capacity at minimum
//! hardware cost.
//!
//! Two interchangeable solvers:
//! * [`mip`] — the paper's exact formulation on `flexwan-solver`, used on
//!   small instances to validate correctness;
//! * [`heuristic`] — the scalable two-phase decomposition ([`format_dp`]
//!   + [`spectrum`]) used on full evaluation topologies.

pub mod format_dp;
pub mod heuristic;
pub mod incremental;
pub mod mip;
pub mod report;
pub mod spectrum;

pub use heuristic::{
    max_feasible_scale, max_feasible_scale_cached, plan, plan_cached, LinkOrder, Plan,
    PlannerConfig,
};
pub use incremental::{plan_incremental, plan_incremental_cached};
pub use mip::{solve_exact, ExactPlan, MutatedRestoration, PlanModel};
pub use report::{cdf, mean, percent_saved, report, PlanReport};
pub use spectrum::SpectrumState;
