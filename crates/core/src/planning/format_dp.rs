//! Exact per-link transponder-format selection (phase 1 of the planning
//! heuristic; DESIGN.md §3.2).
//!
//! For one IP link on one candidate path, choose a multiset of transponder
//! formats whose rates sum to at least the demand, among formats whose
//! reach covers the path length, minimizing the paper's per-link objective
//! slice `Σ_j (1 + ε·Y_j)·λ_j`.
//!
//! Demands and data rates are multiples of 100 Gbps, so a dynamic program
//! over residual demand units solves this *exactly* (it is an unbounded
//! knapsack-cover). Tie-breaks are deterministic: lower cost, then fewer
//! transponders, then narrower total spectrum.

use flexwan_optical::format::TransponderFormat;
use flexwan_optical::transponder::TransponderModel;

/// Cost of a format under the paper's objective: `1 + ε·Y_j` with `Y_j`
/// the channel spacing in GHz.
fn format_cost(f: &TransponderFormat, epsilon: f64) -> f64 {
    1.0 + epsilon * f.spacing.ghz()
}

/// The exact optimal format multiset covering `demand_gbps` over a path of
/// `distance_km`, or `None` when no format reaches that far.
///
/// Returned formats are sorted widest-spacing first (the order the
/// spectrum assigner wants to place them in).
pub fn select_formats(
    model: &dyn TransponderModel,
    demand_gbps: u64,
    distance_km: u32,
    epsilon: f64,
) -> Option<Vec<TransponderFormat>> {
    assert!(demand_gbps > 0, "demand must be positive");
    assert!(
        demand_gbps.is_multiple_of(100),
        "demands are multiples of 100 Gbps"
    );
    let candidates = reachable_formats(model, distance_km);
    if candidates.is_empty() {
        return None;
    }
    let units = (demand_gbps / 100) as usize;

    // dp[t] = cheapest way to cover ≥ t demand units; dp[0] trivial.
    // Tie-break order: cost, transponder count, total spectrum, total
    // rate (prefer not overshooting the demand — matters to restoration,
    // whose constraint (7) caps revived capacity at what was lost).
    #[derive(Clone, Copy)]
    struct Cell {
        cost: f64,
        count: u32,
        spectrum_px: u32,
        rate_units: u32,
        choice: usize,
    }
    impl Cell {
        fn better_than(&self, other: &Cell) -> bool {
            if self.cost < other.cost - 1e-12 {
                return true;
            }
            if (self.cost - other.cost).abs() > 1e-12 {
                return false;
            }
            (self.count, self.spectrum_px, self.rate_units)
                < (other.count, other.spectrum_px, other.rate_units)
        }
    }
    let mut dp: Vec<Option<Cell>> = vec![None; units + 1];
    dp[0] = Some(Cell {
        cost: 0.0,
        count: 0,
        spectrum_px: 0,
        rate_units: 0,
        choice: usize::MAX,
    });
    for t in 1..=units {
        let mut best: Option<Cell> = None;
        for (idx, f) in candidates.iter().enumerate() {
            let rate_units = f.data_rate_gbps / 100;
            let prev_t = t.saturating_sub(rate_units as usize);
            let Some(prev) = dp[prev_t] else { continue };
            let cand = Cell {
                cost: prev.cost + format_cost(f, epsilon),
                count: prev.count + 1,
                spectrum_px: prev.spectrum_px + u32::from(f.spacing.pixels()),
                rate_units: prev.rate_units + rate_units,
                choice: idx,
            };
            if best.is_none_or(|b| cand.better_than(&b)) {
                best = Some(cand);
            }
        }
        dp[t] = best;
    }

    // Reconstruct.
    let mut out = Vec::new();
    let mut t = units;
    while t > 0 {
        let cell = dp[t].expect("dp[t] reachable when any format exists");
        let f = candidates[cell.choice];
        out.push(f);
        t = t.saturating_sub((f.data_rate_gbps / 100) as usize);
    }
    out.sort_by_key(|f| std::cmp::Reverse((f.spacing, f.data_rate_gbps)));
    Some(out)
}

/// The formats of `model` whose reach covers `distance_km`, dominated
/// entries removed: a format is dominated when another carries at least
/// its rate over *strictly narrower* spacing. Equal-spacing higher-rate
/// formats are kept so the DP can avoid overshooting demands (its final
/// tie-break).
pub fn reachable_formats(model: &dyn TransponderModel, distance_km: u32) -> Vec<TransponderFormat> {
    let all = model.formats_reaching(distance_km);
    let mut keep: Vec<TransponderFormat> = Vec::with_capacity(all.len());
    for f in &all {
        let dominated = all
            .iter()
            .any(|g| g.data_rate_gbps >= f.data_rate_gbps && g.spacing < f.spacing);
        if !dominated {
            keep.push(*f);
        }
    }
    keep.sort_by_key(|f| (f.data_rate_gbps, f.spacing));
    keep
}

/// Total cost of a format multiset under the paper's objective.
pub fn multiset_cost(formats: &[TransponderFormat], epsilon: f64) -> f64 {
    formats.iter().map(|f| format_cost(f, epsilon)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::transponder::{Bvt, FixedGrid100G, Svt};

    const EPS: f64 = 1e-3;

    #[test]
    fn fig3a_transponder_pairs_for_800g() {
        // Figure 3(a): 800 Gbps at <300 km needs 1 SVT pair vs 3 BVT pairs.
        let svt = select_formats(&Svt, 800, 250, EPS).unwrap();
        assert_eq!(svt.len(), 1);
        assert_eq!(svt[0].data_rate_gbps, 800);
        let bvt = select_formats(&Bvt, 800, 250, EPS).unwrap();
        assert_eq!(bvt.len(), 3); // 300+300+200
                                  // And 8 pairs of fixed 100G transponders.
        let fixed = select_formats(&FixedGrid100G, 800, 250, EPS).unwrap();
        assert_eq!(fixed.len(), 8);
    }

    #[test]
    fn fig3a_long_path_1800km() {
        // Figure 3(a) at 1800 km: SVT uses half the transponders of BVT.
        // BVT: only 200 G (2000 km) and 100 G (5000 km) reach → 4 × 200 G.
        let bvt = select_formats(&Bvt, 800, 1800, EPS).unwrap();
        assert_eq!(bvt.len(), 4);
        // SVT: 400 G reaches 1800 km at 137.5 GHz → 2 transponders.
        let svt = select_formats(&Svt, 800, 1800, EPS).unwrap();
        assert_eq!(svt.len(), 2);
        assert!(svt.iter().all(|f| f.data_rate_gbps == 400));
    }

    #[test]
    fn fig3b_spectrum_for_800g_short() {
        // Figure 3(b): at <300 km, 3 BVT pairs occupy 225 GHz while one
        // SVT pair occupies at most 150 GHz.
        let bvt = select_formats(&Bvt, 800, 250, EPS).unwrap();
        let bvt_ghz: f64 = bvt.iter().map(|f| f.spacing.ghz()).sum();
        assert_eq!(bvt_ghz, 225.0);
        let svt = select_formats(&Svt, 800, 250, EPS).unwrap();
        let svt_ghz: f64 = svt.iter().map(|f| f.spacing.ghz()).sum();
        assert!(svt_ghz <= 150.0, "SVT uses {svt_ghz} GHz");
    }

    #[test]
    fn epsilon_trades_count_for_spectrum() {
        // 600 G at 350 km: SVT can use one 600 G @ 87.5 GHz... (reach 300,
        // too short at 350) → at 100 GHz (reach 400). With large ε the DP
        // may prefer narrower spectrum with more transponders
        // (2×300G@75GHz = 150 GHz vs 1×600G@100GHz = 100 GHz — here the
        // single 600 G also wins on spectrum, so use a case with a real
        // trade-off: 700 G at 180 km).
        // 1×700G@100GHz (reach 200) = 100 GHz, cost 1+100ε.
        // vs 7×100G@50GHz = 350 GHz, cost 7+350ε — count dominates for all
        // sane ε; check the DP picks the single transponder.
        let res = select_formats(&Svt, 700, 180, EPS).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].data_rate_gbps, 700);
        assert_eq!(res[0].spacing.ghz(), 100.0);
    }

    #[test]
    fn prefers_narrow_spacing_among_equal_count() {
        // 400 G at 500 km: both 75 GHz (reach 600) and 150 GHz (reach
        // 1900) work with one transponder; ε must pick 75 GHz.
        let res = select_formats(&Svt, 400, 500, EPS).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].spacing.ghz(), 75.0);
    }

    #[test]
    fn overshoot_when_cheaper() {
        // 300 G demand at 200 km: one 300 G @ 75 GHz beats 3 × 100 G; also
        // beats overshooting with 400 G? 400 G @ 75 GHz costs the same
        // count but same spacing — DP must not pick a higher rate than
        // needed when equal cost (tie-break on spectrum is equal here; the
        // cheaper *cost* is equal too). Accept either 300 or 400 at 75 GHz
        // but exactly one transponder.
        let res = select_formats(&Svt, 300, 200, EPS).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].spacing.ghz(), 75.0);
        assert!(res[0].data_rate_gbps >= 300);
    }

    #[test]
    fn none_when_out_of_reach() {
        assert!(select_formats(&Bvt, 400, 5001, EPS).is_none());
        assert!(select_formats(&FixedGrid100G, 100, 3001, EPS).is_none());
        assert!(select_formats(&Svt, 100, 5001, EPS).is_none());
    }

    #[test]
    fn fixed_100g_count_is_demand_over_100() {
        for demand in [100u64, 400, 1500, 2000] {
            let res = select_formats(&FixedGrid100G, demand, 1000, EPS).unwrap();
            assert_eq!(res.len(), (demand / 100) as usize);
        }
    }

    #[test]
    fn dominated_formats_pruned() {
        // At 150 km every SVT format reaches; the frontier keeps exactly
        // one format per data rate (the narrowest spacing).
        let frontier = reachable_formats(&Svt, 150);
        let mut rates: Vec<u32> = frontier.iter().map(|f| f.data_rate_gbps).collect();
        rates.dedup();
        assert_eq!(rates.len(), frontier.len(), "one entry per rate");
        assert_eq!(rates, vec![100, 200, 300, 400, 500, 600, 700, 800]);
        // And each is the narrowest spacing carrying that rate at 150 km.
        let f800 = frontier.iter().find(|f| f.data_rate_gbps == 800).unwrap();
        assert_eq!(f800.spacing.ghz(), 112.5);
    }

    #[test]
    fn multiset_cost_matches_objective() {
        let fs = select_formats(&Bvt, 600, 1000, EPS).unwrap();
        let cost = multiset_cost(&fs, EPS);
        assert!((cost - (2.0 + EPS * 150.0)).abs() < 1e-9); // 2×300G@75GHz
    }

    #[test]
    fn results_sorted_widest_first() {
        let fs = select_formats(&Svt, 1100, 550, EPS).unwrap();
        for w in fs.windows(2) {
            assert!(w[0].spacing >= w[1].spacing);
        }
    }
}
