//! Incremental planning: grow capacity without touching live traffic.
//!
//! Production backbones do not get re-planned from scratch (§4.4: the
//! planning module "serves as a long-term strategy and is operated
//! infrequently"; §9: evolution must be smooth). When demands grow or new
//! IP links appear, the operator wants *additional* wavelengths placed
//! around the live ones — zero retunes, zero traffic hits (or, with a
//! defrag budget, bounded hitless retunes).
//!
//! [`plan_incremental`] does exactly that: it replays the base plan's
//! spectrum occupation, computes each link's provisioning deficit against
//! the new demand set, and runs the normal format-selection + spectrum
//! assignment machinery for the deficits only. The `ablation_incremental`
//! experiment quantifies the cost of never moving anything, against
//! clairvoyant from-scratch re-planning.

use flexwan_topo::cache::RouteCache;
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;
use flexwan_topo::ksp::DijkstraScratch;
use flexwan_topo::route::{k_shortest_routes_scratch, Route};

use crate::planning::format_dp::select_formats;
use crate::planning::heuristic::{Plan, PlannerConfig};
use crate::planning::spectrum::SpectrumState;
use crate::scheme::Scheme;
use crate::wavelength::Wavelength;

/// Extends `base` to cover `ip` (the *full* demand set: existing links,
/// possibly with grown demands, plus any new links appended). Existing
/// wavelengths keep their channels; only deficits are provisioned.
///
/// The returned plan contains the base wavelengths (verbatim, possibly
/// retuned when `cfg.defrag_moves > 0`) plus the newly added ones.
pub fn plan_incremental(
    base: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
) -> Plan {
    let none = std::collections::HashSet::new();
    let mut scratch = DijkstraScratch::new();
    let candidate_routes: Vec<Vec<Route>> = ip
        .links()
        .iter()
        .map(|l| k_shortest_routes_scratch(optical, l.src, l.dst, cfg.k_paths, &none, &mut scratch))
        .collect();
    plan_incremental_with_routes(base, optical, ip, cfg, candidate_routes)
}

/// [`plan_incremental`] with candidate routes served by `cache` (shared
/// with any other planner working the same backbone). Output is
/// bit-identical to [`plan_incremental`].
pub fn plan_incremental_cached(
    base: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    cache: &RouteCache,
) -> Plan {
    let none = std::collections::HashSet::new();
    let candidate_routes: Vec<Vec<Route>> = ip
        .links()
        .iter()
        .map(|l| (*cache.routes(optical, l.src, l.dst, cfg.k_paths, &none)).clone())
        .collect();
    plan_incremental_with_routes(base, optical, ip, cfg, candidate_routes)
}

fn plan_incremental_with_routes(
    base: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    candidate_routes: Vec<Vec<Route>>,
) -> Plan {
    let scheme: Scheme = base.scheme;
    let model = scheme.transponder();
    let align = scheme.alignment_pixels().max(cfg.min_alignment);

    // Replay the live spectrum.
    let mut spectrum = SpectrumState::new(cfg.grid, optical.num_edges());
    let mut wavelengths = base.wavelengths.clone();
    for w in &wavelengths {
        spectrum
            .occupy_exact(&w.path, &w.channel)
            .expect("base plan is conflict-free");
    }

    // Deficits, most-constrained first (same discipline as fresh planning).
    let mut order: Vec<usize> = (0..ip.num_links()).collect();
    order.sort_by_key(|&i| {
        let len = candidate_routes[i]
            .first()
            .map_or(u32::MAX, |r| r.length_km);
        (
            std::cmp::Reverse(len),
            std::cmp::Reverse(ip.links()[i].demand_gbps),
            i,
        )
    });

    let mut unmet = Vec::new();
    for &i in &order {
        let link = &ip.links()[i];
        let provisioned: u64 = wavelengths
            .iter()
            .filter(|w| w.link == link.id)
            .map(|w| u64::from(w.format.data_rate_gbps))
            .sum();
        let mut remaining = link.demand_gbps.saturating_sub(provisioned);
        if remaining == 0 {
            continue;
        }
        for (k, route) in candidate_routes[i].iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let Some(formats) = select_formats(model, remaining, route.length_km, cfg.epsilon)
            else {
                continue;
            };
            for format in formats {
                if remaining == 0 {
                    break;
                }
                let placed = spectrum
                    .allocate_route(route, format.spacing, align)
                    .or_else(|| {
                        if cfg.defrag_moves == 0 {
                            return None;
                        }
                        crate::defrag::make_room(
                            &mut spectrum,
                            &mut wavelengths,
                            route,
                            format.spacing,
                            align,
                            cfg.defrag_moves,
                            optical,
                        )
                        .map(|out| (out.channel, out.chosen_fibers))
                    });
                if let Some((channel, chosen)) = placed {
                    remaining = remaining.saturating_sub(u64::from(format.data_rate_gbps));
                    wavelengths.push(Wavelength {
                        link: link.id,
                        path_index: k,
                        path: route.realize(optical, &chosen),
                        format,
                        channel,
                    });
                }
            }
        }
        if remaining > 0 {
            unmet.push((link.id, remaining));
        }
    }

    Plan {
        scheme,
        wavelengths,
        unmet,
        spectrum,
        candidate_routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::heuristic::plan;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_topo::graph::NodeId;

    fn backbone() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 150);
        g.add_edge(b, c, 200);
        g.add_edge(a, c, 500);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 400);
        ip.add_link(b, c, 300);
        (g, ip)
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        }
    }

    #[test]
    fn growth_adds_without_disturbing() {
        let (g, ip) = backbone();
        let base = plan(Scheme::FlexWan, &g, &ip, &cfg());
        assert!(base.is_feasible());
        let before: Vec<_> = base.wavelengths.clone();

        // Demands double and a new link appears.
        let mut grown = ip.scaled(2);
        grown.add_link(NodeId(0), NodeId(2), 600);
        let inc = plan_incremental(&base, &g, &grown, &cfg());
        assert!(inc.is_feasible(), "unmet {:?}", inc.unmet);
        // Every original wavelength survives untouched.
        for (i, w) in before.iter().enumerate() {
            assert_eq!(&inc.wavelengths[i], w, "wavelength {i} disturbed");
        }
        // And the new demands are fully covered.
        for l in grown.links() {
            assert!(
                inc.provisioned_gbps(l.id) >= l.demand_gbps,
                "link {:?} under-provisioned",
                l.id
            );
        }
    }

    #[test]
    fn cached_incremental_matches_plain() {
        let (g, ip) = backbone();
        let base = plan(Scheme::FlexWan, &g, &ip, &cfg());
        let grown = ip.scaled(2);
        let cache = RouteCache::new();
        let plain = plan_incremental(&base, &g, &grown, &cfg());
        let cached = plan_incremental_cached(&base, &g, &grown, &cfg(), &cache);
        assert_eq!(plain.wavelengths, cached.wavelengths);
        assert_eq!(plain.unmet, cached.unmet);
        assert_eq!(cache.misses() as usize, grown.num_links());
    }

    #[test]
    fn no_deficit_is_a_noop() {
        let (g, ip) = backbone();
        let base = plan(Scheme::FlexWan, &g, &ip, &cfg());
        let inc = plan_incremental(&base, &g, &ip, &cfg());
        assert_eq!(inc.wavelengths, base.wavelengths);
        assert!(inc.is_feasible());
    }

    #[test]
    fn incremental_reports_unmet_when_full() {
        let (g, ip) = backbone();
        let tight = PlannerConfig {
            grid: SpectrumGrid::new(8),
            ..Default::default()
        };
        let base = plan(Scheme::FlexWan, &g, &ip, &tight);
        // Base fits (one 75 GHz channel per fiber); doubling cannot.
        assert!(base.is_feasible());
        let inc = plan_incremental(&base, &g, &ip.scaled(3), &tight);
        assert!(!inc.is_feasible());
        // Base wavelengths still untouched even in failure.
        for (i, w) in base.wavelengths.iter().enumerate() {
            assert_eq!(&inc.wavelengths[i], w);
        }
    }

    #[test]
    fn defrag_budget_enables_growth_with_bounded_retunes() {
        // Fragment a single fiber via incremental arrivals, then grow a
        // demand that only fits after a retune.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 100);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 100); // 100 G → 50 GHz = 4 px
        let tight = PlannerConfig {
            grid: SpectrumGrid::new(20),
            ..Default::default()
        };
        let base = plan(Scheme::FlexWan, &g, &ip, &tight);
        // Manually fragment: the base wavelength sits at [0,4); occupy a
        // decoy in the middle by planning a second link, then remove it…
        // simpler: grow to a demand that needs 16 contiguous px while a
        // 4-px wavelength sits at the band start — fits without moves
        // (free [4,20)), so shrink the grid story: grow twice so the
        // second growth needs defrag.
        let mut grown = IpTopology::new();
        grown.add_link(a, b, 100);
        let inc1 = plan_incremental(&base, &g, &grown, &tight);
        assert!(inc1.is_feasible());
        let _ = inc1;
        let without = PlannerConfig {
            defrag_moves: 0,
            ..tight.clone()
        };
        let with = PlannerConfig {
            defrag_moves: 2,
            ..tight
        };
        // Fragmented layout: place wavelengths at [0,4) and force the next
        // allocation to need a 16-px run.
        let mut frag_ip = IpTopology::new();
        frag_ip.add_link(a, b, 100);
        let frag = plan(Scheme::FlexWan, &g, &frag_ip, &with);
        // Retune-free growth to 800 G (112.5 GHz = 9 px at 100 km…
        // actually 800 G @ 112.5 GHz reaches 150 km): free run after the
        // base 4-px channel is [4,20) = 16 px ≥ 9 px → fits without moves.
        // To force fragmentation, pin the base wavelength mid-band first.
        let mut pinned = frag.clone();
        let w0 = &mut pinned.wavelengths[0];
        pinned.spectrum.release(&w0.path, &w0.channel);
        let mid = flexwan_optical::PixelRange::new(8, w0.channel.width);
        pinned.spectrum.occupy_exact(&w0.path, &mid).unwrap();
        w0.channel = mid;
        // Now free runs are [0,8) and [12,20): a 9-px channel needs defrag.
        let mut grown2 = IpTopology::new();
        grown2.add_link(a, b, 900); // 100 existing + 800 new
        let stuck = plan_incremental(&pinned, &g, &grown2, &without);
        assert!(!stuck.is_feasible(), "9 px must not fit while fragmented");
        let freed = plan_incremental(&pinned, &g, &grown2, &with);
        assert!(freed.is_feasible(), "unmet {:?}", freed.unmet);
        // The pinned wavelength was retuned (defrag) — but traffic-wise
        // hitlessly, and only one move was needed.
        assert_ne!(freed.wavelengths[0].channel, mid);
    }
}
