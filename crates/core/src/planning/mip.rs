//! The exact Algorithm 1 formulation, built verbatim on `flexwan-solver`.
//!
//! Decision variables are the paper's `γ^{e,k}_{j,q}` (wavelength of
//! format `j` starting at pixel order `q` on path `k` of link `e`);
//! `λ^{e,k}_j = Σ_q γ` and `ξ^{e,k}_{φ,w} = Σ_{j,q} γ·s^{j,q}_w` are
//! substituted into the constraints rather than materialized, which keeps
//! the model pure-binary without changing its feasible set:
//!
//! * capacity (1): `Σ_k Σ_j d_j λ^{e,k}_j ≥ c_e`;
//! * reach (2): enforced structurally — formats with `l_j < |P_{e,k}|`
//!   get no variables;
//! * conflict (3) + consistency (4) + status (5): for every fiber `φ` and
//!   slot `w`, `Σ γ·s^{j,q}_w·π^{e,k}_φ ≤ 1` (a wavelength occupies the
//!   same slots on every fiber of its path by construction of `s`);
//! * transponder count (6): `λ = Σ_q γ` is the substitution itself.
//!
//! This model is exponential in practice (the paper runs Gurobi "within
//! hours"); it exists to validate the scalable heuristic on small
//! instances, and the validation tests live in
//! `tests/planning_exact_vs_heuristic.rs`.

use flexwan_solver::{LinExpr, Model, Sense, SolveOptions, SolverStats, Status};
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;
use flexwan_topo::ksp::k_shortest_paths;
use flexwan_topo::path::Path;

use crate::planning::format_dp::reachable_formats;
use crate::planning::heuristic::PlannerConfig;
use crate::scheme::Scheme;
use crate::wavelength::Wavelength;

/// An exact optimum of Algorithm 1.
#[derive(Debug, Clone)]
pub struct ExactPlan {
    /// Objective value `Σλ + ε·Σλ·Y` (spacing in GHz).
    pub objective: f64,
    /// The provisioned wavelengths.
    pub wavelengths: Vec<Wavelength>,
    /// Solver counters (pivots, B&B nodes, warm-start hit rate, phase
    /// timings) for the exact solve — surfaced by the bench harness.
    pub stats: SolverStats,
}

/// Solves Algorithm 1 exactly. Returns `None` when the instance is
/// infeasible (or the node limit was exhausted without an incumbent —
/// callers size their instances to avoid this; see module docs).
pub fn solve_exact(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    opts: &SolveOptions,
) -> Option<ExactPlan> {
    let align = scheme.alignment_pixels();
    let model_t = scheme.transponder();
    let pixels = cfg.grid.pixels();
    let none = std::collections::HashSet::new();

    let mut m = Model::new();
    // Variable registry: (link idx, path idx, format, start pixel) per γ.
    struct GammaVar {
        link: usize,
        path: usize,
        format: flexwan_optical::TransponderFormat,
        start: u32,
        var: flexwan_solver::Var,
    }
    let mut gammas: Vec<GammaVar> = Vec::new();
    let mut paths_per_link: Vec<Vec<Path>> = Vec::new();

    for (li, link) in ip.links().iter().enumerate() {
        let paths = k_shortest_paths(optical, link.src, link.dst, cfg.k_paths, &none);
        for (ki, path) in paths.iter().enumerate() {
            for format in reachable_formats(model_t, path.length_km) {
                let w = u32::from(format.spacing.pixels());
                let mut q = 0u32;
                while q + w <= pixels {
                    let var = m.binary(format!(
                        "g_e{li}_k{ki}_d{}_y{}_q{q}",
                        format.data_rate_gbps,
                        format.spacing.pixels()
                    ));
                    gammas.push(GammaVar { link: li, path: ki, format, start: q, var });
                    q += align;
                }
            }
        }
        paths_per_link.push(paths);
    }

    // (1) capacity per link.
    for (li, link) in ip.links().iter().enumerate() {
        let expr = LinExpr::sum(
            gammas
                .iter()
                .filter(|g| g.link == li)
                .map(|g| f64::from(g.format.data_rate_gbps) * g.var),
        );
        m.ge(expr, link.demand_gbps as f64);
    }

    // (3)/(4)/(5): per (fiber, slot) at most one occupying wavelength.
    for fiber in optical.edges() {
        for w in 0..pixels {
            let expr = LinExpr::sum(
                gammas
                    .iter()
                    .filter(|g| {
                        paths_per_link[g.link][g.path].uses_edge(fiber.id)
                            && g.start <= w
                            && w < g.start + u32::from(g.format.spacing.pixels())
                    })
                    .map(|g| 1.0 * g.var),
            );
            if !expr.terms.is_empty() {
                m.le(expr, 1.0);
            }
        }
    }

    // Objective: Σ (1 + ε·Y_j) γ.
    let obj = LinExpr::sum(
        gammas
            .iter()
            .map(|g| (1.0 + cfg.epsilon * g.format.spacing.ghz()) * g.var),
    );
    m.set_objective(Sense::Minimize, obj);

    let (sol, stats) = m.solve_with_stats(opts);
    match sol.status {
        Status::Optimal => {}
        Status::NodeLimit if !sol.objective.is_nan() => {}
        // `Error` means the model itself was malformed (NaN coefficient,
        // inverted bounds, …) — a bug in this formulation, not an
        // infeasible instance; fold it into `None` like the others but
        // keep the arm explicit so the distinction is visible here.
        Status::Error => return None,
        _ => return None,
    }

    let wavelengths = gammas
        .iter()
        .filter(|g| sol.value(g.var) > 0.5)
        .map(|g| Wavelength {
            link: ip.links()[g.link].id,
            path_index: g.path,
            path: paths_per_link[g.link][g.path].clone(),
            format: g.format,
            channel: flexwan_optical::PixelRange::new(g.start, g.format.spacing),
        })
        .collect();
    Some(ExactPlan { objective: sol.objective, wavelengths, stats })
}

impl ExactPlan {
    /// Number of transponder pairs in the optimum.
    pub fn transponder_count(&self) -> usize {
        self.wavelengths.len()
    }

    /// Spectrum usage `Σ λ·Y`, GHz.
    pub fn spectrum_usage_ghz(&self) -> f64 {
        self.wavelengths.iter().map(|w| w.format.spacing.ghz()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::SpectrumGrid;

    fn cfg(pixels: u32) -> PlannerConfig {
        PlannerConfig { grid: SpectrumGrid::new(pixels), k_paths: 2, ..Default::default() }
    }

    fn opts() -> SolveOptions {
        SolveOptions { max_nodes: 20_000, ..Default::default() }
    }

    #[test]
    fn single_link_matches_hand_optimum() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 200);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 800);
        let exact = solve_exact(Scheme::FlexWan, &g, &ip, &cfg(16), &opts()).unwrap();
        // One 800 G @ 125 GHz: objective 1 + 0.125.
        assert_eq!(exact.transponder_count(), 1);
        assert!((exact.objective - 1.125).abs() < 1e-6);
    }

    #[test]
    fn conflict_forces_second_fiber_or_infeasible() {
        // One 10-px fiber, two 800 G links over it at 200 km: each needs
        // 10 px → cannot both fit → infeasible.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 200);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 800);
        ip.add_link(a, b, 800);
        assert!(solve_exact(Scheme::FlexWan, &g, &ip, &cfg(10), &opts()).is_none());
        // With a parallel fiber the instance becomes feasible.
        g.add_edge(a, b, 240);
        let exact = solve_exact(Scheme::FlexWan, &g, &ip, &cfg(11), &opts()).unwrap();
        assert_eq!(exact.transponder_count(), 2);
    }

    #[test]
    fn fixed_grid_alignment_in_exact_model() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 500);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let exact = solve_exact(Scheme::Radwan, &g, &ip, &cfg(18), &opts()).unwrap();
        assert_eq!(exact.transponder_count(), 1); // one 300 G BVT
        for w in &exact.wavelengths {
            assert_eq!(w.channel.start % 6, 0);
        }
    }

    #[test]
    fn multi_fiber_consistency() {
        // Two-hop path: the chosen slots must be identical on both fibers,
        // which the formulation guarantees structurally; verify via the
        // extracted wavelengths' single channel.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 100);
        g.add_edge(b, c, 100);
        let mut ip = IpTopology::new();
        ip.add_link(a, c, 400);
        let exact = solve_exact(Scheme::FlexWan, &g, &ip, &cfg(8), &opts()).unwrap();
        assert_eq!(exact.transponder_count(), 1);
        assert_eq!(exact.wavelengths[0].path.num_hops(), 2);
    }
}
