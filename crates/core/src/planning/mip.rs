//! The exact Algorithm 1 formulation, built on the shared
//! [`crate::opt`] variable-space layer over `flexwan-solver`.
//!
//! Decision variables are the paper's `γ^{e,k}_{j,q}` (wavelength of
//! format `j` starting at pixel order `q` on path `k` of link `e`);
//! `λ^{e,k}_j = Σ_q γ` and `ξ^{e,k}_{φ,w} = Σ_{j,q} γ·s^{j,q}_w` are
//! substituted into the constraints rather than materialized, which keeps
//! the model pure-binary without changing its feasible set:
//!
//! * capacity (1): `Σ_k Σ_j d_j λ^{e,k}_j ≥ c_e` — the named `capacity`
//!   constraint group, one row per IP link;
//! * reach (2): enforced structurally — formats with `l_j < |P_{e,k}|`
//!   get no variables;
//! * conflict (3) + consistency (4) + status (5): for every fiber `φ` and
//!   slot `w`, `Σ γ·s^{j,q}_w·π^{e,k}_φ ≤ 1` — the `conflict` group,
//!   rows bucketed per fiber (a wavelength occupies the same slots on
//!   every fiber of its path by construction of `s`);
//! * transponder count (6): `λ = Σ_q γ` is the substitution itself.
//!
//! [`PlanModel`] keeps the built model *standing*: after a planning
//! solve, a fiber-cut restoration (§8) is expressed as a **mutation** of
//! the same model — surviving wavelengths pinned, cut-path candidates
//! banned, the cut fiber's conflict rows and the affected links' capacity
//! rows deactivated, restoration caps `c'_e`/`N_e` appended — and
//! re-solved warm from the planning basis via
//! [`flexwan_solver::IncrementalSolver`]. `tests/restore_mutation.rs`
//! cross-validates the mutated re-solve against a from-scratch build.
//!
//! This model is exponential in practice (the paper runs Gurobi "within
//! hours"); it exists to validate the scalable heuristic on small
//! instances, and the validation tests live in
//! `tests/planning_exact_vs_heuristic.rs`.

use flexwan_solver::{
    Cmp, IncrementalSolver, LinExpr, Model, RowId, Sense, Solution, SolveOptions, SolverStats,
    Status,
};
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::ip::{IpLinkId, IpTopology};
use flexwan_topo::ksp::k_shortest_paths;
use flexwan_topo::path::Path;

use crate::opt::{GammaId, WavelengthVarSpace};
use crate::planning::heuristic::PlannerConfig;
use crate::restore::scenario::FailureScenario;
use crate::scheme::Scheme;
use crate::wavelength::Wavelength;

/// An exact optimum of Algorithm 1.
#[derive(Debug, Clone)]
pub struct ExactPlan {
    /// Objective value `Σλ + ε·Σλ·Y` (spacing in GHz).
    pub objective: f64,
    /// The provisioned wavelengths.
    pub wavelengths: Vec<Wavelength>,
    /// Solver counters (pivots, B&B nodes, warm-start hit rate, phase
    /// timings) for the exact solve — surfaced by the bench harness.
    pub stats: SolverStats,
}

/// A restoration optimum obtained by mutating a standing [`PlanModel`].
#[derive(Debug, Clone)]
pub struct MutatedRestoration {
    /// Objective value of the mutated solve (`Σ rate·γ` over the newly
    /// placed restoration wavelengths, Gbps), recomputed from the
    /// incumbent wavelength set so it is bit-for-bit reproducible across
    /// warm and cold re-solves.
    pub objective: f64,
    /// Restored capacity, Gbps.
    pub restored_gbps: u64,
    /// Capacity lost to the scenario, Gbps.
    pub affected_gbps: u64,
    /// The restoration wavelengths placed by the mutated solve.
    pub wavelengths: Vec<Wavelength>,
    /// Banned-path γ columns generated on demand for this scenario (zero
    /// when the standing space already contained every §8 restoration
    /// path — always the case for single-fiber cuts on a
    /// [`PlanModel::build_restorable`] model). Non-zero marks the solve
    /// cold (the layout changed) but still on the mutation path.
    pub added_columns: usize,
    /// Solver counters for the mutated re-solve (`warm_solves` vs
    /// `cold_solves` shows whether the planning basis was reused).
    pub stats: SolverStats,
}

/// The Algorithm 1 model kept standing for incremental re-solves.
///
/// Construction is a single pass over the γ variable space: every
/// constraint row is a bucket lookup in [`WavelengthVarSpace`], so build
/// time is linear in the model's nonzero count (the pre-refactor builder
/// re-scanned all γ per row — quadratic; `bench_eval` gates the win).
pub struct PlanModel {
    solver: IncrementalSolver,
    space: WavelengthVarSpace,
    scheme: Scheme,
    /// `capacity` group rows, one per IP link (same index).
    capacity_rows: Vec<RowId>,
    /// `conflict` group rows, bucketed per fiber.
    conflict_rows: Vec<(EdgeId, Vec<RowId>)>,
    /// (fiber, pixel) → its conflict row, for entering on-demand columns
    /// into existing rows (cells empty at build time have no row until a
    /// generated column first occupies them).
    conflict_row_at: std::collections::HashMap<(EdgeId, u32), RowId>,
    link_ids: Vec<IpLinkId>,
    /// Endpoints per IP link, for re-deriving §8 restoration path sets.
    link_ends: Vec<(flexwan_topo::graph::NodeId, flexwan_topo::graph::NodeId)>,
    k_paths: usize,
    /// The planning objective, kept to restore it after a mutation.
    objective: LinExpr,
    /// γ ids at or past this watermark were generated on demand for a
    /// restoration scenario: they participate only while their scenario's
    /// mutation is live and stay pinned to 0 for planning solves, so the
    /// planning optimum (and its pinned goldens) never shifts under
    /// column generation.
    restore_only_from: usize,
    /// The last planning solution (mutations need to know which γ won).
    solution: Option<Solution>,
}

impl PlanModel {
    /// Builds the standing Algorithm 1 model for an instance, with the
    /// paper's candidate-path set `P_{e,k}` (plain KSP). The model this
    /// produces is identical to the pre-refactor `solve_exact` builder.
    pub fn build(scheme: Scheme, optical: &Graph, ip: &IpTopology, cfg: &PlannerConfig) -> Self {
        let none = std::collections::HashSet::new();
        let paths_per_link: Vec<Vec<Path>> = ip
            .links()
            .iter()
            .map(|link| k_shortest_paths(optical, link.src, link.dst, cfg.k_paths, &none))
            .collect();
        Self::build_from_paths(scheme, optical, ip, cfg, paths_per_link)
    }

    /// Like [`build`](Self::build), but the candidate-path set of every
    /// link is extended with the K shortest paths avoiding each single
    /// fiber (deduplicated, deterministic order). This guarantees that
    /// for any single-fiber cut, the restoration path set `P'_{e,k}` of
    /// the from-scratch §8 model is present in the standing variable
    /// space, so [`restore_after_cut`](Self::restore_after_cut) reaches
    /// the same optimum the from-scratch build would.
    pub fn build_restorable(
        scheme: Scheme,
        optical: &Graph,
        ip: &IpTopology,
        cfg: &PlannerConfig,
    ) -> Self {
        let none = std::collections::HashSet::new();
        let paths_per_link: Vec<Vec<Path>> = ip
            .links()
            .iter()
            .map(|link| {
                let mut paths = Vec::new();
                let mut seen: std::collections::HashSet<Vec<flexwan_topo::graph::EdgeId>> =
                    std::collections::HashSet::new();
                let mut push_all = |found: Vec<Path>, paths: &mut Vec<Path>| {
                    for p in found {
                        if seen.insert(p.edges.clone()) {
                            paths.push(p);
                        }
                    }
                };
                push_all(
                    k_shortest_paths(optical, link.src, link.dst, cfg.k_paths, &none),
                    &mut paths,
                );
                for fiber in optical.edges() {
                    let banned = std::collections::HashSet::from([fiber.id]);
                    push_all(
                        k_shortest_paths(optical, link.src, link.dst, cfg.k_paths, &banned),
                        &mut paths,
                    );
                }
                paths
            })
            .collect();
        Self::build_from_paths(scheme, optical, ip, cfg, paths_per_link)
    }

    fn build_from_paths(
        scheme: Scheme,
        optical: &Graph,
        ip: &IpTopology,
        cfg: &PlannerConfig,
        paths_per_link: Vec<Vec<Path>>,
    ) -> Self {
        let pixels = cfg.grid.pixels();
        let mut m = Model::new();
        let space = WavelengthVarSpace::enumerate(
            &mut m,
            scheme,
            pixels,
            optical.num_edges(),
            "g_e",
            paths_per_link,
            |_, _| true,
        );

        // (1) capacity per link.
        m.group("capacity");
        let capacity_rows: Vec<RowId> = ip
            .links()
            .iter()
            .enumerate()
            .map(|(li, link)| m.ge(space.rate_expr(li), link.demand_gbps as f64))
            .collect();
        m.end_group();

        // (3)/(4)/(5): per (fiber, slot) at most one occupying wavelength.
        m.group("conflict");
        let conflict_rows = space.conflict_rows(&mut m, optical.edges().iter().map(|e| e.id), 1);
        m.end_group();

        // Objective: Σ (1 + ε·Y_j) γ.
        let objective = space.weighted_expr(|g| 1.0 + cfg.epsilon * g.format.spacing.ghz());
        m.set_objective(Sense::Minimize, objective.clone());

        // Re-derive the (fiber, pixel) → row map from the same walk
        // `conflict_rows` took: per fiber, pixels ascending, empty
        // buckets skipped (min_terms = 1).
        let mut conflict_row_at = std::collections::HashMap::new();
        for (fiber, rows) in &conflict_rows {
            let mut it = rows.iter();
            for px in 0..pixels {
                if !space.fiber_pixel_gammas(*fiber, px).is_empty() {
                    conflict_row_at
                        .insert((*fiber, px), *it.next().expect("row per non-empty cell"));
                }
            }
        }

        let restore_only_from = space.gammas().len();
        PlanModel {
            solver: IncrementalSolver::new(m),
            space,
            scheme,
            capacity_rows,
            conflict_rows,
            conflict_row_at,
            link_ids: ip.links().iter().map(|l| l.id).collect(),
            link_ends: ip.links().iter().map(|l| (l.src, l.dst)).collect(),
            k_paths: cfg.k_paths,
            objective,
            restore_only_from,
            solution: None,
        }
    }

    /// The γ variable space the model is built on.
    pub fn space(&self) -> &WavelengthVarSpace {
        &self.space
    }

    /// The underlying solver model (read-only) — row/variable counts,
    /// constraint groups, and per-row inspection for observability.
    pub fn model(&self) -> &Model {
        self.solver.model()
    }

    /// Drops the stored basis so the next (re-)solve runs cold — the
    /// from-scratch comparator used by cross-validation tests and the
    /// bench harness.
    pub fn drop_basis(&mut self) {
        self.solver.invalidate_basis();
    }

    /// Replaces the capacity demand `c_e` asserted by `link`'s capacity
    /// row — the warm-mutation path for demand-delta events: one rhs
    /// change, then a warm re-[`solve`](Self::solve). The stored
    /// planning solution goes stale until that re-solve.
    pub fn change_demand(&mut self, link: IpLinkId, demand_gbps: u64) {
        let slot = self
            .link_ids
            .iter()
            .position(|&l| l == link)
            .expect("unknown IP link");
        self.solver
            .change_rhs(self.capacity_rows[slot], demand_gbps as f64);
    }

    /// Generates any §8 restoration columns `scenario` needs that the
    /// standing variable space lacks, across every IP link: for each
    /// link, the K shortest paths avoiding the scenario's cut set are
    /// recomputed and missing ones enter the model as on-demand γ
    /// columns (capacity-row terms, conflict-row terms, fresh conflict
    /// rows for previously-empty spectrum cells). Returns the number of
    /// columns added — zero whenever the space already covers the
    /// scenario, which [`build_restorable`](Self::build_restorable)
    /// guarantees for single-fiber cuts.
    ///
    /// Generated columns are *restoration-only*: pinned to 0 except
    /// while a mutation for a covering scenario is live, so planning
    /// optima (and their pinned goldens) never shift under column
    /// generation. [`restore_after_cut`](Self::restore_after_cut) calls
    /// this internally for the affected links; the public entry point
    /// exists to pre-warm the space for anticipated scenarios.
    pub fn ensure_restoration_columns(
        &mut self,
        optical: &Graph,
        scenario: &FailureScenario,
    ) -> usize {
        let slots: Vec<usize> = (0..self.link_ids.len()).collect();
        self.ensure_columns_for(optical, &scenario.banned(), &slots)
    }

    fn ensure_columns_for(
        &mut self,
        optical: &Graph,
        banned: &std::collections::HashSet<EdgeId>,
        slots: &[usize],
    ) -> usize {
        let mut total = 0usize;
        let mut new_cells: Vec<(EdgeId, u32)> = Vec::new();
        for &slot in slots {
            let (src, dst) = self.link_ends[slot];
            let want = k_shortest_paths(optical, src, dst, self.k_paths, banned);
            let have: std::collections::HashSet<Vec<EdgeId>> = self
                .space
                .paths(slot)
                .iter()
                .map(|p| p.edges.clone())
                .collect();
            let missing: Vec<Path> = want
                .into_iter()
                .filter(|p| !have.contains(&p.edges))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let added = self.space.extend_slot(
                self.solver.model_mut(),
                self.scheme,
                "g_e",
                slot,
                missing,
                |_, _| true,
            );
            for &id in &added {
                let g = self.space.get(id).clone();
                // Restoration-only until a mutation frees it.
                self.solver.set_var_bounds(g.var, 0.0, 0.0);
                self.solver.add_term(
                    self.capacity_rows[slot],
                    g.var,
                    f64::from(g.format.data_rate_gbps),
                );
                let w = u32::from(g.format.spacing.pixels());
                let edges = self.space.path_of(&g).edges.clone();
                for e in edges {
                    for px in g.start..g.start + w {
                        match self.conflict_row_at.get(&(e, px)) {
                            Some(&row) => self.solver.add_term(row, g.var, 1.0),
                            None => {
                                if !new_cells.contains(&(e, px)) {
                                    new_cells.push((e, px));
                                }
                            }
                        }
                    }
                }
            }
            total += added.len();
        }
        // Spectrum cells first occupied by generated columns get fresh
        // conflict rows over their (generated-only) buckets.
        if !new_cells.is_empty() {
            self.solver.model_mut().group("conflict");
            for (fiber, px) in new_cells {
                let expr = LinExpr::sum(
                    self.space
                        .fiber_pixel_gammas(fiber, px)
                        .iter()
                        .map(|&id| 1.0 * self.space.get(id).var),
                );
                let row = self.solver.add_constraint(expr, Cmp::Le, 1.0);
                self.conflict_row_at.insert((fiber, px), row);
                match self.conflict_rows.iter_mut().find(|(f, _)| *f == fiber) {
                    Some((_, rows)) => rows.push(row),
                    None => self.conflict_rows.push((fiber, vec![row])),
                }
            }
            self.solver.model_mut().end_group();
        }
        total
    }

    /// Solves (or re-solves) the standing planning model. Warm-starts
    /// from the previous basis when one is available.
    pub fn solve(&mut self, opts: &SolveOptions) -> Option<ExactPlan> {
        let (sol, stats) = self.solver.solve(opts);
        match sol.status {
            Status::Optimal => {}
            Status::NodeLimit if !sol.objective.is_nan() => {}
            // `Error` means the model itself was malformed (NaN
            // coefficient, inverted bounds, …) — a bug in this
            // formulation, not an infeasible instance; fold it into
            // `None` like the others but keep the arm explicit so the
            // distinction is visible here.
            Status::Error => {
                self.solution = None;
                return None;
            }
            _ => {
                self.solution = None;
                return None;
            }
        }
        let link_ids = &self.link_ids;
        let wavelengths = self.space.extract(&sol, |slot| link_ids[slot]);
        let plan = ExactPlan {
            objective: sol.objective,
            wavelengths,
            stats,
        };
        self.solution = Some(sol);
        Some(plan)
    }

    /// §8 restoration as a mutation of the standing planning model.
    ///
    /// Requires a prior successful [`solve`](Self::solve). The mutation:
    ///
    /// 1. pins every surviving planned wavelength (`γ = 1`), bans every
    ///    candidate whose path crosses a cut fiber and every unselected
    ///    candidate on unaffected links (`γ = 0`) — unaffected links keep
    ///    exactly their planned wavelengths;
    /// 2. deactivates the affected links' `capacity` rows (their demand
    ///    can no longer be asserted) and the cut fibers' `conflict` rows
    ///    (that spectrum no longer exists);
    /// 3. appends restoration caps per affected link: restored rate
    ///    `≤ c'_e` (7) and restored count `≤ N_e` (+`extra_spares`) (8);
    /// 4. flips the objective to maximize restored capacity and re-solves
    ///    **warm** from the planning basis.
    ///
    /// Surviving wavelengths stay pinned inside the active conflict rows,
    /// so the residual-spectrum constraint (9) is enforced structurally.
    /// The candidate set is the standing enumeration restricted to the
    /// §8 restoration path set `P'_{e,k}` (the K shortest paths avoiding
    /// the cut, recomputed here). Restoration paths the standing space
    /// lacks — a simultaneous multi-fiber cut on any build, or any cut
    /// on a plain [`build`](Self::build) — are generated **on demand**
    /// as extra γ columns
    /// ([`ensure_restoration_columns`](Self::ensure_restoration_columns))
    /// before the pins are placed, so the mutated model's feasible set
    /// always equals the from-scratch §8 model's and their optima
    /// coincide; with [`build_restorable`](Self::build_restorable) and a
    /// single-fiber cut nothing is missing and the solve stays warm.
    /// `optical` must be the graph the model was built on. The mutation
    /// is fully reverted before returning, leaving the standing model
    /// solvable as a planning model again.
    pub fn restore_after_cut(
        &mut self,
        optical: &Graph,
        scenario: &FailureScenario,
        extra_spares: &[u32],
        opts: &SolveOptions,
    ) -> Option<MutatedRestoration> {
        let sol = self.solution.clone()?;
        let banned = scenario.banned();
        let crosses = |space: &WavelengthVarSpace, g: GammaId| {
            space
                .path_of(space.get(g))
                .edges
                .iter()
                .any(|e| banned.contains(e))
        };

        // Per affected link (first-seen order): lost capacity c'_e and
        // spare transponders N_e.
        let mut lost_order: Vec<usize> = Vec::new();
        let mut lost: std::collections::HashMap<usize, (u64, u32)> =
            std::collections::HashMap::new();
        for (i, g) in self.space.gammas().iter().enumerate() {
            if sol.value(g.var) > 0.5 && crosses(&self.space, GammaId(i)) {
                let entry = lost.entry(g.slot).or_insert_with(|| {
                    lost_order.push(g.slot);
                    (0, 0)
                });
                entry.0 += u64::from(g.format.data_rate_gbps);
                entry.1 += 1;
            }
        }
        let affected_gbps: u64 = lost.values().map(|&(c, _)| c).sum();
        if affected_gbps == 0 {
            return Some(MutatedRestoration {
                objective: 0.0,
                restored_gbps: 0,
                affected_gbps: 0,
                wavelengths: Vec::new(),
                added_columns: 0,
                stats: SolverStats::default(),
            });
        }
        if !extra_spares.is_empty() {
            for (&slot, entry) in lost.iter_mut() {
                entry.1 += extra_spares[slot];
            }
        }

        // On-demand banned-path columns: a simultaneous-cut scenario
        // whose detours were not pre-enumerated extends the standing
        // space here instead of forcing a from-scratch rebuild. The
        // layout change drops the basis (this solve runs cold) but
        // every row, group, and handle survives — still the mutation
        // path, and the refreshed basis re-warms the solve after next.
        let added_columns = self.ensure_columns_for(optical, &banned, &lost_order);

        // §8 candidate paths per affected link: the K shortest paths
        // avoiding the cut. Restricting the free variables to exactly
        // this set is what makes the mutated model match the from-scratch
        // build (which enumerates precisely these paths).
        let restore_paths: std::collections::HashMap<
            usize,
            std::collections::HashSet<Vec<EdgeId>>,
        > = lost_order
            .iter()
            .map(|&slot| {
                let (src, dst) = self.link_ends[slot];
                let set = k_shortest_paths(optical, src, dst, self.k_paths, &banned)
                    .into_iter()
                    .map(|p| p.edges)
                    .collect();
                (slot, set)
            })
            .collect();

        // (1) pin survivors; ban cut paths, unaffected non-selections and
        // candidates outside the §8 restoration path set.
        let mut candidates: Vec<GammaId> = Vec::new();
        for (i, g) in self.space.gammas().iter().enumerate() {
            let id = GammaId(i);
            // Columns generated above postdate the planning solution —
            // they are unselected by construction.
            let selected = g.var.0 < sol.values.len() && sol.value(g.var) > 0.5;
            if crosses(&self.space, id) {
                self.solver.set_var_bounds(g.var, 0.0, 0.0);
            } else if selected {
                self.solver.set_var_bounds(g.var, 1.0, 1.0);
            } else if restore_paths
                .get(&g.slot)
                .is_some_and(|set| set.contains(&self.space.path_of(g).edges))
            {
                // Free: a restoration candidate (restoration-only
                // columns arrive pinned to 0 and must be re-opened).
                self.solver.set_var_bounds(g.var, 0.0, 1.0);
                candidates.push(id);
            } else {
                self.solver.set_var_bounds(g.var, 0.0, 0.0);
            }
        }

        // (2) retire the rows the failure invalidates — one batched
        // multi-row ban covering every affected capacity row and every
        // cut fiber's conflict rows, so a k-fiber scenario is a single
        // mutation, not k sequential ones.
        let banned_rows: Vec<RowId> = lost_order
            .iter()
            .map(|&slot| self.capacity_rows[slot])
            .chain(
                self.conflict_rows
                    .iter()
                    .filter(|(fiber, _)| banned.contains(fiber))
                    .flat_map(|(_, rows)| rows.iter().copied()),
            )
            .collect();
        self.solver.deactivate_rows(&banned_rows);

        // (3) append the §8 caps over the candidates of each affected
        // link, under named groups on the standing model.
        let mut added: Vec<RowId> = Vec::new();
        for &slot in &lost_order {
            let (c, n) = lost[&slot];
            let cands: Vec<GammaId> = candidates
                .iter()
                .copied()
                .filter(|&id| self.space.get(id).slot == slot)
                .collect();
            let rate = LinExpr::sum(cands.iter().map(|&id| {
                let g = self.space.get(id);
                f64::from(g.format.data_rate_gbps) * g.var
            }));
            let count = LinExpr::sum(cands.iter().map(|&id| 1.0 * self.space.get(id).var));
            self.solver.model_mut().group("restore_rate");
            added.push(self.solver.add_constraint(rate, Cmp::Le, c as f64));
            self.solver.model_mut().group("restore_count");
            added.push(self.solver.add_constraint(count, Cmp::Le, f64::from(n)));
            self.solver.model_mut().end_group();
        }

        // (4) maximize restored capacity, re-solve warm. The vanishing
        // per-candidate perturbation (≪ the 100 Gbps rate quantum in
        // total) breaks ties between equal-rate placements toward lower
        // enumeration order, so warm and cold solves of the same mutation
        // land on the same incumbent set. Quadratic in the position, not
        // linear: permuting the channels of two equal-width placements
        // shifts positions by equal-and-opposite amounts, which a linear
        // weight cannot see, while the square's cross-term can.
        let restore_obj = LinExpr::sum(candidates.iter().enumerate().map(|(pos, &id)| {
            let g = self.space.get(id);
            let p = (pos + 1) as f64;
            (f64::from(g.format.data_rate_gbps) - 1e-6 * p * p) * g.var
        }));
        self.solver.set_objective(Sense::Maximize, restore_obj);
        let (rsol, stats) = self.solver.solve(opts);

        // Revert the mutation: the standing model is a planning model
        // again (the appended caps stay allocated but inactive, keeping
        // every RowId stable). Generated restoration-only columns go
        // back to their pinned-zero rest state so the planning optimum
        // is untouched by column generation.
        for (i, g) in self.space.gammas().iter().enumerate() {
            let upper = if i < self.restore_only_from { 1.0 } else { 0.0 };
            self.solver.set_var_bounds(g.var, 0.0, upper);
        }
        self.solver.activate_rows(&banned_rows);
        self.solver.deactivate_rows(&added);
        self.solver
            .set_objective(Sense::Minimize, self.objective.clone());

        match rsol.status {
            Status::Optimal => {}
            Status::NodeLimit if !rsol.objective.is_nan() => {}
            _ => return None,
        }
        let wavelengths: Vec<Wavelength> = candidates
            .iter()
            .filter(|&&id| rsol.value(self.space.get(id).var) > 0.5)
            .map(|&id| {
                let g = self.space.get(id);
                Wavelength {
                    link: self.link_ids[g.slot],
                    path_index: g.path_index,
                    path: self.space.path_of(g).clone(),
                    format: g.format,
                    channel: g.channel(),
                }
            })
            .collect();
        // Recompute the objective from the incumbent set: exact integer
        // arithmetic in f64, immune to the last-bit drift different pivot
        // sequences (warm vs cold) leave on the solver's running value.
        let restored_gbps: u64 = wavelengths
            .iter()
            .map(|w| u64::from(w.format.data_rate_gbps))
            .sum();
        Some(MutatedRestoration {
            objective: restored_gbps as f64,
            restored_gbps,
            affected_gbps,
            wavelengths,
            added_columns,
            stats,
        })
    }

    /// [`restore_after_cut`](Self::restore_after_cut) over a plain slice
    /// of simultaneously cut fibers: the whole set is pinned/banned as
    /// **one** mutation (duplicates ignored). Restoring a k-cut as k
    /// sequential single-cut mutations is wrong — the first mutation's
    /// candidates may ride a fiber the next cut takes down, stranding
    /// "restored" wavelengths on dark fiber; the single multi-fiber
    /// mutation bans every cut fiber before any candidate is opened
    /// (`tests/restore_mutation.rs` pins the 2-cut ordering).
    pub fn restore_after_cuts(
        &mut self,
        optical: &Graph,
        cuts: &[EdgeId],
        extra_spares: &[u32],
        opts: &SolveOptions,
    ) -> Option<MutatedRestoration> {
        let mut sorted: Vec<EdgeId> = cuts.to_vec();
        sorted.sort_unstable_by_key(|e| e.0);
        sorted.dedup();
        let scenario = FailureScenario {
            id: 0,
            cuts: sorted,
            probability: 1.0,
        };
        self.restore_after_cut(optical, &scenario, extra_spares, opts)
    }
}

/// Solves Algorithm 1 exactly. Returns `None` when the instance is
/// infeasible (or the node limit was exhausted without an incumbent —
/// callers size their instances to avoid this; see module docs).
pub fn solve_exact(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    opts: &SolveOptions,
) -> Option<ExactPlan> {
    PlanModel::build(scheme, optical, ip, cfg).solve(opts)
}

impl ExactPlan {
    /// Number of transponder pairs in the optimum.
    pub fn transponder_count(&self) -> usize {
        self.wavelengths.len()
    }

    /// Spectrum usage `Σ λ·Y`, GHz.
    pub fn spectrum_usage_ghz(&self) -> f64 {
        self.wavelengths
            .iter()
            .map(|w| w.format.spacing.ghz())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::SpectrumGrid;

    fn cfg(pixels: u32) -> PlannerConfig {
        PlannerConfig {
            grid: SpectrumGrid::new(pixels),
            k_paths: 2,
            ..Default::default()
        }
    }

    fn opts() -> SolveOptions {
        SolveOptions {
            max_nodes: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn single_link_matches_hand_optimum() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 200);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 800);
        let exact = solve_exact(Scheme::FlexWan, &g, &ip, &cfg(16), &opts()).unwrap();
        // One 800 G @ 125 GHz: objective 1 + 0.125.
        assert_eq!(exact.transponder_count(), 1);
        assert!((exact.objective - 1.125).abs() < 1e-6);
    }

    #[test]
    fn conflict_forces_second_fiber_or_infeasible() {
        // One 10-px fiber, two 800 G links over it at 200 km: each needs
        // 10 px → cannot both fit → infeasible.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 200);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 800);
        ip.add_link(a, b, 800);
        assert!(solve_exact(Scheme::FlexWan, &g, &ip, &cfg(10), &opts()).is_none());
        // With a parallel fiber the instance becomes feasible.
        g.add_edge(a, b, 240);
        let exact = solve_exact(Scheme::FlexWan, &g, &ip, &cfg(11), &opts()).unwrap();
        assert_eq!(exact.transponder_count(), 2);
    }

    #[test]
    fn fixed_grid_alignment_in_exact_model() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 500);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let exact = solve_exact(Scheme::Radwan, &g, &ip, &cfg(18), &opts()).unwrap();
        assert_eq!(exact.transponder_count(), 1); // one 300 G BVT
        for w in &exact.wavelengths {
            assert_eq!(w.channel.start % 6, 0);
        }
    }

    #[test]
    fn multi_fiber_consistency() {
        // Two-hop path: the chosen slots must be identical on both fibers,
        // which the formulation guarantees structurally; verify via the
        // extracted wavelengths' single channel.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 100);
        g.add_edge(b, c, 100);
        let mut ip = IpTopology::new();
        ip.add_link(a, c, 400);
        let exact = solve_exact(Scheme::FlexWan, &g, &ip, &cfg(8), &opts()).unwrap();
        assert_eq!(exact.transponder_count(), 1);
        assert_eq!(exact.wavelengths[0].path.num_hops(), 2);
    }

    #[test]
    fn standing_model_restores_the_3_3_example_by_mutation() {
        // §3.3's square: primary a–b (600 km) plus detour a–c–b (1200 km).
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let mut pm = PlanModel::build(Scheme::FlexWan, &g, &ip, &cfg(16));
        let plan = pm.solve(&opts()).unwrap();
        assert_eq!(plan.transponder_count(), 1);

        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        // The exact planner provisions one 400 G @ 75 GHz wavelength
        // (same cost as 300 G @ 75 GHz, more capacity).
        let r = pm.restore_after_cut(&g, &cut, &[], &opts()).unwrap();
        assert_eq!(r.affected_gbps, 400);
        assert_eq!(r.restored_gbps, 400); // FlexWAN revives everything
        for w in &r.wavelengths {
            assert!(!w.path.uses_edge(EdgeId(0)));
            assert!(w.format.reach_km >= w.path.length_km);
        }

        // The mutation reverts fully: the standing model re-solves to the
        // same planning optimum.
        let again = pm.solve(&opts()).unwrap();
        assert_eq!(again.objective.to_bits(), plan.objective.to_bits());
        assert_eq!(again.wavelengths, plan.wavelengths);
    }

    #[test]
    fn mutation_without_a_solve_is_refused() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 200);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 800);
        let mut pm = PlanModel::build(Scheme::FlexWan, &g, &ip, &cfg(16));
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        assert!(pm.restore_after_cut(&g, &cut, &[], &opts()).is_none());
    }

    /// A 5-node ring: a–b has a 2-hop detour (a–e–b) and a 3-hop detour
    /// (a–d–c–b), so cutting the primary *and* the short detour at once
    /// leaves a restoration path no single-fiber KSP enumeration saw.
    fn ring5() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let e = g.add_node("e");
        g.add_edge(a, b, 300); // 0: primary
        g.add_edge(a, e, 300); // 1
        g.add_edge(e, b, 300); // 2: a–e–b detour
        g.add_edge(a, d, 300); // 3
        g.add_edge(d, c, 300); // 4
        g.add_edge(c, b, 300); // 5: a–d–c–b detour
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        (g, ip)
    }

    #[test]
    fn simultaneous_cut_generates_columns_and_matches_rebuild() {
        let (g, ip) = ring5();
        let pc = PlannerConfig {
            k_paths: 1, // keep the long detour out of the standing space
            ..cfg(16)
        };
        let mut pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &pc);
        let plan = pm.solve(&opts()).unwrap();
        let vars_before = pm.model().num_vars();

        // Cut the primary and the short detour simultaneously.
        let cut = FailureScenario {
            id: 7,
            cuts: vec![EdgeId(0), EdgeId(1)],
            probability: 1.0,
        };
        let r = pm.restore_after_cut(&g, &cut, &[], &opts()).unwrap();
        assert!(
            r.added_columns > 0,
            "the a–d–c–b detour must be generated on demand"
        );
        assert!(pm.model().num_vars() > vars_before);
        // The planner provisions one 400 G @ 75 GHz wavelength for the
        // 300 G demand (same cost as 300 G @ 75 GHz, more capacity).
        assert_eq!(r.affected_gbps, 400);
        assert_eq!(r.restored_gbps, 400, "FlexWAN revives the link via a–d–c–b");
        for w in &r.wavelengths {
            assert!(!w.path.uses_edge(EdgeId(0)) && !w.path.uses_edge(EdgeId(1)));
            assert!(w.format.reach_km >= w.path.length_km);
        }

        // Same scenario on a from-scratch standing model whose space was
        // *pre-built* with both detours: optima must coincide.
        let wide = PlannerConfig { k_paths: 2, ..pc };
        let mut full = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &wide);
        full.solve(&opts()).unwrap();
        let f = full.restore_after_cut(&g, &cut, &[], &opts()).unwrap();
        assert_eq!(f.added_columns, 0, "wide build already has the detour");
        assert_eq!(r.restored_gbps, f.restored_gbps);
        assert_eq!(r.affected_gbps, f.affected_gbps);

        // Column generation must not disturb the standing planning
        // optimum: re-solving reproduces the original plan bit-for-bit.
        let again = pm.solve(&opts()).unwrap();
        assert_eq!(again.objective.to_bits(), plan.objective.to_bits());
        assert_eq!(again.wavelengths, plan.wavelengths);

        // The same scenario again adds nothing (columns are remembered)
        // and reproduces the same restoration.
        let r2 = pm.restore_after_cut(&g, &cut, &[], &opts()).unwrap();
        assert_eq!(r2.added_columns, 0);
        assert_eq!(r2.restored_gbps, r.restored_gbps);
        assert_eq!(r2.wavelengths, r.wavelengths);
    }

    #[test]
    fn ensure_columns_prewarms_without_shifting_planning() {
        let (g, ip) = ring5();
        let pc = PlannerConfig {
            k_paths: 1,
            ..cfg(16)
        };
        let mut pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &pc);
        let plan = pm.solve(&opts()).unwrap();
        let cut = FailureScenario {
            id: 7,
            cuts: vec![EdgeId(0), EdgeId(1)],
            probability: 1.0,
        };
        let added = pm.ensure_restoration_columns(&g, &cut);
        assert!(added > 0);
        assert_eq!(pm.ensure_restoration_columns(&g, &cut), 0, "idempotent");
        // Pre-warmed columns stay pinned: planning is unchanged.
        let again = pm.solve(&opts()).unwrap();
        assert_eq!(again.objective.to_bits(), plan.objective.to_bits());
        assert_eq!(again.wavelengths, plan.wavelengths);
        // And the restoration that needs them adds nothing further.
        let r = pm.restore_after_cut(&g, &cut, &[], &opts()).unwrap();
        assert_eq!(r.added_columns, 0);
        assert_eq!(r.restored_gbps, r.affected_gbps);
    }

    #[test]
    fn change_demand_warm_resolves() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 200);
        let mut ip = IpTopology::new();
        let l = ip.add_link(a, b, 400);
        let mut pm = PlanModel::build(Scheme::FlexWan, &g, &ip, &cfg(24));
        let p1 = pm.solve(&opts()).unwrap();

        pm.change_demand(l, 800);
        let p2 = pm.solve(&opts()).unwrap();
        let carried: u64 = p2
            .wavelengths
            .iter()
            .map(|w| u64::from(w.format.data_rate_gbps))
            .sum();
        assert!(carried >= 800, "re-solve must meet the raised demand");
        assert!(p2.objective > p1.objective);

        // Matches a from-scratch build at the new demand, bit-for-bit.
        let mut ip2 = ip.clone();
        ip2.set_demand(l, 800);
        let scratch = PlanModel::build(Scheme::FlexWan, &g, &ip2, &cfg(24))
            .solve(&opts())
            .unwrap();
        assert_eq!(p2.objective.to_bits(), scratch.objective.to_bits());
    }

    #[test]
    fn unaffected_cut_restores_trivially() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let mut pm = PlanModel::build(Scheme::FlexWan, &g, &ip, &cfg(16));
        pm.solve(&opts()).unwrap();
        // The plan rides the primary; cutting the unused detour loses
        // nothing.
        let cut = FailureScenario {
            id: 1,
            cuts: vec![EdgeId(1)],
            probability: 1.0,
        };
        let r = pm.restore_after_cut(&g, &cut, &[], &opts()).unwrap();
        assert_eq!(r.affected_gbps, 0);
        assert_eq!(r.restored_gbps, 0);
        assert!(r.wavelengths.is_empty());
    }
}
