//! Optical restoration (§8): maximize revived capacity after fiber cuts.
//!
//! * [`scenario`] — deterministic 1-failure and probabilistic cut sets;
//! * [`heuristic`] — the scalable greedy restorer;
//! * [`mip`] — the exact constraints-(7)–(13) formulation for validation;
//! * [`report`] — restoration capability and path-stretch metrics
//!   (Figures 15–16).

pub mod heuristic;
pub mod mip;
pub mod report;
pub mod scenario;

pub use heuristic::{
    flexwan_plus_extra_spares, restore, restore_cached, Restoration, RestoredWavelength,
};
pub use mip::{solve_exact as solve_restoration_exact, ExactRestoration};
pub use report::{report as restore_report, RestoreReport};
pub use scenario::{
    conduit_cut_scenarios, one_fiber_scenarios, probabilistic_scenarios, FailureScenario,
};
