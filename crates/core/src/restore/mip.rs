//! The exact restoration formulation of §8 (maximize restored capacity
//! under constraints (7)–(13)), built on `flexwan-solver`.
//!
//! As with planning, γ'-variables are pure binaries per (affected link,
//! restoration path, format, aligned start pixel); λ' and ξ' are
//! substitutions. The residual spectrum `φ_w` (slot status after planning
//! minus the failed wavelengths' reclaimed spectrum) enters constraint (9)
//! as per-slot availability. Used to validate the greedy restorer on
//! small instances.

use flexwan_solver::{LinExpr, Model, Sense, SolveOptions, SolverStats, Status};
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;
use flexwan_topo::ksp::k_shortest_paths;
use flexwan_topo::path::Path;

use crate::planning::format_dp::reachable_formats;
use crate::planning::heuristic::{Plan, PlannerConfig};
use crate::planning::spectrum::SpectrumState;
use crate::restore::scenario::FailureScenario;
use crate::wavelength::Wavelength;

/// An exact restoration optimum.
#[derive(Debug, Clone)]
pub struct ExactRestoration {
    /// Maximum restorable capacity, Gbps.
    pub restored_gbps: u64,
    /// Capacity lost to the scenario, Gbps.
    pub affected_gbps: u64,
    /// Solver counters for the exact solve (empty when no wavelength was
    /// affected and no MIP was built).
    pub stats: SolverStats,
}

/// Solves the §8 restoration MIP exactly. `extra_spares` as in
/// [`crate::restore::heuristic::restore`]. Returns `None` if the solver
/// hits its node limit with no incumbent (callers size instances small).
pub fn solve_exact(
    plan: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    scenario: &FailureScenario,
    extra_spares: &[u32],
    cfg: &PlannerConfig,
    opts: &SolveOptions,
) -> Option<ExactRestoration> {
    let banned = scenario.banned();
    let align = plan.scheme.alignment_pixels();
    let model_t = plan.scheme.transponder();
    let pixels = cfg.grid.pixels();

    // Residual spectrum: surviving wavelengths only (constraint (9)'s φ_w).
    let mut spectrum = SpectrumState::new(cfg.grid, optical.num_edges());
    let mut affected: Vec<&Wavelength> = Vec::new();
    for w in &plan.wavelengths {
        if w.path.edges.iter().any(|e| banned.contains(e)) {
            affected.push(w);
        } else {
            spectrum
                .occupy_exact(&w.path, &w.channel)
                .expect("surviving plan channels are conflict-free");
        }
    }
    // Per affected link: c'_e and N_e.
    let mut per_link: Vec<(usize, u64, u32)> = Vec::new(); // (link idx, c', N)
    for w in &affected {
        match per_link.iter_mut().find(|(li, _, _)| *li == w.link.0 as usize) {
            Some((_, c, n)) => {
                *c += u64::from(w.format.data_rate_gbps);
                *n += 1;
            }
            None => per_link.push((w.link.0 as usize, u64::from(w.format.data_rate_gbps), 1)),
        }
    }
    let affected_gbps: u64 = per_link.iter().map(|&(_, c, _)| c).sum();
    if affected_gbps == 0 {
        return Some(ExactRestoration {
            restored_gbps: 0,
            affected_gbps: 0,
            stats: SolverStats::default(),
        });
    }
    for (li, _, n) in &mut per_link {
        if !extra_spares.is_empty() {
            *n += extra_spares[*li];
        }
    }

    let mut m = Model::new();
    struct GammaVar {
        link_slot: usize, // index into per_link
        path: usize,
        rate: u32,
        width: u32,
        start: u32,
        var: flexwan_solver::Var,
    }
    let mut gammas: Vec<GammaVar> = Vec::new();
    let mut paths_per_slot: Vec<Vec<Path>> = Vec::new();
    for (slot, &(li, _, _)) in per_link.iter().enumerate() {
        let link = &ip.links()[li];
        let paths = k_shortest_paths(optical, link.src, link.dst, cfg.k_paths, &banned);
        for (ki, path) in paths.iter().enumerate() {
            for format in reachable_formats(model_t, path.length_km) {
                let w = u32::from(format.spacing.pixels());
                let mut q = 0u32;
                while q + w <= pixels {
                    // Prune starts overlapping residual occupancy on any
                    // fiber of the path (constraint (9) pre-filter).
                    let range = flexwan_optical::PixelRange::new(q, format.spacing);
                    let free = path
                        .edges
                        .iter()
                        .all(|e| spectrum.mask(*e).is_free(&range));
                    if free {
                        let var = m.binary(format!("r_s{slot}_k{ki}_d{}_q{q}", format.data_rate_gbps));
                        gammas.push(GammaVar {
                            link_slot: slot,
                            path: ki,
                            rate: format.data_rate_gbps,
                            width: w,
                            start: q,
                            var,
                        });
                    }
                    q += align;
                }
            }
        }
        paths_per_slot.push(paths);
    }

    // (7) restored ≤ c'_e and (8) transponders ≤ N_e, per affected link.
    for (slot, &(_, c, n)) in per_link.iter().enumerate() {
        let rate_expr = LinExpr::sum(
            gammas
                .iter()
                .filter(|g| g.link_slot == slot)
                .map(|g| f64::from(g.rate) * g.var),
        );
        m.le(rate_expr, c as f64);
        let count_expr = LinExpr::sum(
            gammas.iter().filter(|g| g.link_slot == slot).map(|g| 1.0 * g.var),
        );
        m.le(count_expr, f64::from(n));
    }

    // (9)+(10)–(13): per (surviving fiber, slot) at most one restored
    // wavelength (residual occupancy already pruned structurally).
    for fiber in optical.edges() {
        if banned.contains(&fiber.id) {
            continue;
        }
        for w in 0..pixels {
            let expr = LinExpr::sum(
                gammas
                    .iter()
                    .filter(|g| {
                        paths_per_slot[g.link_slot][g.path].uses_edge(fiber.id)
                            && g.start <= w
                            && w < g.start + g.width
                    })
                    .map(|g| 1.0 * g.var),
            );
            if expr.terms.len() > 1 {
                m.le(expr, 1.0);
            }
        }
    }

    // Maximize restored capacity.
    let obj = LinExpr::sum(gammas.iter().map(|g| f64::from(g.rate) * g.var));
    m.set_objective(Sense::Maximize, obj);
    let (sol, stats) = m.solve_with_stats(opts);
    match sol.status {
        Status::Optimal => {}
        Status::NodeLimit if !sol.objective.is_nan() => {}
        // Malformed-model sentinel: a formulation bug, not infeasibility.
        Status::Error => return None,
        _ => return None,
    }
    Some(ExactRestoration {
        restored_gbps: sol.objective.round() as u64,
        affected_gbps,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::heuristic::plan;
    use crate::restore::heuristic::restore;
    use crate::scheme::Scheme;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_topo::graph::EdgeId;

    fn square() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        (g, ip)
    }

    fn cfg(pixels: u32) -> PlannerConfig {
        PlannerConfig { grid: SpectrumGrid::new(pixels), k_paths: 2, ..Default::default() }
    }

    #[test]
    fn exact_matches_greedy_on_easy_instance() {
        let (g, ip) = square();
        let c = cfg(16);
        let p = plan(Scheme::FlexWan, &g, &ip, &c);
        let cut = FailureScenario { id: 0, cuts: vec![EdgeId(0)], probability: 1.0 };
        let exact =
            solve_exact(&p, &g, &ip, &cut, &[], &c, &SolveOptions::default()).unwrap();
        let greedy = restore(&p, &g, &ip, &cut, &[], &c);
        assert_eq!(exact.affected_gbps, greedy.affected_gbps);
        assert_eq!(exact.restored_gbps, 300);
        assert_eq!(greedy.restored_gbps, exact.restored_gbps);
    }

    #[test]
    fn exact_restoration_bounded_by_affected() {
        let (g, ip) = square();
        let c = cfg(16);
        let p = plan(Scheme::FlexWan, &g, &ip, &c);
        let cut = FailureScenario { id: 0, cuts: vec![EdgeId(0)], probability: 1.0 };
        // Plenty of extra spares: constraint (7) still caps at affected.
        let exact =
            solve_exact(&p, &g, &ip, &cut, &[9, 9], &c, &SolveOptions::default()).unwrap();
        assert!(exact.restored_gbps <= exact.affected_gbps);
    }

    #[test]
    fn no_loss_when_unused_fiber_cut() {
        let (g, ip) = square();
        let c = cfg(16);
        let p = plan(Scheme::FlexWan, &g, &ip, &c);
        let cut = FailureScenario { id: 1, cuts: vec![EdgeId(1)], probability: 1.0 };
        let exact =
            solve_exact(&p, &g, &ip, &cut, &[], &c, &SolveOptions::default()).unwrap();
        assert_eq!(exact.affected_gbps, 0);
        assert_eq!(exact.restored_gbps, 0);
    }
}
