//! The exact restoration formulation of §8 (maximize restored capacity
//! under constraints (7)–(13)), built on the shared [`crate::opt`]
//! variable-space layer over `flexwan-solver`.
//!
//! As with planning, γ'-variables are pure binaries per (affected link,
//! restoration path, format, aligned start pixel); λ' and ξ' are
//! substitutions. The residual spectrum `φ_w` (slot status after planning
//! minus the failed wavelengths' reclaimed spectrum) enters constraint (9)
//! as the variable space's admission filter. Used to validate the greedy
//! restorer on small instances; the *mutation* route to the same optimum
//! lives on [`crate::planning::PlanModel`].

use flexwan_solver::{Model, Sense, SolveOptions, SolverStats, Status};
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;
use flexwan_topo::ksp::k_shortest_paths;
use flexwan_topo::path::Path;

use crate::opt::WavelengthVarSpace;
use crate::planning::heuristic::{Plan, PlannerConfig};
use crate::planning::spectrum::SpectrumState;
use crate::restore::scenario::FailureScenario;
use crate::wavelength::Wavelength;

/// An exact restoration optimum.
#[derive(Debug, Clone)]
pub struct ExactRestoration {
    /// Maximum restorable capacity, Gbps.
    pub restored_gbps: u64,
    /// Capacity lost to the scenario, Gbps.
    pub affected_gbps: u64,
    /// Solver counters for the exact solve (empty when no wavelength was
    /// affected and no MIP was built).
    pub stats: SolverStats,
}

/// Solves the §8 restoration MIP exactly. `extra_spares` as in
/// [`crate::restore::heuristic::restore`]. Returns `None` if the solver
/// hits its node limit with no incumbent (callers size instances small).
pub fn solve_exact(
    plan: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    scenario: &FailureScenario,
    extra_spares: &[u32],
    cfg: &PlannerConfig,
    opts: &SolveOptions,
) -> Option<ExactRestoration> {
    let banned = scenario.banned();
    let pixels = cfg.grid.pixels();

    // Residual spectrum: surviving wavelengths only (constraint (9)'s φ_w).
    let mut spectrum = SpectrumState::new(cfg.grid, optical.num_edges());
    let mut affected: Vec<&Wavelength> = Vec::new();
    for w in &plan.wavelengths {
        if w.path.edges.iter().any(|e| banned.contains(e)) {
            affected.push(w);
        } else {
            spectrum
                .occupy_exact(&w.path, &w.channel)
                .expect("surviving plan channels are conflict-free");
        }
    }
    // Per affected link: c'_e and N_e, keyed accumulation in first-seen
    // order (the deterministic slot order of the variable space).
    let mut per_link: Vec<(usize, u64, u32)> = Vec::new(); // (link idx, c', N)
    let mut slot_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for w in &affected {
        let li = w.link.0 as usize;
        let slot = *slot_of.entry(li).or_insert_with(|| {
            per_link.push((li, 0, 0));
            per_link.len() - 1
        });
        per_link[slot].1 += u64::from(w.format.data_rate_gbps);
        per_link[slot].2 += 1;
    }
    let affected_gbps: u64 = per_link.iter().map(|&(_, c, _)| c).sum();
    if affected_gbps == 0 {
        return Some(ExactRestoration {
            restored_gbps: 0,
            affected_gbps: 0,
            stats: SolverStats::default(),
        });
    }
    for (li, _, n) in &mut per_link {
        if !extra_spares.is_empty() {
            *n += extra_spares[*li];
        }
    }

    let mut m = Model::new();
    let paths_per_slot: Vec<Vec<Path>> = per_link
        .iter()
        .map(|&(li, _, _)| {
            let link = &ip.links()[li];
            k_shortest_paths(optical, link.src, link.dst, cfg.k_paths, &banned)
        })
        .collect();
    // Starts overlapping residual occupancy on any fiber of the path are
    // pruned by the admission filter (constraint (9) pre-filter).
    let space = WavelengthVarSpace::enumerate(
        &mut m,
        plan.scheme,
        pixels,
        optical.num_edges(),
        "r_s",
        paths_per_slot,
        |path, range| path.edges.iter().all(|e| spectrum.mask(*e).is_free(range)),
    );

    // (7) restored ≤ c'_e and (8) transponders ≤ N_e, per affected link.
    for (slot, &(_, c, n)) in per_link.iter().enumerate() {
        m.group("restore_rate");
        m.le(space.rate_expr(slot), c as f64);
        m.group("restore_count");
        m.le(space.count_expr(slot), f64::from(n));
        m.end_group();
    }

    // (9)+(10)–(13): per (surviving fiber, slot) at most one restored
    // wavelength (residual occupancy already pruned structurally) —
    // single-candidate rows are vacuous here and skipped.
    m.group("conflict");
    space.conflict_rows(
        &mut m,
        optical
            .edges()
            .iter()
            .map(|e| e.id)
            .filter(|id| !banned.contains(id)),
        2,
    );
    m.end_group();

    // Maximize restored capacity.
    let obj = space.weighted_expr(|g| f64::from(g.format.data_rate_gbps));
    m.set_objective(Sense::Maximize, obj);
    let (sol, stats) = m.solve_with_stats(opts);
    match sol.status {
        Status::Optimal => {}
        Status::NodeLimit if !sol.objective.is_nan() => {}
        // Malformed-model sentinel: a formulation bug, not infeasibility.
        Status::Error => return None,
        _ => return None,
    }
    Some(ExactRestoration {
        restored_gbps: sol.objective.round() as u64,
        affected_gbps,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::heuristic::plan;
    use crate::restore::heuristic::restore;
    use crate::scheme::Scheme;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_topo::graph::EdgeId;

    fn square() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        (g, ip)
    }

    fn cfg(pixels: u32) -> PlannerConfig {
        PlannerConfig {
            grid: SpectrumGrid::new(pixels),
            k_paths: 2,
            ..Default::default()
        }
    }

    #[test]
    fn exact_matches_greedy_on_easy_instance() {
        let (g, ip) = square();
        let c = cfg(16);
        let p = plan(Scheme::FlexWan, &g, &ip, &c);
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        let exact = solve_exact(&p, &g, &ip, &cut, &[], &c, &SolveOptions::default()).unwrap();
        let greedy = restore(&p, &g, &ip, &cut, &[], &c);
        assert_eq!(exact.affected_gbps, greedy.affected_gbps);
        assert_eq!(exact.restored_gbps, 300);
        assert_eq!(greedy.restored_gbps, exact.restored_gbps);
    }

    #[test]
    fn exact_restoration_bounded_by_affected() {
        let (g, ip) = square();
        let c = cfg(16);
        let p = plan(Scheme::FlexWan, &g, &ip, &c);
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        // Plenty of extra spares: constraint (7) still caps at affected.
        let exact = solve_exact(&p, &g, &ip, &cut, &[9, 9], &c, &SolveOptions::default()).unwrap();
        assert!(exact.restored_gbps <= exact.affected_gbps);
    }

    #[test]
    fn no_loss_when_unused_fiber_cut() {
        let (g, ip) = square();
        let c = cfg(16);
        let p = plan(Scheme::FlexWan, &g, &ip, &c);
        let cut = FailureScenario {
            id: 1,
            cuts: vec![EdgeId(1)],
            probability: 1.0,
        };
        let exact = solve_exact(&p, &g, &ip, &cut, &[], &c, &SolveOptions::default()).unwrap();
        assert_eq!(exact.affected_gbps, 0);
        assert_eq!(exact.restored_gbps, 0);
    }
}
