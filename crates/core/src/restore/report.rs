//! Restoration metrics: the quantities behind Figures 15 and 16.

use crate::restore::heuristic::Restoration;

/// Metrics aggregated over a set of failure scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreReport {
    /// Per-scenario restoration capability (revived / lost).
    pub capabilities: Vec<f64>,
    /// Scenario probabilities (aligned with `capabilities`).
    pub probabilities: Vec<f64>,
    /// Per restored wavelength: restored path length − original path
    /// length, km (Figure 15(a)).
    pub length_gaps_km: Vec<i64>,
    /// Per restored wavelength: restored length / original length
    /// (the ">10×" extremes of §3.3).
    pub length_ratios: Vec<f64>,
}

/// Builds the report from per-scenario restorations.
pub fn report(restorations: &[(f64, Restoration)]) -> RestoreReport {
    let mut capabilities = Vec::with_capacity(restorations.len());
    let mut probabilities = Vec::with_capacity(restorations.len());
    let mut length_gaps_km = Vec::new();
    let mut length_ratios = Vec::new();
    for (prob, r) in restorations {
        capabilities.push(r.capability());
        probabilities.push(*prob);
        for rw in &r.restored {
            let restored_len = i64::from(rw.wavelength.path.length_km);
            let original_len = i64::from(rw.original_length_km);
            length_gaps_km.push(restored_len - original_len);
            if original_len > 0 {
                length_ratios.push(restored_len as f64 / original_len as f64);
            }
        }
    }
    RestoreReport {
        capabilities,
        probabilities,
        length_gaps_km,
        length_ratios,
    }
}

impl RestoreReport {
    /// Probability-weighted mean restoration capability (Figure 15(b)'s
    /// "average restoration capability in all failure scenarios").
    pub fn mean_capability(&self) -> f64 {
        let total_p: f64 = self.probabilities.iter().sum();
        if total_p == 0.0 {
            return 1.0;
        }
        self.capabilities
            .iter()
            .zip(&self.probabilities)
            .map(|(c, p)| c * p)
            .sum::<f64>()
            / total_p
    }

    /// Fraction of restored wavelengths whose path got longer
    /// (§8: "90 % of the restored paths are longer than their original").
    pub fn fraction_longer(&self) -> f64 {
        if self.length_gaps_km.is_empty() {
            return 0.0;
        }
        self.length_gaps_km.iter().filter(|&&g| g > 0).count() as f64
            / self.length_gaps_km.len() as f64
    }

    /// The largest restored-to-original length ratio observed.
    pub fn max_length_ratio(&self) -> f64 {
        self.length_ratios.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore::heuristic::Restoration;

    fn dummy(affected: u64, restored: u64, id: usize) -> Restoration {
        Restoration {
            scenario_id: id,
            affected_gbps: affected,
            restored_gbps: restored,
            restored: Vec::new(),
            per_link: Vec::new(),
        }
    }

    #[test]
    fn weighted_mean_capability() {
        let rs = vec![(0.5, dummy(100, 100, 0)), (0.5, dummy(100, 50, 1))];
        let rep = report(&rs);
        assert!((rep.mean_capability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_benign() {
        let rep = report(&[]);
        assert_eq!(rep.mean_capability(), 1.0);
        assert_eq!(rep.fraction_longer(), 0.0);
        assert_eq!(rep.max_length_ratio(), 0.0);
    }

    #[test]
    fn unaffected_scenarios_count_as_full() {
        let rs = vec![(1.0, dummy(0, 0, 0))];
        let rep = report(&rs);
        assert_eq!(rep.mean_capability(), 1.0);
    }
}
