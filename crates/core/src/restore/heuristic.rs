//! Optical restoration (§8): maximize revived capacity after fiber cuts.
//!
//! Given a deployed plan and a failure scenario:
//!
//! 1. wavelengths traversing a cut fiber are *affected*: their capacity is
//!    lost, their spectrum (on surviving fibers too) is reclaimed, and
//!    their transponders become the spare pool `N_e` (constraint (8));
//! 2. restoration paths are re-computed with KSP on the post-failure
//!    topology (the paper's `P'_{e,k}`);
//! 3. capacity is revived greedily, most-affected links first: on each
//!    restoration path, repeatedly place the highest-rate format that
//!    (a) does not overshoot the affected capacity `c'_e` (constraint
//!    (7)), (b) reaches over the restoration path (constraint (2)), and
//!    (c) fits the residual spectrum (constraints (3)–(5), via the same
//!    joint first-fit as planning).
//!
//! FlexWAN+ (Figure 16) adds half the transponders FlexWAN *saved* on each
//! link back into the spare pool; see
//! [`flexwan_plus_extra_spares`].

use std::sync::Arc;

use flexwan_topo::cache::RouteCache;
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::{IpLinkId, IpTopology};
use flexwan_topo::ksp::DijkstraScratch;
use flexwan_topo::route::{k_shortest_routes_scratch, Route};

use crate::planning::format_dp::{reachable_formats, select_formats};
use crate::planning::heuristic::{Plan, PlannerConfig};
use crate::planning::spectrum::SpectrumState;
use crate::restore::scenario::FailureScenario;
use crate::scheme::Scheme;
use crate::wavelength::Wavelength;

/// A wavelength revived on a restoration path.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoredWavelength {
    /// The wavelength as re-provisioned.
    pub wavelength: Wavelength,
    /// Length of the link's original (pre-failure) optical path, km — for
    /// the restored-vs-original gap of Figure 15(a).
    pub original_length_km: u32,
}

/// The outcome of restoring one failure scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Restoration {
    /// The scenario restored.
    pub scenario_id: usize,
    /// Capacity lost to the cuts, Gbps (`Σ c'_e`).
    pub affected_gbps: u64,
    /// Capacity revived, Gbps.
    pub restored_gbps: u64,
    /// The revived wavelengths.
    pub restored: Vec<RestoredWavelength>,
    /// Links that lost capacity, with (lost, revived) Gbps.
    pub per_link: Vec<(IpLinkId, u64, u64)>,
}

impl Restoration {
    /// Restoration capability: revived / lost (1.0 when nothing was lost —
    /// a scenario that cuts only unused fibers costs nothing).
    pub fn capability(&self) -> f64 {
        if self.affected_gbps == 0 {
            1.0
        } else {
            self.restored_gbps as f64 / self.affected_gbps as f64
        }
    }
}

/// Restores `scenario` against `plan`. `extra_spares[link.0]` adds spare
/// transponders beyond the failed ones (all-zero slice = plain FlexWAN /
/// baseline behaviour; see [`flexwan_plus_extra_spares`]).
pub fn restore(
    plan: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    scenario: &FailureScenario,
    extra_spares: &[u32],
    cfg: &PlannerConfig,
) -> Restoration {
    restore_impl(plan, optical, ip, scenario, extra_spares, cfg, None)
}

/// [`restore`] with the post-failure candidate routes served by `cache`.
/// Restoration routes depend on the banned (cut) fiber set but not on the
/// scheme or demand scale, so sweeping 3 schemes × N scales over the same
/// scenario set re-enumerates nothing after the first pass. Output is
/// bit-identical to [`restore`].
pub fn restore_cached(
    plan: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    scenario: &FailureScenario,
    extra_spares: &[u32],
    cfg: &PlannerConfig,
    cache: &RouteCache,
) -> Restoration {
    restore_impl(plan, optical, ip, scenario, extra_spares, cfg, Some(cache))
}

fn restore_impl(
    plan: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    scenario: &FailureScenario,
    extra_spares: &[u32],
    cfg: &PlannerConfig,
    cache: Option<&RouteCache>,
) -> Restoration {
    assert!(extra_spares.is_empty() || extra_spares.len() >= ip.num_links());
    let banned = scenario.banned();
    let align = plan.scheme.alignment_pixels();
    let model = plan.scheme.transponder();

    // Partition wavelengths; rebuild surviving spectrum occupancy.
    let mut spectrum = SpectrumState::new(cfg.grid, optical.num_edges());
    let mut affected: Vec<&Wavelength> = Vec::new();
    for w in &plan.wavelengths {
        if w.path.edges.iter().any(|e| banned.contains(e)) {
            affected.push(w);
        } else {
            spectrum
                .occupy_exact(&w.path, &w.channel)
                .expect("surviving plan channels are conflict-free");
        }
    }

    // Per-link lost capacity, spare transponders and original path length.
    struct Hit {
        link: IpLinkId,
        lost_gbps: u64,
        spares: u32,
        original_length_km: u32,
    }
    // Keyed accumulation (first-seen order, re-sorted below) instead of a
    // per-wavelength linear scan.
    let mut hits: Vec<Hit> = Vec::new();
    let mut hit_index: std::collections::HashMap<IpLinkId, usize> =
        std::collections::HashMap::new();
    for w in &affected {
        let at = *hit_index.entry(w.link).or_insert_with(|| {
            hits.push(Hit {
                link: w.link,
                lost_gbps: 0,
                spares: 0,
                original_length_km: 0,
            });
            hits.len() - 1
        });
        let h = &mut hits[at];
        h.lost_gbps += u64::from(w.format.data_rate_gbps);
        h.spares += 1;
        h.original_length_km = h.original_length_km.max(w.path.length_km);
    }
    for h in &mut hits {
        if !extra_spares.is_empty() {
            h.spares += extra_spares[h.link.0 as usize];
        }
    }
    // Most-affected links first (deterministic tie-break by link id).
    hits.sort_by_key(|h| (std::cmp::Reverse(h.lost_gbps), h.link));

    let affected_gbps: u64 = hits.iter().map(|h| h.lost_gbps).sum();
    let mut restored: Vec<RestoredWavelength> = Vec::new();
    let mut per_link = Vec::new();

    let mut scratch = DijkstraScratch::new();
    for hit in &hits {
        let link = ip.link(hit.link);
        let routes: Arc<Vec<Route>> = match cache {
            Some(c) => c.routes(optical, link.src, link.dst, cfg.k_paths, &banned),
            None => Arc::new(k_shortest_routes_scratch(
                optical,
                link.src,
                link.dst,
                cfg.k_paths,
                &banned,
                &mut scratch,
            )),
        };
        let mut remaining = hit.lost_gbps;
        let mut spares = hit.spares;
        'routes: for (k, route) in routes.iter().enumerate() {
            loop {
                if remaining < 100 || spares == 0 {
                    break 'routes;
                }
                // Highest revivable rate not overshooting c'_e, narrowest
                // spacing first within a rate (constraint (7) + objective).
                let mut candidates = reachable_formats(model, route.length_km);
                candidates.retain(|f| u64::from(f.data_rate_gbps) <= remaining);
                candidates.sort_by_key(|f| (std::cmp::Reverse(f.data_rate_gbps), f.spacing));
                let mut placed = false;
                for format in candidates {
                    if let Some((channel, chosen)) =
                        spectrum.allocate_route(route, format.spacing, align)
                    {
                        remaining -= u64::from(format.data_rate_gbps);
                        spares -= 1;
                        restored.push(RestoredWavelength {
                            wavelength: Wavelength {
                                link: hit.link,
                                path_index: k,
                                path: route.realize(optical, &chosen),
                                format,
                                channel,
                            },
                            original_length_km: hit.original_length_km,
                        });
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    continue 'routes; // this route's spectrum is exhausted
                }
            }
        }
        per_link.push((hit.link, hit.lost_gbps, hit.lost_gbps - remaining));
    }

    let restored_gbps = per_link.iter().map(|&(_, _, r)| r).sum();
    Restoration {
        scenario_id: scenario.id,
        affected_gbps,
        restored_gbps,
        restored,
        per_link,
    }
}

/// FlexWAN+ spare pool (Figure 16): for each IP link, half of the
/// transponders FlexWAN saved relative to RADWAN on that link's shortest
/// path, rounded up. Computed from the format-selection DP alone (spare
/// transponders sit at the terminals; they occupy no spectrum until used).
pub fn flexwan_plus_extra_spares(
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
) -> Vec<u32> {
    let none = std::collections::HashSet::new();
    ip.links()
        .iter()
        .map(|l| {
            let Some(path) = flexwan_topo::ksp::shortest_path(optical, l.src, l.dst, &none) else {
                return 0;
            };
            let count = |scheme: Scheme| -> Option<u32> {
                select_formats(
                    scheme.transponder(),
                    l.demand_gbps,
                    path.length_km,
                    cfg.epsilon,
                )
                .map(|v| v.len() as u32)
            };
            match (count(Scheme::Radwan), count(Scheme::FlexWan)) {
                (Some(rad), Some(flex)) if rad > flex => (rad - flex).div_ceil(2),
                _ => 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::heuristic::plan;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_topo::graph::EdgeId;

    /// Square topology: the primary a–b fiber (600 km) plus a long detour
    /// a–c–b (1200 km), mirroring §3.3's restoration example.
    fn square() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600); // primary
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600); // detour: 1200 km total
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        (g, ip)
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        }
    }

    #[test]
    fn section_3_3_example_radwan_degrades_flexwan_revives() {
        let (g, ip) = square();
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };

        // RADWAN: 300 G over 600 km; restoration path 1200 km exceeds the
        // 8QAM reach (1100 km) → drops to 200 G: capability 2/3.
        let rad = plan(Scheme::Radwan, &g, &ip, &cfg());
        assert!(rad.is_feasible());
        let r = restore(&rad, &g, &ip, &cut, &[], &cfg());
        assert_eq!(r.affected_gbps, 300);
        assert_eq!(r.restored_gbps, 200);
        assert!((r.capability() - 2.0 / 3.0).abs() < 1e-9);

        // FlexWAN: widens the spacing (300 G @ 87.5 GHz reaches 1500 km)
        // and revives everything.
        let flex = plan(Scheme::FlexWan, &g, &ip, &cfg());
        let r = restore(&flex, &g, &ip, &cut, &[], &cfg());
        assert_eq!(r.restored_gbps, 300);
        assert!((r.capability() - 1.0).abs() < 1e-9);
        assert_eq!(r.restored[0].wavelength.format.spacing.ghz(), 87.5);
    }

    #[test]
    fn cached_restore_is_bit_identical_and_keyed_by_cut_set() {
        let (g, ip) = square();
        let cache = RouteCache::new();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg());
        for cut_edge in [0u32, 1, 2] {
            let cut = FailureScenario {
                id: cut_edge as usize,
                cuts: vec![EdgeId(cut_edge)],
                probability: 1.0,
            };
            let plain = restore(&p, &g, &ip, &cut, &[], &cfg());
            let cached = restore_cached(&p, &g, &ip, &cut, &[], &cfg(), &cache);
            assert_eq!(plain, cached, "cut {cut_edge}");
        }
        // Repeating the sweep must be all hits, no recomputation.
        let misses = cache.misses();
        for cut_edge in [0u32, 1, 2] {
            let cut = FailureScenario {
                id: cut_edge as usize,
                cuts: vec![EdgeId(cut_edge)],
                probability: 1.0,
            };
            let _ = restore_cached(&p, &g, &ip, &cut, &[], &cfg(), &cache);
        }
        assert_eq!(cache.misses(), misses, "second sweep recomputed routes");
    }

    #[test]
    fn restored_paths_avoid_cut_fibers() {
        let (g, ip) = square();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg());
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        let r = restore(&p, &g, &ip, &cut, &[], &cfg());
        for rw in &r.restored {
            assert!(!rw.wavelength.path.uses_edge(EdgeId(0)));
            assert!(rw.wavelength.format.reach_km >= rw.wavelength.path.length_km);
        }
    }

    #[test]
    fn unaffected_scenario_has_full_capability() {
        let (g, ip) = square();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg());
        // Cut a fiber the plan does not use (the detour).
        let cut = FailureScenario {
            id: 1,
            cuts: vec![EdgeId(1)],
            probability: 1.0,
        };
        let r = restore(&p, &g, &ip, &cut, &[], &cfg());
        assert_eq!(r.affected_gbps, 0);
        assert_eq!(r.capability(), 1.0);
        assert!(r.restored.is_empty());
    }

    #[test]
    fn restoration_respects_surviving_spectrum() {
        // Make the detour spectrally tiny so restoration cannot fully fit.
        let (g, ip) = square();
        let tight = PlannerConfig {
            grid: SpectrumGrid::new(7),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &tight);
        assert!(p.is_feasible()); // 300 G @ 75 GHz = 6 px fits in 7
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        let r = restore(&p, &g, &ip, &cut, &[], &tight);
        // Restoration path needs 87.5 GHz = 7 px for 300 G; it fits the
        // empty detour exactly — but a 7-px grid cannot host 7 px if any
        // pixel is taken; with the detour empty it can.
        assert_eq!(r.restored_gbps, 300);
        // Now verify the conflict case: pre-occupy the detour by adding a
        // second link that lives there.
        let mut ip2 = IpTopology::new();
        ip2.add_link(
            flexwan_topo::graph::NodeId(0),
            flexwan_topo::graph::NodeId(1),
            300,
        );
        ip2.add_link(
            flexwan_topo::graph::NodeId(0),
            flexwan_topo::graph::NodeId(2),
            300,
        );
        let p2 = plan(Scheme::FlexWan, &g, &ip2, &tight);
        assert!(p2.is_feasible());
        let r2 = restore(&p2, &g, &ip2, &cut, &[], &tight);
        // Link a–c holds 6 px of the a–c fiber, leaving 1 px: the 7 px
        // restoration channel cannot fit → capability 0 for the cut link.
        assert_eq!(r2.restored_gbps, 0);
        assert!(r2.capability() < 1.0);
    }

    #[test]
    fn spares_cap_restoration() {
        // Force restoration to a longer path where formats carry less:
        // reviving 300 G needs ≥2 wavelengths but only 1 spare exists.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 100); // primary
        g.add_edge(a, c, 1200);
        g.add_edge(c, b, 1200); // detour 2400 km
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg());
        assert_eq!(p.transponder_count(), 1); // one 300 G wavelength
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        let r = restore(&p, &g, &ip, &cut, &[], &cfg());
        // 2400 km: best SVT rate is 200 G (75 GHz reach 2000? no — 2400
        // needs 100 G @ 75 GHz, reach 5000; 200 G tops at 2000). One spare
        // → 100 G revived of 300 G.
        assert_eq!(r.restored_gbps, 100);
        // FlexWAN+ spares lift it: with 2 extra spares, 300 G of demand
        // revives 100 G × 3.
        let r_plus = restore(&p, &g, &ip, &cut, &[2], &cfg());
        assert_eq!(r_plus.restored_gbps, 300);
    }

    #[test]
    fn flexwan_plus_spares_come_from_savings() {
        let (g, ip) = square();
        let spares = flexwan_plus_extra_spares(&g, &ip, &cfg());
        // 300 G at 600 km: RADWAN 1 × 300 G, FlexWAN 1 × 300 G → no
        // savings on this link.
        assert_eq!(spares, vec![0]);
        // A fat short link: 800 G at 600 km → RADWAN 3 (300+300+200),
        // FlexWAN 2 (400+400 @ 75)… savings 1 → ceil(1/2) = 1.
        let mut ip2 = IpTopology::new();
        ip2.add_link(
            flexwan_topo::graph::NodeId(0),
            flexwan_topo::graph::NodeId(1),
            800,
        );
        let spares2 = flexwan_plus_extra_spares(&g, &ip2, &cfg());
        assert_eq!(spares2, vec![1]);
    }

    #[test]
    fn never_overshoots_affected_capacity() {
        let (g, ip) = square();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg());
        let cut = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        let r = restore(&p, &g, &ip, &cut, &[9], &cfg());
        assert!(
            r.restored_gbps <= r.affected_gbps,
            "constraint (7) violated"
        );
    }
}
