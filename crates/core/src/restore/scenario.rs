//! Failure scenarios (§8): deterministic 1-failures and probabilistic
//! fiber-cut scenarios per the link failure models of [17, 40].

use flexwan_util::rng::ChaCha8Rng;

use flexwan_topo::graph::{EdgeId, Graph};

/// A fiber-cut scenario: the set of simultaneously cut fibers.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureScenario {
    /// Scenario index within its set.
    pub id: usize,
    /// The cut fibers.
    pub cuts: Vec<EdgeId>,
    /// Scenario probability (uniform for the deterministic 1-failure set;
    /// length-weighted for the probabilistic set).
    pub probability: f64,
}

impl FailureScenario {
    /// Whether fiber `e` is cut in this scenario.
    pub fn is_cut(&self, e: EdgeId) -> bool {
        self.cuts.contains(&e)
    }

    /// The cut set as a hash set (the `banned` argument of the path
    /// algorithms).
    pub fn banned(&self) -> std::collections::HashSet<EdgeId> {
        self.cuts.iter().copied().collect()
    }
}

/// Every single-fiber-cut scenario (the deterministic k=1 failure model of
/// \[40\]), uniformly weighted.
pub fn one_fiber_scenarios(g: &Graph) -> Vec<FailureScenario> {
    let n = g.num_edges();
    g.edges()
        .iter()
        .map(|e| FailureScenario {
            id: e.id.0 as usize,
            cuts: vec![e.id],
            probability: 1.0 / n as f64,
        })
        .collect()
}

/// One scenario per *conduit*: parallel fibers between the same node pair
/// share a physical conduit, so a backhoe severs them together. This is
/// the failure set the §8 evaluation uses (a "fiber cut" takes out the
/// whole cable, not one pair).
pub fn conduit_cut_scenarios(g: &Graph) -> Vec<FailureScenario> {
    let groups = flexwan_topo::route::conduits(g);
    let n = groups.len();
    groups
        .into_iter()
        .enumerate()
        .map(|(id, cuts)| FailureScenario {
            id,
            cuts,
            probability: 1.0 / n as f64,
        })
        .collect()
}

/// `n` probabilistic scenarios (the model of \[17\]): each scenario cuts one
/// or (with probability `double_cut_prob`) two fibers, drawn with
/// probability proportional to fiber length — long-haul fibers are cut
/// more often (construction work scales with route length).
pub fn probabilistic_scenarios(
    g: &Graph,
    n: usize,
    double_cut_prob: f64,
    seed: u64,
) -> Vec<FailureScenario> {
    assert!((0.0..=1.0).contains(&double_cut_prob));
    assert!(g.num_edges() >= 2, "need at least two fibers");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let total: u64 = g.edges().iter().map(|e| u64::from(e.length_km)).sum();
    let draw = |rng: &mut ChaCha8Rng| -> EdgeId {
        let mut t = rng.gen_range(0..total);
        for e in g.edges() {
            let l = u64::from(e.length_km);
            if t < l {
                return e.id;
            }
            t -= l;
        }
        g.edges().last().expect("non-empty").id
    };
    (0..n)
        .map(|id| {
            let first = draw(&mut rng);
            let mut cuts = vec![first];
            if rng.gen_f64() < double_cut_prob {
                let mut second = draw(&mut rng);
                while second == first {
                    second = draw(&mut rng);
                }
                cuts.push(second);
            }
            FailureScenario {
                id,
                cuts,
                probability: 1.0 / n as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 100);
        g.add_edge(b, c, 2000); // long fiber, cut often
        g.add_edge(c, d, 100);
        g.add_edge(d, a, 100);
        g
    }

    #[test]
    fn one_fiber_covers_every_edge() {
        let g = square();
        let s = one_fiber_scenarios(&g);
        assert_eq!(s.len(), 4);
        let total_p: f64 = s.iter().map(|x| x.probability).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
        for (i, sc) in s.iter().enumerate() {
            assert_eq!(sc.cuts.len(), 1);
            assert!(sc.is_cut(EdgeId(i as u32)));
        }
    }

    #[test]
    fn conduit_scenarios_group_parallels() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 100);
        g.add_edge(a, b, 102); // same conduit
        g.add_edge(b, c, 300);
        let s = conduit_cut_scenarios(&g);
        assert_eq!(s.len(), 2);
        let ab = s.iter().find(|sc| sc.cuts.len() == 2).expect("a-b conduit");
        assert!(ab.is_cut(EdgeId(0)) && ab.is_cut(EdgeId(1)));
        let total_p: f64 = s.iter().map(|x| x.probability).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_weighted_by_length() {
        let g = square();
        let s = probabilistic_scenarios(&g, 400, 0.0, 5);
        let long_cuts = s.iter().filter(|sc| sc.is_cut(EdgeId(1))).count();
        // Fiber 1 carries 2000 of 2300 km → ~87 % of cuts.
        assert!(long_cuts > 300, "long fiber cut only {long_cuts}/400 times");
    }

    #[test]
    fn double_cuts_present_and_distinct() {
        let g = square();
        let s = probabilistic_scenarios(&g, 200, 0.5, 9);
        let doubles: Vec<_> = s.iter().filter(|sc| sc.cuts.len() == 2).collect();
        assert!(!doubles.is_empty());
        for d in doubles {
            assert_ne!(d.cuts[0], d.cuts[1]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = square();
        assert_eq!(
            probabilistic_scenarios(&g, 50, 0.3, 1),
            probabilistic_scenarios(&g, 50, 0.3, 1)
        );
    }
}
