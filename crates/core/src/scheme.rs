//! The three optical-backbone architectures compared throughout the paper
//! (Table 1): fixed-rate 100G-WAN, rate-adaptive RADWAN, and FlexWAN.
//!
//! A [`Scheme`] bundles the transponder generation with the OLS grid
//! behaviour, so the planning and restoration algorithms treat all three
//! uniformly — the baselines differ only in the capability tables and the
//! spectrum-alignment rule, exactly as in the paper.

use flexwan_optical::spectrum::PixelWidth;
use flexwan_optical::transponder::{Bvt, FixedGrid100G, Svt, TransponderModel};
use flexwan_optical::WssKind;

/// An optical-backbone architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Fixed-rate WAN: 100 Gbps over a rigid 50 GHz grid (Microsoft-style
    /// [27, 28]).
    FixedGrid100G,
    /// Rate-adaptive WAN: BVTs over a rigid 75 GHz grid [47, 49].
    Radwan,
    /// FlexWAN: SVTs over the pixel-wise spectrum-sliced OLS.
    FlexWan,
}

impl Scheme {
    /// All schemes, in the paper's presentation order.
    pub const ALL: [Scheme; 3] = [Scheme::FixedGrid100G, Scheme::Radwan, Scheme::FlexWan];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::FixedGrid100G => "100G-WAN",
            Scheme::Radwan => "RADWAN",
            Scheme::FlexWan => "FlexWAN",
        }
    }

    /// The transponder generation deployed under this scheme.
    pub fn transponder(self) -> &'static dyn TransponderModel {
        match self {
            Scheme::FixedGrid100G => &FixedGrid100G,
            Scheme::Radwan => &Bvt,
            Scheme::FlexWan => &Svt,
        }
    }

    /// The WSS technology of the scheme's OLS equipment.
    pub fn wss(self) -> WssKind {
        match self {
            Scheme::FixedGrid100G => WssKind::FixedGrid {
                spacing: PixelWidth::new(4),
            },
            Scheme::Radwan => WssKind::FixedGrid {
                spacing: PixelWidth::new(6),
            },
            Scheme::FlexWan => WssKind::PixelWise,
        }
    }

    /// Spectrum-allocation alignment in pixels: fixed-grid schemes may only
    /// start channels on grid boundaries; FlexWAN starts anywhere.
    pub fn alignment_pixels(self) -> u32 {
        match self.wss() {
            WssKind::FixedGrid { spacing } => u32::from(spacing.pixels()),
            WssKind::PixelWise => 1,
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_feature_matrix() {
        // Table 1: data rate fixed/variable/variable; spacing
        // fixed/fixed/variable; passband fix-grid/fix-grid/dynamic.
        assert_eq!(Scheme::FixedGrid100G.transponder().rates(), vec![100]);
        assert_eq!(Scheme::Radwan.transponder().rates(), vec![100, 200, 300]);
        assert!(Scheme::FlexWan.transponder().rates().len() == 8);

        // Spacing variability: number of distinct spacings.
        let spacings = |s: Scheme| {
            let mut v: Vec<u16> = s
                .transponder()
                .formats()
                .iter()
                .map(|f| f.spacing.pixels())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(spacings(Scheme::FixedGrid100G), vec![4]);
        assert_eq!(spacings(Scheme::Radwan), vec![6]);
        assert_eq!(spacings(Scheme::FlexWan).len(), 9);

        assert_eq!(Scheme::FixedGrid100G.alignment_pixels(), 4);
        assert_eq!(Scheme::Radwan.alignment_pixels(), 6);
        assert_eq!(Scheme::FlexWan.alignment_pixels(), 1);
    }

    #[test]
    fn grid_matches_transponder_spacing() {
        // For the rigid schemes, every format's spacing must equal the OLS
        // grid or the passbands could never match the wavelengths.
        for s in [Scheme::FixedGrid100G, Scheme::Radwan] {
            let WssKind::FixedGrid { spacing } = s.wss() else {
                panic!("{s} should be fixed-grid")
            };
            for f in s.transponder().formats() {
                assert_eq!(f.spacing, spacing, "{s}: {f}");
            }
        }
    }

    #[test]
    fn names_render() {
        assert_eq!(Scheme::FlexWan.to_string(), "FlexWAN");
        assert_eq!(Scheme::ALL.len(), 3);
    }
}
