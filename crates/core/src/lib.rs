//! FlexWAN core: the paper's primary contribution.
//!
//! * [`scheme`] — the three backbone architectures (100G-WAN, RADWAN,
//!   FlexWAN) behind one interface;
//! * [`wavelength`] — the provisioned-wavelength type;
//! * [`opt`] — the shared optimization-model layer: typed variable
//!   spaces (γ wavelengths, path flows) with prebuilt index buckets on
//!   which every exact formulation below is built;
//! * [`planning`] — cost-minimal WAN capacity provisioning (Algorithm 1):
//!   exact MIP + scalable heuristic + reporting;
//! * [`mod@restore`] — optical restoration (§8): failure scenarios, greedy and
//!   exact restorers, capability reporting;
//! * [`scenario`] — the multi-failure × demand-uncertainty scenario
//!   engine (beyond the paper): k-cut enumeration/sampling, demand
//!   perturbations, and the availability surface;
//! * [`te`] — IP-layer traffic engineering (path-based multi-commodity
//!   flow) quantifying what planned/restored capacity means for traffic;
//! * [`observe`] — observed wrappers recording planning/restoration runs
//!   as spans and metrics (additive; outputs stay bit-identical).
//!
//! Everything is deterministic: same inputs ⇒ same plan, byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defrag;
pub mod observe;
pub mod opt;
pub mod planning;
pub mod protect;
pub mod restore;
pub mod scenario;
pub mod scheme;
pub mod te;
pub mod wavelength;

pub use observe::{
    plan_observed, record_availability_surface, record_opt_model, record_route_cache,
    restore_observed,
};
pub use opt::{FlowVarSpace, GammaId, GammaVar, WavelengthVarSpace};
pub use planning::{max_feasible_scale, plan, plan_cached, Plan, PlannerConfig};
pub use protect::{plan_protected, plan_protected_cached, ProtectedPlan};
pub use restore::{one_fiber_scenarios, restore, restore_cached, FailureScenario, Restoration};
pub use scenario::{
    demand_scenarios, k_cut_scenarios, sampled_k_cut_scenarios, scenario_suite,
    AvailabilitySurface, DemandScenario, EngineConfig, ScenarioEngine, SurfaceCell,
};
pub use scheme::Scheme;
pub use wavelength::Wavelength;
