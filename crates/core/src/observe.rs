//! Observed entry points for planning and restoration.
//!
//! Thin wrappers over [`plan`] and [`restore`] that record an end-to-end span
//! (optionally nested under a caller-supplied parent), latency histograms
//! and outcome gauges into an [`Obs`] bundle. The planners themselves stay
//! untouched: observability is additive, never load-bearing — the
//! deterministic outputs are bit-identical with and without it.

use flexwan_obs::{Obs, Span};
use flexwan_topo::cache::RouteCache;
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;

use crate::planning::{plan, Plan, PlannerConfig};
use crate::restore::{restore, FailureScenario, Restoration};
use crate::scheme::Scheme;

/// [`plan`] with the run recorded into `obs`: a `planning.plan` span
/// (child of `parent` when given) carrying scheme/size/outcome fields, a
/// `planning_plan_seconds` latency observation and outcome gauges.
pub fn plan_observed(
    obs: &Obs,
    parent: Option<&Span>,
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
) -> Plan {
    let span = match parent {
        Some(p) => p.child("planning.plan"),
        None => obs.span("planning.plan"),
    };
    span.field("scheme", format!("{scheme:?}"));
    span.field("ip_links", ip.num_links());
    span.field("fibers", optical.num_edges());
    let start = obs.now_ns();
    let p = plan(scheme, optical, ip, cfg);
    span.field("wavelengths", p.wavelengths.len());
    span.field("unmet_gbps", p.unmet_gbps());
    let reg = obs.registry();
    let scheme_label = format!("{scheme:?}");
    reg.counter_with("planning_runs_total", &[("scheme", &scheme_label)])
        .inc();
    reg.gauge_with("planning_wavelengths", &[("scheme", &scheme_label)])
        .set(p.wavelengths.len() as f64);
    reg.gauge_with("planning_unmet_gbps", &[("scheme", &scheme_label)])
        .set(p.unmet_gbps() as f64);
    obs.observe_since("planning_plan_seconds", start);
    p
}

/// [`restore`] with the run recorded into `obs`: a `restore.scenario`
/// span (child of `parent` when given) carrying cut/capability fields, a
/// `restore_seconds` latency observation and the capability gauge.
#[allow(clippy::too_many_arguments)]
pub fn restore_observed(
    obs: &Obs,
    parent: Option<&Span>,
    plan: &Plan,
    optical: &Graph,
    ip: &IpTopology,
    scenario: &FailureScenario,
    extra_spares: &[u32],
    cfg: &PlannerConfig,
) -> Restoration {
    let span = match parent {
        Some(p) => p.child("restore.scenario"),
        None => obs.span("restore.scenario"),
    };
    span.field("scenario", scenario.id);
    span.field("cuts", scenario.cuts.len());
    let start = obs.now_ns();
    let r = restore(plan, optical, ip, scenario, extra_spares, cfg);
    span.field("affected_gbps", r.affected_gbps);
    span.field("restored_gbps", r.restored_gbps);
    span.field("capability", r.capability());
    let reg = obs.registry();
    reg.counter("restore_runs_total").inc();
    reg.counter("restore_affected_gbps_total")
        .add(r.affected_gbps);
    reg.counter("restore_restored_gbps_total")
        .add(r.restored_gbps);
    reg.gauge("restore_capability").set(r.capability());
    obs.observe_since("restore_seconds", start);
    r
}

/// Snapshots `cache`'s counters into `obs` as gauges
/// (`route_cache_{hits,misses,entries}` labeled by `name`): call at sweep
/// checkpoints to watch the memoization pay off (hits/misses should
/// approach the sweep's scheme × scale redundancy).
pub fn record_route_cache(obs: &Obs, name: &str, cache: &RouteCache) {
    let reg = obs.registry();
    reg.gauge_with("route_cache_hits", &[("cache", name)])
        .set(cache.hits() as f64);
    reg.gauge_with("route_cache_misses", &[("cache", name)])
        .set(cache.misses() as f64);
    reg.gauge_with("route_cache_entries", &[("cache", name)])
        .set(cache.len() as f64);
}

/// Snapshots a standing [`PlanModel`](crate::planning::PlanModel)'s shape
/// into `obs` as gauges (`opt_model_{gammas,rows,active_rows}` labeled by
/// `model`): call after build or around mutation checkpoints to watch the
/// incremental layer keep the model standing — the row count stays
/// constant across cuts while the active-row count dips and recovers.
pub fn record_opt_model(obs: &Obs, name: &str, model: &crate::planning::PlanModel) {
    let reg = obs.registry();
    reg.gauge_with("opt_model_gammas", &[("model", name)])
        .set(model.space().gammas().len() as f64);
    reg.gauge_with("opt_model_rows", &[("model", name)])
        .set(model.model().num_constraints() as f64);
    reg.gauge_with("opt_model_active_rows", &[("model", name)])
        .set(model.model().num_active_constraints() as f64);
}

/// Snapshots an [`AvailabilitySurface`](crate::scenario::AvailabilitySurface)
/// into `obs` as gauges, one series per (k, spare-budget) cell labeled by
/// `surface`: `scenario_availability`, `scenario_survived`,
/// `scenario_restored_gbps`, plus the cell count
/// (`scenario_surface_cells`) and total evaluations
/// (`scenario_evaluations`). Call after an engine sweep to watch the
/// surface move as budgets or scenario sets change.
pub fn record_availability_surface(
    obs: &Obs,
    name: &str,
    surface: &crate::scenario::AvailabilitySurface,
) {
    let reg = obs.registry();
    reg.gauge_with("scenario_surface_cells", &[("surface", name)])
        .set(surface.cells.len() as f64);
    reg.gauge_with("scenario_evaluations", &[("surface", name)])
        .set(surface.cells.iter().map(|c| c.scenarios).sum::<u64>() as f64);
    for c in &surface.cells {
        let k = c.k.to_string();
        let spares = c.spare_budget.to_string();
        let labels = [("surface", name), ("k", k.as_str()), ("spares", &spares)];
        reg.gauge_with("scenario_availability", &labels)
            .set(c.availability());
        reg.gauge_with("scenario_survived", &labels)
            .set(c.survived as f64);
        reg.gauge_with("scenario_restored_gbps", &labels)
            .set(c.restored_gbps as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore::one_fiber_scenarios;
    use flexwan_optical::spectrum::SpectrumGrid;

    fn world() -> (Graph, IpTopology, PlannerConfig) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        (g, ip, cfg)
    }

    #[test]
    fn observed_plan_matches_plain_plan_and_records() {
        let (g, ip, cfg) = world();
        let obs = Obs::default();
        let observed = plan_observed(&obs, None, Scheme::FlexWan, &g, &ip, &cfg);
        let plain = plan(Scheme::FlexWan, &g, &ip, &cfg);
        assert_eq!(observed.wavelengths.len(), plain.wavelengths.len());
        assert_eq!(observed.spectrum_usage_ghz(), plain.spectrum_usage_ghz());
        let prom = obs.metrics_prometheus();
        assert!(
            prom.contains("planning_runs_total{scheme=\"FlexWan\"} 1"),
            "{prom}"
        );
        assert!(obs.span_tree().contains("planning.plan"));
    }

    #[test]
    fn route_cache_gauges_track_counters() {
        let (g, ip, cfg) = world();
        let obs = Obs::default();
        let cache = RouteCache::new();
        let _ = crate::planning::plan_cached(Scheme::FlexWan, &g, &ip, &cfg, &cache);
        let _ = crate::planning::plan_cached(Scheme::Radwan, &g, &ip, &cfg, &cache);
        record_route_cache(&obs, "sweep", &cache);
        let prom = obs.metrics_prometheus();
        assert!(
            prom.contains("route_cache_hits{cache=\"sweep\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("route_cache_misses{cache=\"sweep\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("route_cache_entries{cache=\"sweep\"} 1"),
            "{prom}"
        );
    }

    #[test]
    fn opt_model_gauges_reflect_standing_shape() {
        let (g, ip, cfg) = world();
        let obs = Obs::default();
        let pm = crate::planning::PlanModel::build(Scheme::FlexWan, &g, &ip, &cfg);
        record_opt_model(&obs, "standing", &pm);
        let prom = obs.metrics_prometheus();
        let gammas = pm.space().gammas().len();
        assert!(
            prom.contains(&format!("opt_model_gammas{{model=\"standing\"}} {gammas}")),
            "{prom}"
        );
        // Nothing deactivated yet: every row is active.
        assert_eq!(
            pm.model().num_constraints(),
            pm.model().num_active_constraints()
        );
    }

    #[test]
    fn observed_restore_nests_under_parent_span() {
        let (g, ip, cfg) = world();
        let obs = Obs::default();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let scenario = &one_fiber_scenarios(&g)[0];
        let root = obs.span("drill");
        let r = restore_observed(&obs, Some(&root), &p, &g, &ip, scenario, &[], &cfg);
        root.end();
        let plain = restore(&p, &g, &ip, scenario, &[], &cfg);
        assert_eq!(r.restored_gbps, plain.restored_gbps);
        let tree = obs.span_tree();
        assert!(tree.contains("drill"), "{tree}");
        assert!(tree.contains("  restore.scenario"), "{tree}");
    }
}
