//! 1+1 dedicated path protection: the classic resilience baseline the
//! restoration literature (including ARROW \[49\], which the paper builds
//! on) positions itself against.
//!
//! Under 1+1, every IP link gets its capacity provisioned **twice**, on
//! conduit-disjoint routes; a fiber cut triggers an instantaneous switch
//! to the protection copy, with no recomputation and no spare spectrum
//! hunt. The price is the doubled hardware. The `ablation_protection`
//! experiment quantifies the trade against §8's restoration: protection
//! buys deterministic, instant recovery at roughly twice the transponder
//! and spectrum cost; restoration recovers more cheaply but is bounded by
//! residual spectrum when the network runs hot.

use flexwan_topo::cache::RouteCache;
use flexwan_topo::graph::{Graph, NodeId};
use flexwan_topo::ip::{IpLinkId, IpTopology};
use flexwan_topo::ksp::DijkstraScratch;
use flexwan_topo::route::{k_shortest_routes_scratch, Route};

use crate::planning::format_dp::select_formats;
use crate::planning::heuristic::PlannerConfig;
use crate::planning::spectrum::SpectrumState;
use crate::restore::scenario::FailureScenario;
use crate::scheme::Scheme;
use crate::wavelength::Wavelength;

/// A 1+1-protected plan: working and protection copies of every demand.
#[derive(Debug, Clone)]
pub struct ProtectedPlan {
    /// The scheme planned.
    pub scheme: Scheme,
    /// Working-path wavelengths.
    pub working: Vec<Wavelength>,
    /// Protection-path wavelengths (conduit-disjoint from working).
    pub protection: Vec<Wavelength>,
    /// Links with no conduit-disjoint route pair (cannot be 1+1
    /// protected on this topology).
    pub unprotectable: Vec<IpLinkId>,
    /// Demand that could not be provisioned (on either copy), Gbps.
    pub unmet: Vec<(IpLinkId, u64)>,
    /// Final spectrum occupancy.
    pub spectrum: SpectrumState,
}

impl ProtectedPlan {
    /// Total transponder pairs (working + protection).
    pub fn transponder_count(&self) -> usize {
        self.working.len() + self.protection.len()
    }

    /// Spectrum usage `Σ λ·Y` over both copies, GHz.
    pub fn spectrum_usage_ghz(&self) -> f64 {
        self.working
            .iter()
            .chain(&self.protection)
            .map(|w| w.format.spacing.ghz())
            .sum()
    }

    /// Whether every demand was provisioned on two disjoint routes.
    pub fn is_fully_protected(&self) -> bool {
        self.unprotectable.is_empty() && self.unmet.is_empty()
    }

    /// Capability under `scenario` (instantaneous, no recomputation): per
    /// link, surviving capacity is the max of its two copies' surviving
    /// rates (1+1 switches to whichever copy lives), capped at demand.
    pub fn capability_under(&self, ip: &IpTopology, scenario: &FailureScenario) -> f64 {
        let banned = scenario.banned();
        let alive = |w: &Wavelength| !w.path.edges.iter().any(|e| banned.contains(e));
        let mut affected_total = 0u64;
        let mut survived_total = 0u64;
        for link in ip.links() {
            let w_alive: u64 = self
                .working
                .iter()
                .filter(|w| w.link == link.id && alive(w))
                .map(|w| u64::from(w.format.data_rate_gbps))
                .sum();
            let p_alive: u64 = self
                .protection
                .iter()
                .filter(|w| w.link == link.id && alive(w))
                .map(|w| u64::from(w.format.data_rate_gbps))
                .sum();
            let w_total: u64 = self
                .working
                .iter()
                .filter(|w| w.link == link.id)
                .map(|w| u64::from(w.format.data_rate_gbps))
                .sum();
            if w_alive < w_total {
                // The working copy took a hit: the lost portion is the
                // affected capacity; the protection copy covers it iff it
                // survived.
                let lost = w_total - w_alive;
                affected_total += lost;
                survived_total += lost.min(p_alive);
            }
        }
        if affected_total == 0 {
            1.0
        } else {
            survived_total as f64 / affected_total as f64
        }
    }
}

/// Conduit key of a hop (unordered node pair).
fn conduit_key(nodes: &[NodeId], hop: usize) -> (NodeId, NodeId) {
    let (a, b) = (nodes[hop], nodes[hop + 1]);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Whether two routes share any conduit (a cut severs all parallels, so
/// disjointness must be at conduit granularity).
fn conduit_disjoint(a: &Route, b: &Route) -> bool {
    let keys_a: std::collections::HashSet<_> = (0..a.hops.len())
        .map(|h| conduit_key(&a.nodes, h))
        .collect();
    (0..b.hops.len()).all(|h| !keys_a.contains(&conduit_key(&b.nodes, h)))
}

/// Plans 1+1 protection: per link, capacity provisioned on the shortest
/// route and again on the shortest conduit-disjoint alternative.
pub fn plan_protected(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
) -> ProtectedPlan {
    let none = std::collections::HashSet::new();
    let mut scratch = DijkstraScratch::new();
    let routes_per_link: Vec<Vec<Route>> = ip
        .links()
        .iter()
        .map(|l| {
            k_shortest_routes_scratch(
                optical,
                l.src,
                l.dst,
                cfg.k_paths.max(4),
                &none,
                &mut scratch,
            )
        })
        .collect();
    plan_protected_with_routes(scheme, optical, ip, cfg, routes_per_link)
}

/// [`plan_protected`] with candidate routes served by `cache` (note the
/// deeper `k_paths.max(4)` key, distinct from the unprotected planner's).
/// Output is bit-identical to [`plan_protected`].
pub fn plan_protected_cached(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    cache: &RouteCache,
) -> ProtectedPlan {
    let none = std::collections::HashSet::new();
    let routes_per_link: Vec<Vec<Route>> = ip
        .links()
        .iter()
        .map(|l| (*cache.routes(optical, l.src, l.dst, cfg.k_paths.max(4), &none)).clone())
        .collect();
    plan_protected_with_routes(scheme, optical, ip, cfg, routes_per_link)
}

fn plan_protected_with_routes(
    scheme: Scheme,
    optical: &Graph,
    ip: &IpTopology,
    cfg: &PlannerConfig,
    routes_per_link: Vec<Vec<Route>>,
) -> ProtectedPlan {
    let model = scheme.transponder();
    let align = scheme.alignment_pixels().max(cfg.min_alignment);
    let mut spectrum = SpectrumState::new(cfg.grid, optical.num_edges());
    let mut working = Vec::new();
    let mut protection = Vec::new();
    let mut unprotectable = Vec::new();
    let mut unmet = Vec::new();

    // Most-constrained first, as in the unprotected planner.
    let mut order: Vec<usize> = (0..ip.num_links()).collect();
    order.sort_by_key(|&i| {
        let len = routes_per_link[i].first().map_or(u32::MAX, |r| r.length_km);
        (
            std::cmp::Reverse(len),
            std::cmp::Reverse(ip.links()[i].demand_gbps),
            i,
        )
    });

    for &i in &order {
        let link = &ip.links()[i];
        let routes = &routes_per_link[i];
        let Some(primary) = routes.first() else {
            unprotectable.push(link.id);
            continue;
        };
        let Some(backup) = routes[1..].iter().find(|r| conduit_disjoint(primary, r)) else {
            unprotectable.push(link.id);
            continue;
        };
        // Provision the full demand on each copy independently.
        let mut shortfall = 0u64;
        for (route, bucket) in [(primary, &mut working), (backup, &mut protection)] {
            let mut remaining = link.demand_gbps;
            if let Some(formats) = select_formats(model, remaining, route.length_km, cfg.epsilon) {
                for format in formats {
                    if remaining == 0 {
                        break;
                    }
                    if let Some((channel, chosen)) =
                        spectrum.allocate_route(route, format.spacing, align)
                    {
                        remaining = remaining.saturating_sub(u64::from(format.data_rate_gbps));
                        bucket.push(Wavelength {
                            link: link.id,
                            path_index: 0,
                            path: route.realize(optical, &chosen),
                            format,
                            channel,
                        });
                    }
                }
            }
            shortfall += remaining;
        }
        if shortfall > 0 {
            unmet.push((link.id, shortfall));
        }
    }

    ProtectedPlan {
        scheme,
        working,
        protection,
        unprotectable,
        unmet,
        spectrum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_topo::graph::EdgeId;

    /// Diamond: two fully disjoint routes between a and b.
    fn diamond() -> (Graph, IpTopology) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, c, 200);
        g.add_edge(c, b, 200);
        g.add_edge(a, d, 300);
        g.add_edge(d, b, 300);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 400);
        (g, ip)
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        }
    }

    #[test]
    fn protection_doubles_hardware() {
        let (g, ip) = diamond();
        let pp = plan_protected(Scheme::FlexWan, &g, &ip, &cfg());
        assert!(pp.is_fully_protected(), "unmet {:?}", pp.unmet);
        assert_eq!(pp.working.len(), 1);
        assert_eq!(pp.protection.len(), 1);
        // The two copies ride disjoint routes.
        let w_edges: std::collections::HashSet<_> =
            pp.working[0].path.edges.iter().copied().collect();
        assert!(pp.protection[0]
            .path
            .edges
            .iter()
            .all(|e| !w_edges.contains(e)));
        // Compare against the unprotected plan: exactly double here.
        let unp = crate::planning::plan(Scheme::FlexWan, &g, &ip, &cfg());
        assert_eq!(pp.transponder_count(), 2 * unp.transponder_count());
    }

    #[test]
    fn cached_protection_matches_plain() {
        let (g, ip) = diamond();
        let cache = RouteCache::new();
        let plain = plan_protected(Scheme::FlexWan, &g, &ip, &cfg());
        let cached = plan_protected_cached(Scheme::FlexWan, &g, &ip, &cfg(), &cache);
        assert_eq!(plain.working, cached.working);
        assert_eq!(plain.protection, cached.protection);
        assert_eq!(plain.unmet, cached.unmet);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn any_single_conduit_cut_is_survived_instantly() {
        let (g, ip) = diamond();
        let pp = plan_protected(Scheme::FlexWan, &g, &ip, &cfg());
        for scenario in crate::restore::scenario::conduit_cut_scenarios(&g) {
            let c = pp.capability_under(&ip, &scenario);
            assert!(
                (c - 1.0).abs() < 1e-12,
                "scenario {:?}: capability {c}",
                scenario.cuts
            );
        }
    }

    #[test]
    fn double_cut_hitting_both_copies_fails() {
        let (g, ip) = diamond();
        let pp = plan_protected(Scheme::FlexWan, &g, &ip, &cfg());
        // Cut one fiber of each route.
        let cut_both = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0), EdgeId(2)],
            probability: 1.0,
        };
        assert_eq!(pp.capability_under(&ip, &cut_both), 0.0);
    }

    #[test]
    fn unprotectable_without_disjoint_route() {
        // A chain has no disjoint pair.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 100);
        g.add_edge(b, c, 100);
        let mut ip = IpTopology::new();
        ip.add_link(a, c, 200);
        let pp = plan_protected(Scheme::FlexWan, &g, &ip, &cfg());
        assert_eq!(pp.unprotectable, vec![flexwan_topo::ip::IpLinkId(0)]);
        assert!(pp.working.is_empty() && pp.protection.is_empty());
    }

    #[test]
    fn parallel_pairs_are_not_disjoint_routes() {
        // Two parallel fibers share the conduit: not valid 1+1 diversity.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 100);
        g.add_edge(a, b, 102);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 200);
        let pp = plan_protected(Scheme::FlexWan, &g, &ip, &cfg());
        assert_eq!(pp.unprotectable.len(), 1);
    }

    #[test]
    fn protection_capability_counts_partial_loss() {
        // Protection copy spectrally starved: capability 0 under the cut.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, c, 200);
        g.add_edge(c, b, 200); // primary: 400 km
        g.add_edge(a, d, 350);
        g.add_edge(d, b, 350); // backup: 700 km
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 400);
        let tight = PlannerConfig {
            grid: SpectrumGrid::new(6),
            ..Default::default()
        };
        // 400 G at 400 km: 75 GHz = 6 px fits the grid; at 700 km it needs
        // 87.5 GHz = 7 px > grid → the backup copy stays unprovisioned.
        let pp = plan_protected(Scheme::FlexWan, &g, &ip, &tight);
        assert_eq!(pp.working.len(), 1);
        assert!(pp.protection.is_empty());
        assert!(!pp.unmet.is_empty());
        let cut_primary = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        assert_eq!(pp.capability_under(&ip, &cut_primary), 0.0);
    }
}
